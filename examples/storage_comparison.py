#!/usr/bin/env python3
"""A miniature of Figures 3.9-3.11: storage across the whole design space.

Sweeps random DAGs over degree and size and prints, for each, the storage
of the original relation, the full closure, the compressed closure, the
inverse closure, and the chain-cover comparator — the complete cast of
Section 3.3 and Section 5 in one table.

Run:  python examples/storage_comparison.py [nodes]
"""

import sys

from repro.baselines import ChainTCIndex, FullTCIndex, InverseTCIndex
from repro.bench import format_table, summarize_series
from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_dag

num_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 400

rows = []
for degree in (1, 2, 3, 4, 6, 8, 10, 14):
    graph = random_dag(num_nodes, degree, 1989 + degree)
    full = FullTCIndex.build(graph)
    compressed = IntervalTCIndex.build(graph, gap=1)
    inverse = InverseTCIndex.build(graph)
    chains = ChainTCIndex.build(graph, "greedy")
    rows.append({
        "degree": degree,
        "relation": graph.num_arcs,
        "full": full.storage_units,
        "compressed": compressed.storage_units,
        "inverse": inverse.storage_units,
        "chain": chains.storage_units,
        "full_multiple": full.storage_units / graph.num_arcs,
        "compressed_multiple": compressed.storage_units / graph.num_arcs,
    })

print(format_table(rows, title=f"storage vs degree (n={num_nodes}, paper Figs 3.9/3.10)"))
print()
for line in summarize_series(rows, "degree", ["full_multiple", "compressed_multiple"]):
    print(" ", line)

crossover = next((row["degree"] for row in rows if row["compressed_multiple"] < 1.0), None)
if crossover is not None:
    print(f"\n  compressed closure drops below the ORIGINAL RELATION at degree "
          f"{crossover} — the paper's headline observation")
else:
    print("\n  (no sub-relation crossover in this sweep; extend the degree range)")

print()
size_rows = []
for size in (num_nodes // 4, num_nodes // 2, num_nodes, num_nodes * 2):
    graph = random_dag(size, 2, 7 + size)
    full = FullTCIndex.build(graph)
    compressed = IntervalTCIndex.build(graph, gap=1)
    size_rows.append({
        "nodes": size,
        "full_multiple": full.storage_units / graph.num_arcs,
        "compressed_multiple": compressed.storage_units / graph.num_arcs,
        "compression_ratio": full.storage_units / compressed.storage_units,
    })
print(format_table(size_rows, title="storage vs size at degree 2 (paper Fig 3.11)"))
print("\n  larger graphs compress better — the Figure 3.11 trend")
