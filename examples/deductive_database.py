#!/usr/bin/env python3
"""A miniature deductive database: alpha-extended relational algebra.

Section 6 of the paper: "With the compressed closure, answering a
transitive closure query in a deductive database system reduces to a
lookup instead of a graph traversal.  Indeed, we are planning to
incorporate these techniques in prototype systems based on [an]
alpha-extended relational algebra."

This example is that prototype in miniature: classic recursive queries —
ancestors, reachable cities, management chains — expressed as algebra
trees whose `Alpha` nodes are evaluated through the interval index.

Run:  python examples/deductive_database.py
"""

from repro.storage import (
    AlgebraEngine,
    Alpha,
    AlphaPlus,
    BinaryRelation,
    Compose,
    Difference,
    Inverse,
    Rel,
    Select,
)

# ----------------------------------------------------------------------
# 1. Base relations (the EDB).
# ----------------------------------------------------------------------
parent = BinaryRelation([
    ("terach", "abraham"), ("terach", "nachor"), ("terach", "haran"),
    ("abraham", "isaac"), ("haran", "lot"), ("haran", "milcah"),
    ("haran", "yiscah"), ("sarah", "isaac"), ("isaac", "esau"),
    ("isaac", "jacob"), ("jacob", "joseph"),
])

flight = BinaryRelation([
    ("SFO", "ORD"), ("SFO", "DEN"), ("DEN", "ORD"), ("ORD", "JFK"),
    ("JFK", "LHR"), ("LHR", "CDG"), ("CDG", "JFK"),   # transatlantic loop
    ("DEN", "AUS"),
])

engine = AlgebraEngine({"parent": parent, "flight": flight})

# ----------------------------------------------------------------------
# 2. The classic recursive queries, as algebra expressions.
# ----------------------------------------------------------------------
print("== genealogy ==")
ancestor = AlphaPlus(Rel("parent"))                       # strict ancestors
jacobs_ancestors = engine.evaluate(
    Select(ancestor, lambda a, d: d == "jacob"))
print(f"  ancestors(jacob) = {sorted(a for a, _ in jacobs_ancestors)}")

grandparent = Compose(Rel("parent"), Rel("parent"))
print(f"  grandparchildren(terach) = "
      f"{sorted(c for g, c in engine.evaluate(grandparent) if g == 'terach')}")

# Proper ancestors that are NOT parents: the derived-only tuples.
derived = engine.evaluate(Difference(AlphaPlus(Rel("parent")), Rel("parent")))
print(f"  strictly-derived ancestor pairs: {len(derived)}")

# ----------------------------------------------------------------------
# 3. Route queries over a *cyclic* relation (the JFK-LHR-CDG loop):
#    Alpha handles it through SCC condensation.
# ----------------------------------------------------------------------
print("\n== flights ==")
reach = engine.evaluate(Alpha(Rel("flight")))
print(f"  SFO reaches: {sorted(b for a, b in reach if a == 'SFO' and b != 'SFO')}")
print(f"  JFK -> CDG -> JFK loop detected: "
      f"{('JFK', 'JFK') in engine.evaluate(AlphaPlus(Rel('flight')))}")

# Cities that can reach JFK (inverse closure query).
into_jfk = engine.evaluate(
    Select(Alpha(Rel("flight")), lambda a, b: b == "JFK" and a != "JFK"))
print(f"  can reach JFK: {sorted(a for a, _ in into_jfk)}")

# Asymmetric connectivity: reachable one way but not back.
one_way = engine.evaluate(
    Difference(AlphaPlus(Rel("flight")), Inverse(AlphaPlus(Rel("flight")))))
print(f"  one-way city pairs: {len(one_way)}")

# ----------------------------------------------------------------------
# 4. Why this beats naive evaluation: the Alpha node costs one index
#    build; every containment test afterwards is a range comparison.
# ----------------------------------------------------------------------
closure = engine.evaluate(Alpha(Rel("parent")))
print(f"\n== accounting ==\n  parent closure holds {len(closure)} tuples "
      f"derived from {len(parent)} base tuples — materialised once, "
      f"queried by lookup")
