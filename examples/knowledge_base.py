#!/usr/bin/env python3
"""A CLASSIC-style IS-A knowledge base on the compressed closure.

Section 2.1 of the paper motivates the index with terminological
reasoners: subsumption is asked constantly, concepts arrive
incrementally ("hierarchy refinement"), and hierarchies overlap (multiple
inheritance).  This example builds a small medical-device taxonomy,
classifies new concepts, checks disjointness, and inherits properties —
all through :class:`repro.kb.Taxonomy` and
:class:`repro.kb.InheritanceEngine`.

Run:  python examples/knowledge_base.py
"""

from repro.kb import InheritanceEngine, Taxonomy

# ----------------------------------------------------------------------
# 1. Grow a taxonomy incrementally (each define() is a Section 4 cheap
#    insertion, not a closure recomputation).
# ----------------------------------------------------------------------
kb = Taxonomy(root="THING")
for concept, parents in [
    ("device", []),
    ("instrument", ["device"]),
    ("implant", ["device"]),
    ("electronic-device", ["device"]),
    ("sensor", ["instrument", "electronic-device"]),
    ("pacemaker", ["implant", "electronic-device"]),
    ("thermometer", ["sensor"]),
    ("glucose-monitor", ["sensor"]),
    ("implantable-glucose-monitor", ["glucose-monitor", "implant"]),
]:
    kb.define(concept, parents)

print(f"taxonomy: {len(kb)} concepts, {kb.storage_units} storage units")

# ----------------------------------------------------------------------
# 2. Subsumption questions — "a frequent operation ... therefore
#    precomputed, cached as a hierarchy" (Section 2.1).
# ----------------------------------------------------------------------
print("\n== subsumption ==")
for child, parent in [
    ("implantable-glucose-monitor", "device"),
    ("implantable-glucose-monitor", "electronic-device"),
    ("thermometer", "implant"),
]:
    print(f"  {child} IS-A {parent}? {kb.is_a(child, parent)}")

print(f"\n  subconcepts(sensor)   = {sorted(kb.subconcepts('sensor'))}")
print(f"  superconcepts(pacemaker) = {sorted(kb.superconcepts('pacemaker'))}")

# ----------------------------------------------------------------------
# 3. Least common subsumers and disjointness (Section 6's "subsumption,
#    disjointness, least common ancestors").
# ----------------------------------------------------------------------
print("\n== reasoning ==")
lcs = kb.least_common_subsumers(["pacemaker", "implantable-glucose-monitor"])
print(f"  LCS(pacemaker, implantable-glucose-monitor) = {sorted(lcs)}")
print(f"  disjoint(thermometer, pacemaker)? {kb.are_disjoint('thermometer', 'pacemaker')}")
print(f"  disjoint(glucose-monitor, implant)? "
      f"{kb.are_disjoint('glucose-monitor', 'implant')}")

# ----------------------------------------------------------------------
# 4. Classification: does a definition already exist between these bounds?
# ----------------------------------------------------------------------
existing = kb.classify(parents=["sensor"], children=[])
print(f"\n  classify(parents=[sensor]) finds existing concept: {existing!r}")

# ----------------------------------------------------------------------
# 5. Property inheritance along the closure (Section 6).
# ----------------------------------------------------------------------
engine = InheritanceEngine(kb)
engine.set_property("device", "regulated", True)
engine.set_property("electronic-device", "power", "battery")
engine.set_property("implant", "sterile", True)
engine.set_property("pacemaker", "power", "long-life-battery")  # override

print("\n== inherited properties ==")
for concept in ("pacemaker", "implantable-glucose-monitor", "thermometer"):
    print(f"  {concept}: {engine.effective_properties(concept)}")

holders = engine.concepts_with_property("sterile")
print(f"\n  concepts inheriting 'sterile': {sorted(holders)}")

kb.index.verify()
print("\nsubsumption index verified against pointer-chasing ground truth")
