#!/usr/bin/env python3
"""Section 4 in action: a long update stream against one live index.

Simulates the paper's knowledge-base write pattern — mostly "hierarchy
refinement" insertions with occasional arc additions and deletions — and
shows that (a) the index stays exactly correct after every batch, and
(b) incremental maintenance beats rebuild-per-update by orders of
magnitude.

Run:  python examples/incremental_updates.py
"""

import random
import time

from repro.core.index import IntervalTCIndex
from repro.graph.generators import random_hierarchy

rng = random.Random(1989)

# ----------------------------------------------------------------------
# 1. Start from an existing concept hierarchy.
# ----------------------------------------------------------------------
base = random_hierarchy(300, rng=7)
index = IntervalTCIndex.build(base, gap=64)
print(f"base hierarchy: {base.num_nodes} nodes, {base.num_arcs} arcs, "
      f"{index.num_intervals} intervals")

# ----------------------------------------------------------------------
# 2. Apply a mixed update stream.
# ----------------------------------------------------------------------
OPERATIONS = 400
added_nodes = []
t0 = time.perf_counter()
for step in range(OPERATIONS):
    kind = rng.random()
    population = list(index.nodes())
    if kind < 0.60:
        # Refinement insert: new concept under 1-2 existing parents.
        parents = rng.sample(population, k=rng.randint(1, 2))
        # Deduplicate while preserving order (sample can't repeat, but the
        # two parents must not be ancestor/descendant for interest).
        node = ("concept", step)
        index.add_node(node, parents=parents)
        added_nodes.append(node)
    elif kind < 0.80:
        # New IS-A link between existing concepts (skip if cyclic).
        source, destination = rng.sample(population, k=2)
        if not index.reachable(destination, source):
            index.add_arc(source, destination)
    elif kind < 0.90 and index.graph.num_arcs > 50:
        # Drop a random arc.
        source, destination = rng.choice(list(index.graph.arcs()))
        index.remove_arc(source, destination)
    elif added_nodes:
        # Forget a previously added concept.
        index.remove_node(added_nodes.pop(rng.randrange(len(added_nodes))))
incremental_seconds = time.perf_counter() - t0

print(f"\napplied {OPERATIONS} mixed updates in {incremental_seconds * 1000:.1f} ms "
      f"({incremental_seconds / OPERATIONS * 1e6:.0f} us/update)")

# ----------------------------------------------------------------------
# 3. Prove exact correctness after the whole stream.
# ----------------------------------------------------------------------
index.check_invariants()
index.verify()
print("index verified: every reachability answer matches pointer chasing")

# ----------------------------------------------------------------------
# 4. Compare with the rebuild-per-update strategy on a smaller slice.
# ----------------------------------------------------------------------
REBUILDS = 25
sample_graph = random_hierarchy(300, rng=7)
t0 = time.perf_counter()
for step in range(REBUILDS):
    parent = rng.choice(list(sample_graph.nodes()))
    sample_graph.add_node(("again", step))
    sample_graph.add_arc(parent, ("again", step))
    IntervalTCIndex.build(sample_graph, gap=64)
rebuild_seconds = (time.perf_counter() - t0) / REBUILDS

per_update = incremental_seconds / OPERATIONS
print(f"\nrebuild-per-update: {rebuild_seconds * 1000:.1f} ms/update -> "
      f"incremental is {rebuild_seconds / per_update:.0f}x faster")

# ----------------------------------------------------------------------
# 5. The paper's closing advice: rebuild after sufficient update activity
#    to restore Alg1 optimality.
# ----------------------------------------------------------------------
drifted = index.num_intervals
rebuilt = index.rebuild()
print(f"\nintervals after update stream: {drifted}; after one rebuild: "
      f"{rebuilt.num_intervals} ({drifted - rebuilt.num_intervals} reclaimed — "
      f"the optimality drift Section 4 warns about)")
