#!/usr/bin/env python3
"""Terminological classification: definitions become a hierarchy.

Section 2.1 of the paper: in KL-ONE-style systems "a concept is subsumed
by another by virtue of their definition ... Computing the subsumption
relationship between a new concept and previously known ones is the key
inference".  This example feeds feature-based definitions, *in no
particular order*, to :class:`repro.kb.Classifier`; each one is placed at
exactly the right spot in the taxonomy, and every placement probe is an
interval lookup on the compressed closure.

Run:  python examples/terminological_classification.py
"""

from repro.core.explain import render_tree
from repro.kb import Classifier

classifier = Classifier()

# ----------------------------------------------------------------------
# 1. Definitions arrive in arbitrary order — specialisations first,
#    generalisations later; the classifier sorts it all out.
# ----------------------------------------------------------------------
DEFINITIONS = [
    ("espresso-machine", ["appliance", "heats-water", "pressurises"]),
    ("appliance-kind", ["appliance"]),
    ("kettle", ["appliance", "heats-water"]),
    ("steam-cleaner", ["appliance", "heats-water", "pressurises", "cleans"]),
    ("water-heater", ["appliance", "heats-water"]),        # same as kettle!
    ("cleaner", ["appliance", "cleans"]),
    ("vacuum", ["appliance", "cleans", "suction"]),
]

for name, features in DEFINITIONS:
    canonical = classifier.define(name, features=features)
    note = "" if canonical == name else f"  (equivalent to {canonical!r})"
    print(f"defined {name!r}{note}")

# 'water-heater' collapsed into 'kettle': identical effective features.
assert "water-heater" not in classifier.concepts()

# ----------------------------------------------------------------------
# 2. The inferred hierarchy (nobody stated these links explicitly).
# ----------------------------------------------------------------------
print("\n== inferred subsumptions ==")
for general, specific in [
    ("appliance-kind", "espresso-machine"),
    ("kettle", "espresso-machine"),          # heats-water ⊂ its features
    ("kettle", "steam-cleaner"),
    ("cleaner", "vacuum"),
    ("cleaner", "steam-cleaner"),
    ("kettle", "vacuum"),                    # should be False
]:
    print(f"  {general} subsumes {specific}? "
          f"{classifier.subsumes(general, specific)}")

# ----------------------------------------------------------------------
# 3. A late generalisation adopts existing concepts beneath it.
# ----------------------------------------------------------------------
classifier.define("pressure-device", features=["appliance", "pressurises"])
print("\nafter defining 'pressure-device' (late generalisation):")
print(f"  pressure-device subsumes espresso-machine? "
      f"{classifier.subsumes('pressure-device', 'espresso-machine')}")
print(f"  pressure-device subsumes steam-cleaner? "
      f"{classifier.subsumes('pressure-device', 'steam-cleaner')}")

# ----------------------------------------------------------------------
# 4. The whole lattice, as the index's tree cover sees it.
# ----------------------------------------------------------------------
print("\n== taxonomy tree cover ==")
print(render_tree(classifier.taxonomy.index))

classifier.check_lattice_consistency()
classifier.taxonomy.index.verify()
print("\nlattice consistency and closure exactness verified")
