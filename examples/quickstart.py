#!/usr/bin/env python3
"""Quickstart: build, query, and update a compressed transitive closure.

Reproduces the paper's running example in miniature: a small DAG is
indexed (Figure 3.2 style), queried with single range comparisons, and
then updated incrementally (Figure 4.1/4.2 style) without recomputing the
closure.

Run:  python examples/quickstart.py
"""

from repro import DiGraph, IntervalTCIndex

# ----------------------------------------------------------------------
# 1. A binary relation as a graph (paper, Section 3: one node per value,
#    one arc per tuple).
# ----------------------------------------------------------------------
graph = DiGraph([
    ("a", "b"), ("a", "c"),
    ("b", "d"), ("b", "e"),
    ("c", "e"), ("c", "f"),
    ("d", "g"), ("e", "g"), ("f", "h"),
])

# ----------------------------------------------------------------------
# 2. Build the compressed closure: an optimal tree cover (Alg1), postorder
#    numbers with insertion gaps, and per-node interval sets.
# ----------------------------------------------------------------------
index = IntervalTCIndex.build(graph)

print("== labels ==")
for node in sorted(index.nodes()):
    intervals = ", ".join(str(interval) for interval in index.intervals[node])
    print(f"  {node}: postorder={index.postorder[node]:4}  intervals={{{intervals}}}")

# ----------------------------------------------------------------------
# 3. Reachability is one range comparison (Lemma 1).
# ----------------------------------------------------------------------
print("\n== queries ==")
for source, destination in [("a", "g"), ("c", "g"), ("f", "g"), ("d", "h")]:
    verdict = "reachable" if index.reachable(source, destination) else "NOT reachable"
    print(f"  {source} ->* {destination}: {verdict}")

print(f"\n  successors(b) = {sorted(index.successors('b', reflexive=False))}")
print(f"  predecessors(g) = {sorted(index.predecessors('g', reflexive=False))}")

# ----------------------------------------------------------------------
# 4. Incremental updates (Section 4): adding a node under a parent costs
#    O(log n) — the gaps in the numbering absorb it, no labels change.
# ----------------------------------------------------------------------
print("\n== incremental updates ==")
index.add_node("i", parents=["e"])          # tree arc to a fresh node
index.add_arc("f", "g")                     # non-tree arc between old nodes
index.remove_arc("c", "e")                  # deletion
print(f"  after updates: a ->* i is {index.reachable('a', 'i')}")
print(f"  after deleting (c,e): c ->* g is {index.reachable('c', 'g')} (still, via f)")

# ----------------------------------------------------------------------
# 5. Size accounting (Section 3.3): 2 units per interval.
# ----------------------------------------------------------------------
stats = index.stats()
print(f"\n== storage ==\n  {stats.num_intervals} intervals "
      f"({stats.num_tree_intervals} tree + {stats.num_non_tree_intervals} non-tree) "
      f"= {stats.storage_units} units for a {stats.num_arcs}-arc relation")

index.verify()  # cross-check against pointer chasing -- raises on any mismatch
print("  verified against pointer-chasing ground truth")
