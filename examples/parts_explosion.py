#!/usr/bin/env python3
"""Bill-of-materials ("parts explosion") queries over a materialised view.

The classic database recursion the paper's Section 2 points at: a PART-OF
relation whose transitive closure answers "which components does an
assembly transitively contain?" — the paper's own example is an airplane
with "close to 100,000 different kinds of parts".  Here a synthetic
aircraft BOM is managed as a :class:`repro.storage.BinaryRelation` with
the closure kept as a continuously-synchronised materialised view.

Run:  python examples/parts_explosion.py
"""

import random

from repro.storage import BinaryRelation, MaterializedClosureView

rng = random.Random(1989)

# ----------------------------------------------------------------------
# 1. Build a synthetic aircraft bill of materials: ~6 top assemblies,
#    fan-out shrinking with depth, with some shared (multi-use) parts.
# ----------------------------------------------------------------------
relation = BinaryRelation()
assemblies = ["airframe", "propulsion", "avionics", "hydraulics",
               "electrical", "interior"]
for assembly in assemblies:
    relation.insert("aircraft", assembly)

catalogue = list(assemblies)
for tier, (fanout, count) in enumerate([(4, 24), (3, 60), (2, 90)], start=1):
    new_parts = [f"p{tier}-{i}" for i in range(count)]
    for part in new_parts:
        for parent in rng.sample(catalogue, k=rng.randint(1, min(2, len(catalogue)))):
            relation.insert(parent, part)
    catalogue.extend(new_parts)

# A few standard fasteners used almost everywhere (shared sub-parts).
for fastener in ("bolt-M6", "rivet-4mm", "washer-S"):
    for parent in rng.sample(catalogue, k=12):
        relation.insert(parent, fastener)

view = MaterializedClosureView.over(relation)
print(f"BOM: {len(relation)} PART-OF tuples over {len(relation.domain())} parts")
print(f"materialised closure: {view.storage_units} storage units "
      f"(vs {sum(len(view.successors(p)) - 1 for p in ['aircraft'])} parts under 'aircraft')")

# ----------------------------------------------------------------------
# 2. Parts-explosion queries = view lookups, not recursive evaluation.
# ----------------------------------------------------------------------
print("\n== queries ==")
under_propulsion = view.successors("propulsion") - {"propulsion"}
print(f"  parts under 'propulsion': {len(under_propulsion)}")
print(f"  is bolt-M6 used in avionics? {view.query('avionics', 'bolt-M6')}")
print(f"  is the airframe part of the interior? {view.query('interior', 'airframe')}")

# Where-used (the inverse query) via the index's predecessor scan:
users = view.index.predecessors("rivet-4mm", reflexive=False)
print(f"  'rivet-4mm' is (transitively) used by {len(users)} parts/assemblies")

# ----------------------------------------------------------------------
# 3. Engineering changes flow through the Section 4 update algorithms.
# ----------------------------------------------------------------------
print("\n== engineering changes ==")
view.insert("propulsion", "fadec-unit")          # new sub-assembly
view.insert("fadec-unit", "p3-7")                # reuses an existing part
print(f"  after change: aircraft contains fadec-unit? "
      f"{view.query('aircraft', 'fadec-unit')}")

view.delete("interior", "p1-0") if ("interior", "p1-0") in relation else None
view.index.verify()
print("  closure view verified after updates")

# ----------------------------------------------------------------------
# 4. Storage story at this scale.
# ----------------------------------------------------------------------
full_pairs = sum(len(view.successors(part)) - 1 for part in relation.domain())
print(f"\n== storage ==\n  full closure would store {full_pairs} pairs; "
      f"the compressed view stores {view.storage_units} units "
      f"({full_pairs / view.storage_units:.1f}x smaller)")
