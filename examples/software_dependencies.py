#!/usr/bin/env python3
"""Impact analysis over a (cyclic) software dependency graph.

The paper's motivation section cites Lassie, "a classification-based
software retrieval system", as evidence that real hierarchies compress
well.  This example applies the machinery to the neighbouring problem
every build system has: *which modules are affected if X changes?*

Module dependency graphs contain cycles (mutually recursive modules), so
the example exercises :class:`repro.core.condensation.CondensedIndex` —
the paper's SCC-collapse extension — and the bidirectional index for
where-used queries.

Run:  python examples/software_dependencies.py
"""

import random

from repro.core.bidirectional import BidirectionalTCIndex
from repro.core.condensation import CondensedIndex
from repro.graph.digraph import DiGraph
from repro.graph.scc import strongly_connected_components

rng = random.Random(1989)

# ----------------------------------------------------------------------
# 1. A synthetic code base: layered modules with some dependency cycles.
#    Arc (a, b) means "a depends on b".
# ----------------------------------------------------------------------
graph = DiGraph()
layers = {
    "app": [f"app.{name}" for name in ("web", "cli", "admin", "reports")],
    "service": [f"svc.{name}" for name in
                ("users", "billing", "catalog", "orders", "search")],
    "lib": [f"lib.{name}" for name in
            ("db", "cache", "http", "auth", "config", "log")],
}
for app in layers["app"]:
    for dep in rng.sample(layers["service"], 3):
        graph.add_arc(app, dep)
for service in layers["service"]:
    for dep in rng.sample(layers["lib"], 3):
        graph.add_arc(service, dep)
# Everyone logs; config and log are mutually recursive (a classic).
for module in layers["service"] + layers["lib"]:
    if module != "lib.log":
        graph.add_arc(module, "lib.log")
graph.add_arc("lib.log", "lib.config")      # closes a cycle with config->log
# A service-level cycle: orders <-> billing.
graph.add_arc("svc.billing", "svc.orders")
graph.add_arc("svc.orders", "svc.billing")

print(f"dependency graph: {graph.num_nodes} modules, {graph.num_arcs} edges")
cycles = [c for c in strongly_connected_components(graph) if len(c) > 1]
print(f"dependency cycles: {[sorted(c) for c in cycles]}")

# ----------------------------------------------------------------------
# 2. Index the cyclic graph: SCCs collapse, intervals index the DAG.
# ----------------------------------------------------------------------
index = CondensedIndex.build(graph)
print(f"\ncondensation: {index.num_components} components, "
      f"{index.storage_units} storage units")

print(f"  app.web depends (transitively) on "
      f"{len(index.successors('app.web')) - 1} modules")
print(f"  svc.billing depends on svc.orders AND vice versa: "
      f"{index.reachable('svc.billing', 'svc.orders')} / "
      f"{index.reachable('svc.orders', 'svc.billing')}")

# ----------------------------------------------------------------------
# 3. Impact analysis = predecessor queries: who rebuilds when X changes?
# ----------------------------------------------------------------------
print("\n== rebuild impact ==")
for changed in ("lib.db", "lib.log", "svc.orders"):
    impacted = index.predecessors(changed, reflexive=False)
    print(f"  change {changed:12} -> rebuild {len(impacted):2} modules")

# ----------------------------------------------------------------------
# 4. For acyclic slices, the bidirectional index answers where-used in
#    O(answer) instead of scanning all modules.
# ----------------------------------------------------------------------
member_of = {}
for component in strongly_connected_components(graph):
    for module in component:
        member_of[module] = component
acyclic = DiGraph(nodes=graph.nodes())
for source, destination in graph.arcs():
    if member_of[source] is not member_of[destination]:
        acyclic.add_arc(source, destination)

bidirectional = BidirectionalTCIndex.build(acyclic)
users_of_db = bidirectional.predecessors("lib.db", reflexive=False)
print(f"\nbidirectional where-used (cycle arcs removed): lib.db is used by "
      f"{len(users_of_db)} modules "
      f"({bidirectional.storage_units} units for both directions)")
bidirectional.verify()

print("\nindexes verified against pointer chasing")
