"""Dependency-free metrics primitives: counters, gauges, histograms.

The observability layer mirrors the dimensions reachability-oracle papers
evaluate on — label size, construction cost, query latency — but measures
them *live*: every engine op increments a counter and records its wall
time into a fixed-bucket histogram, and the paper's space metrics
(interval counts, gap budget, renumber activity — Sections 3 and 5)
surface as gauges.

Design rules:

* **No dependencies.**  Pure stdlib; timers use the monotonic
  :func:`time.perf_counter_ns` clock.
* **Thread-safe.**  Each instrument guards its state with one lock;
  instrument creation is idempotent and lock-protected in the registry.
* **Near-zero overhead when disabled.**  A disabled registry hands out
  shared no-op instruments, and the engine instrumentation hooks skip
  the timer entirely when no registry is attached (one attribute read
  and a ``None`` test per call).
* **Snapshot/delta semantics.**  :meth:`MetricsRegistry.snapshot` is a
  plain-dict, JSON-safe view; :func:`delta` subtracts two snapshots so
  benchmarks can report exactly what one workload did.

Typical use::

    registry = MetricsRegistry()
    hits = registry.counter("cache_hits_total", help="lookup cache hits")
    hits.inc()
    latency = registry.histogram("op_latency_seconds")
    with registry.timer(latency):
        do_work()
    registry.snapshot()["counters"]["cache_hits_total"]   # 1
"""

from __future__ import annotations

import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

#: Default latency buckets (seconds): 1µs .. 16s, powers of four, +inf.
#: Fixed at registration so observation is one bisect, no allocation.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 4e-6, 16e-6, 64e-6, 256e-6,
    1e-3, 4e-3, 16e-3, 64e-3, 256e-3,
    1.0, 4.0, 16.0,
)

#: Buckets for size-flavoured histograms (counts, bytes): powers of four.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144,
)


def _label_key(labels: Optional[Mapping[str, str]]) -> Tuple[Tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def render_name(name: str, label_key: Sequence[Tuple[str, str]]) -> str:
    """``name{k="v",...}`` — the key snapshots and exporters index by."""
    if not label_key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in label_key)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count (ops, bytes, events)."""

    __slots__ = ("name", "help", "labels", "_value", "_lock")

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({render_name(self.name, _label_key(self.labels))}={self._value})"


class Gauge:
    """A value that can go up and down — or track a live callback.

    A callback gauge (:meth:`set_function`) re-reads its source on every
    snapshot, which is how the paper-level health gauges (interval count,
    gap budget) stay current without the engines pushing updates.
    """

    __slots__ = ("name", "help", "labels", "_value", "_fn", "_lock")

    def __init__(self, name: str, help: str = "",
                 labels: Optional[Mapping[str, str]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._fn = None
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn`` on every read instead of storing a value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        fn = self._fn
        if fn is not None:
            try:
                return fn()
            except Exception:  # a dead engine must not break a scrape
                return float("nan")
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({render_name(self.name, _label_key(self.labels))}={self.value})"


class Histogram:
    """Fixed-bucket histogram with cumulative-bucket export semantics.

    ``buckets`` are upper bounds (ascending); an implicit ``+inf`` bucket
    catches the overflow.  Observation is one :func:`bisect.bisect_left`
    plus three additions under the instrument lock.  Percentiles are
    estimated by linear interpolation inside the winning bucket — exact
    enough for latency reporting, and storage stays O(buckets) forever.
    """

    __slots__ = ("name", "help", "labels", "bounds", "_counts", "_sum",
                 "_count", "_min", "_max", "_lock")

    def __init__(self, name: str, help: str = "",
                 buckets: Optional[Sequence[float]] = None,
                 labels: Optional[Mapping[str, str]] = None) -> None:
        bounds = tuple(buckets if buckets is not None
                       else DEFAULT_LATENCY_BUCKETS)
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly "
                             f"ascending, got {bounds}")
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        slot = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def observe_ns(self, nanoseconds: int) -> None:
        """Record a :func:`time.perf_counter_ns` interval, in seconds."""
        self.observe(nanoseconds / 1e9)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> List[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        return list(self._counts)

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 < q <= 100``).

        Interpolates linearly within the bucket containing the target
        rank, clamped to the observed min/max so a one-observation
        histogram reports that observation, not a bucket edge.
        """
        if not 0 < q <= 100:
            raise ValueError(f"percentile must be in (0, 100], got {q}")
        with self._lock:
            total = self._count
            if total == 0:
                return 0.0
            target = q / 100.0 * total
            running = 0
            for slot, bucket_count in enumerate(self._counts):
                running += bucket_count
                if running >= target:
                    if slot < len(self.bounds):
                        hi = self.bounds[slot]
                        lo = self.bounds[slot - 1] if slot else 0.0
                    else:  # overflow bucket: clamp to the observed max
                        hi = self._max
                        lo = self.bounds[-1] if self.bounds else 0.0
                    if bucket_count:
                        fraction = (target - (running - bucket_count)) / bucket_count
                    else:  # pragma: no cover - running only moves on hits
                        fraction = 1.0
                    estimate = lo + (hi - lo) * fraction
                    return min(max(estimate, self._min), self._max)
        return self._max  # pragma: no cover - loop always crosses target

    def summary(self) -> dict:
        """JSON-safe digest used by snapshots and the benchmark reports."""
        with self._lock:
            count = self._count
            observed_min = self._min if count else 0.0
            observed_max = self._max if count else 0.0
            digest = {
                "count": count,
                "sum": self._sum,
                "min": observed_min,
                "max": observed_max,
                "buckets": [[bound, cumulative] for bound, cumulative
                            in zip(self.bounds, self._cumulative())],
            }
        if count:
            digest["p50"] = self.percentile(50)
            digest["p90"] = self.percentile(90)
            digest["p99"] = self.percentile(99)
        return digest

    def _cumulative(self) -> List[int]:
        running = 0
        out = []
        for bucket_count in self._counts[:-1]:
            running += bucket_count
            out.append(running)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Histogram({render_name(self.name, _label_key(self.labels))}"
                f" count={self._count})")


class _NullInstrument:
    """Shared do-nothing counter/gauge/histogram for disabled registries."""

    __slots__ = ()
    name = "null"
    help = ""
    labels: Dict[str, str] = {}
    bounds: Tuple[float, ...] = ()
    value = 0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_ns(self, nanoseconds: int) -> None:
        pass

    def percentile(self, q: float) -> float:
        return 0.0

    def bucket_counts(self) -> List[int]:
        return []

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "buckets": []}


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Owner of every instrument; the unit engines share and exporters read.

    ``enabled=False`` turns the whole registry into a no-op: every
    ``counter``/``gauge``/``histogram`` call returns the shared
    :data:`NULL_INSTRUMENT` and :meth:`snapshot` is empty.  Engines also
    honour ``None`` as "no registry at all", which skips even the timer
    read — the truly-zero-overhead default.
    """

    def __init__(self, *, enabled: bool = True,
                 default_labels: Optional[Mapping[str, str]] = None) -> None:
        self.enabled = enabled
        #: Labels stamped onto every instrument (explicit labels win on
        #: conflict).  Cluster workers use this to tag ``worker_id`` so
        #: the parent's merged Prometheus view keeps series distinct.
        self.default_labels: Dict[str, str] = {
            str(k): str(v) for k, v in (default_labels or {}).items()}
        self._lock = threading.Lock()
        self._instruments: Dict[Tuple[str, str, Tuple[Tuple[str, str], ...]],
                                object] = {}

    # ------------------------------------------------------------------
    # instrument factories (idempotent per name+labels)
    # ------------------------------------------------------------------
    def _get(self, kind: str, factory, name: str, help: str,
             labels: Optional[Mapping[str, str]], **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        if self.default_labels:
            merged = dict(self.default_labels)
            merged.update(labels or {})
            labels = merged
        key = (kind, name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory(name, help=help, labels=labels, **kwargs)
                self._instruments[key] = instrument
            return instrument

    def counter(self, name: str, *, help: str = "",
                labels: Optional[Mapping[str, str]] = None) -> Counter:
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, *, help: str = "",
              labels: Optional[Mapping[str, str]] = None) -> Gauge:
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(self, name: str, *, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  labels: Optional[Mapping[str, str]] = None) -> Histogram:
        return self._get("histogram", Histogram, name, help, labels,
                         buckets=buckets)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    @contextmanager
    def timer(self, histogram: Histogram,
              counter: Optional[Counter] = None) -> Iterator[None]:
        """Record the block's wall time into ``histogram`` (and count it)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter_ns()
        try:
            yield
        finally:
            histogram.observe_ns(time.perf_counter_ns() - started)
            if counter is not None:
                counter.inc()

    # ------------------------------------------------------------------
    # introspection / export source
    # ------------------------------------------------------------------
    def instruments(self) -> List[object]:
        """Every live instrument, sorted by (kind, name, labels)."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [instrument for _, instrument in items]

    def kinds(self) -> List[Tuple[str, object]]:
        """``(kind, instrument)`` pairs in deterministic order."""
        with self._lock:
            items = sorted(self._instruments.items())
        return [(key[0], instrument) for key, instrument in items]

    def snapshot(self) -> dict:
        """A JSON-safe view of every instrument's current value."""
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, dict] = {}
        for kind, instrument in self.kinds():
            rendered = render_name(instrument.name,
                                   _label_key(instrument.labels))
            if kind == "counter":
                counters[rendered] = instrument.value
            elif kind == "gauge":
                gauges[rendered] = instrument.value
            else:
                histograms[rendered] = instrument.summary()
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def delta(before: dict, after: dict) -> dict:
    """What happened between two :meth:`MetricsRegistry.snapshot` calls.

    Counters and histogram counts/sums subtract; gauges report the
    ``after`` value (a gauge is a level, not a flow).  Keys absent from
    ``before`` count from zero, so an instrument created mid-workload
    still reports correctly.
    """
    out = {"counters": {}, "gauges": dict(after.get("gauges", {})),
           "histograms": {}}
    before_counters = before.get("counters", {})
    for name, value in after.get("counters", {}).items():
        out["counters"][name] = value - before_counters.get(name, 0)
    before_histograms = before.get("histograms", {})
    for name, digest in after.get("histograms", {}).items():
        earlier = before_histograms.get(name, {})
        entry = dict(digest)
        entry["count"] = digest.get("count", 0) - earlier.get("count", 0)
        entry["sum"] = digest.get("sum", 0.0) - earlier.get("sum", 0.0)
        earlier_buckets = {bound: cumulative for bound, cumulative
                           in earlier.get("buckets", [])}
        entry["buckets"] = [
            [bound, cumulative - earlier_buckets.get(bound, 0)]
            for bound, cumulative in digest.get("buckets", [])]
        out["histograms"][name] = entry
    return out


#: The module-wide disabled registry — a safe default to pass around.
NULL_REGISTRY = MetricsRegistry(enabled=False)
