"""Engine-wide observability: metrics, query tracing, health stats.

Dependency-free.  Three pieces:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms
  under a :class:`MetricsRegistry` with snapshot/delta semantics;
* :mod:`repro.obs.tracing` — :class:`QueryTracer` span trees with
  ring-buffer retention;
* :mod:`repro.obs.instrument` — the one seam (:func:`attach`,
  :func:`instrumented`) wiring both into the four engines;
* :mod:`repro.obs.export` — human table, JSON, Prometheus text.

Typical use::

    from repro import open_index
    from repro.obs import MetricsRegistry, QueryTracer, render_table

    registry = MetricsRegistry()
    tracer = QueryTracer()
    engine = open_index("closure.json", metrics=registry, tracer=tracer)
    engine.reachable("a", "b")
    print(render_table(registry))
    print(tracer.as_dicts(last=1))
"""

from repro.obs.export import render_json, render_prometheus, render_table
from repro.obs.instrument import (EngineInstruments, WalInstruments, attach,
                                  instrumented)
from repro.obs.metrics import (DEFAULT_LATENCY_BUCKETS, DEFAULT_SIZE_BUCKETS,
                               NULL_REGISTRY, Counter, Gauge, Histogram,
                               MetricsRegistry, delta)
from repro.obs.tracing import QueryTracer, Span, format_trace

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EngineInstruments",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "QueryTracer",
    "Span",
    "WalInstruments",
    "attach",
    "delta",
    "format_trace",
    "instrumented",
    "render_json",
    "render_prometheus",
    "render_table",
]
