"""Per-query span trees with ring-buffer retention.

A :class:`QueryTracer` records one :class:`Span` tree per traced query.
Spans nest naturally: when the hybrid engine answers a query it opens a
span, and the frozen base it consults (sharing the same tracer) opens a
child span inside it — so a trace shows the actual routing decision,
not a guess.

Span annotations carry the paper-level explanation of the answer:

``engine``
    which engine class produced this span.
``hit``
    how Lemma 1 resolved — ``"tree-interval"`` when the destination's
    postorder number fell inside the source's own subtree interval,
    ``"propagated-interval"`` when a propagated (non-tree) interval
    covered it, ``"miss"`` otherwise.
``overlay``
    whether the hybrid delta overlay was consulted, and whether it
    produced the answer.
``cutoffs``
    subsumption cutoffs taken during an update's propagation (Section 4).

Tracing is opt-in and cheap: engines hold ``self._tracer`` (default
``None``) and skip all of this when unset.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "QueryTracer", "format_trace"]


class Span:
    """One timed node in a query's trace tree."""

    __slots__ = ("name", "annotations", "children", "started_ns",
                 "duration_ns")

    def __init__(self, name: str) -> None:
        self.name = name
        self.annotations: Dict[str, Any] = {}
        self.children: List["Span"] = []
        self.started_ns = 0
        self.duration_ns = 0

    def annotate(self, key: str, value: Any) -> None:
        self.annotations[key] = value

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3

    def as_dict(self) -> dict:
        """JSON-safe form, used by ``repro trace --json``."""
        return {
            "name": self.name,
            "duration_us": round(self.duration_us, 3),
            "annotations": {key: _jsonable(value)
                            for key, value in self.annotations.items()},
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, {len(self.children)} children)"


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (set, frozenset)):
        return sorted(value, key=repr)
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class QueryTracer:
    """Collects span trees for the most recent ``capacity`` queries.

    Thread-safety: each thread gets its own span stack (spans from
    concurrent queries never interleave into one tree); the finished
    ring buffer is shared under a lock.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be > 0, got {capacity}")
        self.capacity = capacity
        self._traces: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._local = threading.local()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **annotations: Any) -> Iterator[Span]:
        """Open a span; nested calls attach as children automatically."""
        node = Span(name)
        node.annotations.update(annotations)
        stack = self._stack()
        if stack:
            stack[-1].children.append(node)
        stack.append(node)
        node.started_ns = time.perf_counter_ns()
        try:
            yield node
        finally:
            node.duration_ns = time.perf_counter_ns() - node.started_ns
            stack.pop()
            if not stack:  # a completed root: retain it
                with self._lock:
                    self._traces.append(node)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def annotate(self, key: str, value: Any) -> None:
        """Annotate the innermost open span; no-op outside any span."""
        node = self.current()
        if node is not None:
            node.annotations[key] = value

    # ------------------------------------------------------------------
    # retention / inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def traces(self, last: Optional[int] = None) -> List[Span]:
        """Retained root spans, oldest first (optionally only the last N)."""
        with self._lock:
            items = list(self._traces)
        if last is not None:
            items = items[-last:]
        return items

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()

    def as_dicts(self, last: Optional[int] = None) -> List[dict]:
        return [root.as_dict() for root in self.traces(last)]


def format_trace(root: Span, *, indent: str = "  ") -> str:
    """Render one span tree as an indented text block.

    ::

        reachable engine=HybridTCIndex overlay=miss  (12.4us)
          reachable engine=FrozenTCIndex hit=tree-interval  (3.1us)
    """
    lines: List[str] = []

    def walk(node: Span, depth: int) -> None:
        notes = " ".join(f"{key}={_terse(value)}"
                         for key, value in sorted(node.annotations.items()))
        label = f"{node.name} {notes}".rstrip()
        lines.append(f"{indent * depth}{label}  ({node.duration_us:.1f}us)")
        for child in node.children:
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


def _terse(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(map(str, value))) + "}"
    return str(value)
