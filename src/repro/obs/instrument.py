"""The one seam where observability attaches to engines.

Every engine class carries two attributes, ``_obs`` (an
:class:`EngineInstruments` bound to a :class:`~repro.obs.metrics.MetricsRegistry`)
and ``_tracer`` (a :class:`~repro.obs.tracing.QueryTracer`), both ``None``
by default.  The :func:`instrumented` decorator wraps each public op: when
both attributes are ``None`` the wrapper is two attribute reads and a
branch; otherwise it counts the call, times it into a per-``(engine, op)``
histogram, and opens a trace span (so a hybrid query that consults its
frozen base produces a nested span tree, not two flat ones).

:func:`attach` wires a registry/tracer into an engine instance after
construction — recursing into composite engines (hybrid → write-through
index + pinned base; durable → inner engine + WAL writer) and registering
the paper-level health gauges (interval counts, gap budget, renumber
activity — Sections 3 and 5) as live callbacks.

This module must stay importable by every engine module, so it imports
nothing from :mod:`repro.core` or :mod:`repro.durability` at module level.
"""

from __future__ import annotations

import functools
import time
import weakref
from typing import Callable, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = ["EngineInstruments", "WalInstruments", "instrumented", "attach"]


class EngineInstruments:
    """Per-engine handle that lazily creates ``(engine, op)`` instruments."""

    __slots__ = ("registry", "engine", "_ops", "_extras")

    def __init__(self, registry: MetricsRegistry, engine: str) -> None:
        self.registry = registry
        self.engine = engine
        self._ops: dict = {}
        self._extras: dict = {}

    def op(self, name: str):
        """The ``(counter, histogram)`` pair for one operation name."""
        pair = self._ops.get(name)
        if pair is None:
            labels = {"engine": self.engine, "op": name}
            pair = (
                self.registry.counter(
                    "tc_op_total", help="engine operations", labels=labels),
                self.registry.histogram(
                    "tc_op_latency_seconds",
                    help="per-operation wall time", labels=labels),
            )
            self._ops[name] = pair
        return pair

    def counter(self, name: str, help: str = ""):
        """An engine-labelled counter outside the per-op family."""
        instrument = self._extras.get(("counter", name))
        if instrument is None:
            instrument = self.registry.counter(
                name, help=help, labels={"engine": self.engine})
            self._extras[("counter", name)] = instrument
        return instrument

    def histogram(self, name: str, help: str = "", buckets=None):
        """An engine-labelled histogram outside the per-op family."""
        instrument = self._extras.get(("histogram", name))
        if instrument is None:
            instrument = self.registry.histogram(
                name, help=help, buckets=buckets,
                labels={"engine": self.engine})
            self._extras[("histogram", name)] = instrument
        return instrument

    def child(self, engine: str) -> "EngineInstruments":
        """Instruments for a nested engine, sharing this registry."""
        return EngineInstruments(self.registry, engine)


class WalInstruments:
    """The durability layer's WAL metrics, created once per registry."""

    __slots__ = ("append_total", "append_seconds", "fsync_total",
                 "fsync_seconds", "pending")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.append_total = registry.counter(
            "tc_wal_appends_total", help="records appended to the WAL")
        self.append_seconds = registry.histogram(
            "tc_wal_append_seconds", help="WAL record append wall time")
        self.fsync_total = registry.counter(
            "tc_wal_fsyncs_total", help="WAL fsync batches flushed")
        self.fsync_seconds = registry.histogram(
            "tc_wal_fsync_seconds", help="WAL fsync wall time")
        self.pending = registry.gauge(
            "tc_wal_pending_records",
            help="appended records not yet covered by an fsync")


def instrumented(op: str) -> Callable:
    """Decorate an engine method as one observable operation.

    Disabled path (no registry, no tracer): two attribute reads and one
    branch.  Enabled: count + latency histogram under labels
    ``{engine, op}``; with a tracer, the call body runs inside a span
    named ``op`` so nested engine calls build a span tree.  Signatures
    survive via ``functools.wraps`` (``inspect.signature`` follows
    ``__wrapped__``), which the conformance suite relies on.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            obs = self._obs
            tracer = self._tracer
            if obs is None and tracer is None:
                return fn(self, *args, **kwargs)
            started = time.perf_counter_ns()
            try:
                if tracer is not None:
                    with tracer.span(op, engine=type(self).__name__):
                        return fn(self, *args, **kwargs)
                return fn(self, *args, **kwargs)
            finally:
                if obs is not None:
                    counter, histogram = obs.op(op)
                    counter.inc()
                    histogram.observe_ns(time.perf_counter_ns() - started)
        return wrapper

    return decorate


def _live(ref: "weakref.ref", getter: Callable) -> Callable[[], float]:
    """A gauge callback that survives its engine being garbage-collected."""

    def read() -> float:
        engine = ref()
        if engine is None:
            return 0.0
        return float(getter(engine))

    return read


def _gauge(registry: MetricsRegistry, name: str, help: str, label: str,
           ref: "weakref.ref", getter: Callable) -> None:
    gauge = registry.gauge(name, help=help, labels={"engine": label})
    gauge.set_function(_live(ref, getter))


def _register_interval_gauges(registry: MetricsRegistry, engine,
                              label: str) -> None:
    ref = weakref.ref(engine)
    _gauge(registry, "tc_nodes", "indexed nodes", label, ref, len)
    _gauge(registry, "tc_intervals_total",
           "total stored intervals (Section 5 space metric)", label, ref,
           lambda e: e.num_intervals)
    _gauge(registry, "tc_intervals_per_node",
           "mean intervals per node", label, ref,
           lambda e: e.num_intervals / max(len(e), 1))
    _gauge(registry, "tc_gap_budget_remaining",
           "free postorder numbers below the current maximum "
           "(-1: unlimited under fractional numbering)", label, ref,
           lambda e: e.gap_budget_remaining)
    _gauge(registry, "tc_renumber_total",
           "full renumbering passes performed", label, ref,
           lambda e: e.renumber_count)


def _register_frozen_gauges(registry: MetricsRegistry, engine,
                            label: str) -> None:
    ref = weakref.ref(engine)
    _gauge(registry, "tc_nodes", "indexed nodes", label, ref, len)
    _gauge(registry, "tc_intervals_total",
           "total stored intervals (Section 5 space metric)", label, ref,
           lambda e: e.num_intervals)
    _gauge(registry, "tc_intervals_per_node",
           "mean intervals per node", label, ref,
           lambda e: e.num_intervals / max(len(e), 1))
    _gauge(registry, "tc_frozen_nbytes", "flat-buffer footprint in bytes",
           label, ref, lambda e: e.nbytes)


def _register_hybrid_gauges(registry: MetricsRegistry, engine,
                            label: str) -> None:
    ref = weakref.ref(engine)
    _gauge(registry, "tc_nodes", "indexed nodes", label, ref, len)
    _gauge(registry, "tc_hybrid_delta_arcs",
           "arcs in the delta overlay", label, ref, lambda e: e.delta_size)
    _gauge(registry, "tc_hybrid_delta_nodes",
           "nodes added since the base snapshot", label, ref,
           lambda e: len(e.delta_nodes))
    _gauge(registry, "tc_hybrid_delta_cost",
           "accumulated mutation cost since the last compaction", label,
           ref, lambda e: e.delta_cost)
    _gauge(registry, "tc_hybrid_tainted",
           "1 when queries route to the mutable index", label, ref,
           lambda e: 1 if e.tainted else 0)
    _gauge(registry, "tc_hybrid_compactions_total",
           "delta folds into a fresh base", label, ref,
           lambda e: e.compactions)


def attach(engine, *, metrics: Optional[MetricsRegistry] = None,
           tracer=None):
    """Wire a registry and/or tracer into an engine instance.

    Recurses into composite engines so the whole stack reports under one
    registry: a hybrid's write-through index and pinned base, a durable
    store's inner engine and WAL writer.  A disabled registry counts as
    no registry at all (the truly-zero-overhead path).  Health gauges
    hold weak references — a collected engine reads as 0, never keeps
    the object alive, and never breaks a scrape.

    Gauge names are keyed by engine *class*: attaching two instances of
    the same class to one registry leaves the later instance owning the
    health gauges (op counters and histograms still aggregate).

    Returns ``engine``.
    """
    from repro.core.frozen import FrozenTCIndex
    from repro.core.hybrid import HybridTCIndex
    from repro.core.index import IntervalTCIndex

    registry = metrics
    if registry is not None and not registry.enabled:
        registry = None
    label = type(engine).__name__
    engine._obs = (EngineInstruments(registry, label)
                   if registry is not None else None)
    engine._tracer = tracer

    if isinstance(engine, HybridTCIndex):
        attach(engine.index, metrics=registry, tracer=tracer)
        attach(engine.base, metrics=registry, tracer=tracer)
        if registry is not None:
            _register_hybrid_gauges(registry, engine, label)
        return engine
    if isinstance(engine, IntervalTCIndex):
        if registry is not None:
            _register_interval_gauges(registry, engine, label)
        return engine
    if isinstance(engine, FrozenTCIndex):
        if registry is not None:
            _register_frozen_gauges(registry, engine, label)
        return engine

    # Self-registering engines (hoplabel, chain, future families) own
    # their gauge vocabulary — no per-class knowledge needed here.
    register = getattr(engine, "_register_gauges", None)
    if register is not None:
        if registry is not None:
            register(registry, label)
        return engine

    from repro.durability.store import DurableTCIndex
    if isinstance(engine, DurableTCIndex):
        engine._attach_observability(registry, tracer)
    return engine
