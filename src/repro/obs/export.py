"""Exporters: human table, JSON, and Prometheus text exposition.

All three read a :class:`~repro.obs.metrics.MetricsRegistry` (or a
snapshot dict from :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`);
none of them mutates anything, so exporting is always safe mid-workload.
Benchmarks that want "what did this workload do" rather than "what has
happened since process start" snapshot before and after and diff with
:func:`repro.obs.metrics.delta`.
"""

from __future__ import annotations

import json
import math
from typing import List, Union

from repro.obs.metrics import MetricsRegistry, _label_key, render_name

__all__ = ["render_json", "render_prometheus",
           "render_prometheus_snapshots", "render_table"]


def _finite(value) -> Union[float, int, None]:
    """JSON-safe number: non-finite floats become ``None``."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def _sanitize(snapshot: dict) -> dict:
    out = {
        "counters": dict(snapshot.get("counters", {})),
        "gauges": {name: _finite(value)
                   for name, value in snapshot.get("gauges", {}).items()},
        "histograms": {},
    }
    for name, digest in snapshot.get("histograms", {}).items():
        out["histograms"][name] = {key: _finite(value) if not isinstance(
            value, list) else value for key, value in digest.items()}
    return out


def _snapshot_of(source: Union[MetricsRegistry, dict]) -> dict:
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return source


def render_json(source: Union[MetricsRegistry, dict], *,
                indent: int = 2) -> str:
    """The snapshot as a JSON document (``repro stats --stats-json``)."""
    return json.dumps(_sanitize(_snapshot_of(source)), indent=indent,
                      sort_keys=True)


def render_table(source: Union[MetricsRegistry, dict]) -> str:
    """A plain-text report: counters, gauges, histogram digests."""
    snapshot = _sanitize(_snapshot_of(source))
    lines: List[str] = []

    counters = snapshot["counters"]
    if counters:
        lines.append("counters")
        width = max(len(name) for name in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")

    gauges = snapshot["gauges"]
    if gauges:
        if lines:
            lines.append("")
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            shown = "n/a" if value is None else f"{value:g}"
            lines.append(f"  {name:<{width}}  {shown}")

    histograms = snapshot["histograms"]
    if histograms:
        if lines:
            lines.append("")
        lines.append("histograms"
                     "  (count / mean / p50 / p90 / p99, seconds)")
        width = max(len(name) for name in histograms)
        for name in sorted(histograms):
            digest = histograms[name]
            count = digest.get("count", 0)
            if count:
                mean = (digest.get("sum") or 0.0) / count
                row = (f"{count} / {mean:.3g} / {digest.get('p50', 0):.3g}"
                       f" / {digest.get('p90', 0):.3g}"
                       f" / {digest.get('p99', 0):.3g}")
            else:
                row = "0"
            lines.append(f"  {name:<{width}}  {row}")

    return "\n".join(lines) if lines else "(no metrics recorded)"


def _prom_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def render_prometheus(registry: MetricsRegistry) -> str:
    """Prometheus text exposition format (version 0.0.4).

    Works from the registry (not a snapshot) because the format needs
    instrument kinds and help strings.  Histograms export cumulative
    ``_bucket{le=...}`` series plus ``_sum`` and ``_count``, the shape
    ``histogram_quantile()`` expects.
    """
    lines: List[str] = []
    seen_headers = set()
    for kind, instrument in registry.kinds():
        name = instrument.name
        if name not in seen_headers:
            seen_headers.add(name)
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} "
                         f"{'untyped' if kind not in ('counter', 'gauge', 'histogram') else kind}")
        label_key = _label_key(instrument.labels)
        if kind in ("counter", "gauge"):
            lines.append(f"{render_name(name, label_key)} "
                         f"{_prom_value(instrument.value)}")
            continue
        digest = instrument.summary()
        for bound, cumulative in digest["buckets"]:
            bucket_key = label_key + (("le", _prom_value(float(bound))),)
            lines.append(f"{render_name(name + '_bucket', bucket_key)} "
                         f"{cumulative}")
        inf_key = label_key + (("le", "+Inf"),)
        lines.append(f"{render_name(name + '_bucket', inf_key)} "
                     f"{digest['count']}")
        lines.append(f"{render_name(name + '_sum', label_key)} "
                     f"{_prom_value(digest['sum'])}")
        lines.append(f"{render_name(name + '_count', label_key)} "
                     f"{digest['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


def _split_rendered(rendered: str) -> tuple:
    """``name{k="v"}`` back into ``(name, inner-label-string)``."""
    base, brace, rest = rendered.partition("{")
    if not brace:
        return rendered, ""
    return base, rest[:-1]  # drop the closing brace


def _series(name: str, inner: str, extra: str = "") -> str:
    labels = ",".join(part for part in (inner, extra) if part)
    return f"{name}{{{labels}}}" if labels else name


def render_prometheus_snapshots(snapshots) -> str:
    """Prometheus text merged from several ``snapshot()`` dicts.

    The cluster parent cannot hold the workers' live registries — they
    live in other processes — so it scrapes each worker's JSON snapshot
    over its admin socket and merges here.  Workers stamp ``worker_id``
    via registry default labels, which keeps every series distinct; this
    renderer only has the snapshot dicts, so (unlike
    :func:`render_prometheus`) it emits ``# TYPE`` but no ``# HELP``.
    """
    by_kind: dict = {}  # base name -> (kind, {series -> value-or-digest})
    for snapshot in snapshots:
        if not snapshot:
            continue
        for kind in ("counters", "gauges", "histograms"):
            for rendered, value in snapshot.get(kind, {}).items():
                base, inner = _split_rendered(rendered)
                entry = by_kind.setdefault(base, (kind[:-1], {}))
                entry[1][inner] = value
    lines: List[str] = []
    for base in sorted(by_kind):
        kind, series = by_kind[base]
        lines.append(f"# TYPE {base} {kind}")
        for inner in sorted(series):
            value = series[inner]
            if kind in ("counter", "gauge"):
                lines.append(f"{_series(base, inner)} {_prom_value(value)}")
                continue
            digest = value or {}
            for bound, cumulative in digest.get("buckets", []):
                extra = f'le="{_prom_value(float(bound))}"'
                lines.append(f"{_series(base + '_bucket', inner, extra)} "
                             f"{cumulative}")
            count = digest.get("count", 0)
            inf_series = _series(base + "_bucket", inner, 'le="+Inf"')
            lines.append(f"{inf_series} {count}")
            lines.append(f"{_series(base + '_sum', inner)} "
                         f"{_prom_value(digest.get('sum', 0.0))}")
            lines.append(f"{_series(base + '_count', inner)} {count}")
    return "\n".join(lines) + ("\n" if lines else "")
