"""Graph traversals: topological orders, DFS, and pointer-chasing reachability.

These are the primitive walks used throughout the library:

* Alg1 (optimal tree cover) scans nodes *in topological order*;
* interval propagation scans nodes *in reverse topological order*;
* the postorder numbering walks the spanning tree depth-first;
* the :mod:`repro.baselines.pointer_chasing` baseline answers reachability
  queries with the plain DFS implemented here.

All traversals are iterative so that graphs with tens of thousands of nodes
do not hit Python's recursion limit.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import CycleError, NodeNotFoundError
from repro.graph.digraph import DiGraph, Node


def topological_order(graph: DiGraph) -> List[Node]:
    """Return the nodes in a topological order (Kahn's algorithm).

    Deterministic for a given insertion order of the graph.  Raises
    :class:`CycleError` if the graph is cyclic; the exception carries one
    offending cycle for diagnostics.
    """
    in_degree: Dict[Node, int] = {node: graph.in_degree(node) for node in graph}
    ready = deque(node for node in graph if in_degree[node] == 0)
    order: List[Node] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for successor in graph.successors(node):
            in_degree[successor] -= 1
            if in_degree[successor] == 0:
                ready.append(successor)
    if len(order) != graph.num_nodes:
        raise CycleError(cycle=find_cycle(graph))
    return order


def reverse_topological_order(graph: DiGraph) -> List[Node]:
    """Nodes ordered so every node appears *after* all of its successors."""
    return list(reversed(topological_order(graph)))


def is_acyclic(graph: DiGraph) -> bool:
    """Return whether the graph contains no directed cycle."""
    try:
        topological_order(graph)
    except CycleError:
        return False
    return True


def find_cycle(graph: DiGraph) -> Optional[List[Node]]:
    """Find one directed cycle, or ``None`` if the graph is acyclic.

    The cycle is returned as a node list ``[v0, v1, ..., v0]``.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color: Dict[Node, int] = {node: WHITE for node in graph}
    parent: Dict[Node, Node] = {}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack = [(start, iter(graph.successors(start)))]
        color[start] = GREY
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                if color[successor] == WHITE:
                    color[successor] = GREY
                    parent[successor] = node
                    stack.append((successor, iter(graph.successors(successor))))
                    advanced = True
                    break
                if color[successor] == GREY:
                    cycle = [successor]
                    walk = node
                    while walk != successor:
                        cycle.append(walk)
                        walk = parent[walk]
                    cycle.append(successor)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[node] = BLACK
                stack.pop()
    return None


def dfs_preorder(graph: DiGraph, start: Node) -> Iterator[Node]:
    """Depth-first preorder from ``start`` (each node yielded once)."""
    if start not in graph:
        raise NodeNotFoundError(start)
    seen: Set[Node] = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        yield node
        # Reversed so that iteration order matches recursive DFS over the
        # successor set's iteration order.
        for successor in reversed(list(graph.successors(node))):
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)


def dfs_postorder(graph: DiGraph, start: Node) -> Iterator[Node]:
    """Depth-first postorder from ``start`` (each node yielded once)."""
    if start not in graph:
        raise NodeNotFoundError(start)
    seen: Set[Node] = {start}
    stack: List[tuple] = [(start, iter(graph.successors(start)))]
    while stack:
        node, successors = stack[-1]
        advanced = False
        for successor in successors:
            if successor not in seen:
                seen.add(successor)
                stack.append((successor, iter(graph.successors(successor))))
                advanced = True
                break
        if not advanced:
            stack.pop()
            yield node


def reachable_from(graph: DiGraph, start: Node, *, reflexive: bool = True) -> Set[Node]:
    """The *successor list* of ``start`` by pointer chasing (plain DFS).

    This is the un-indexed ground truth the compressed closure is tested
    against.  With ``reflexive=True`` (the paper's convention) ``start`` is
    included in its own successor list.
    """
    reached = set(dfs_preorder(graph, start))
    if not reflexive:
        reached.discard(start)
    return reached


def can_reach(graph: DiGraph, source: Node, destination: Node) -> bool:
    """Pointer-chasing reachability query with early exit.

    Reflexive: ``can_reach(g, v, v)`` is ``True`` for any node ``v``.
    """
    if source not in graph:
        raise NodeNotFoundError(source)
    if destination not in graph:
        raise NodeNotFoundError(destination)
    if source == destination:
        return True
    seen: Set[Node] = {source}
    stack = [source]
    while stack:
        node = stack.pop()
        for successor in graph.successors(node):
            if successor == destination:
                return True
            if successor not in seen:
                seen.add(successor)
                stack.append(successor)
    return False


def ancestors_of(graph: DiGraph, node: Node, *, reflexive: bool = True) -> Set[Node]:
    """The *predecessor list* of ``node``: everything that can reach it."""
    if node not in graph:
        raise NodeNotFoundError(node)
    reached: Set[Node] = {node}
    stack = [node]
    while stack:
        current = stack.pop()
        for predecessor in graph.predecessors(current):
            if predecessor not in reached:
                reached.add(predecessor)
                stack.append(predecessor)
    if not reflexive:
        reached.discard(node)
    return reached


def bfs_layers(graph: DiGraph, start: Node) -> Iterator[List[Node]]:
    """Yield nodes reachable from ``start`` grouped by BFS distance."""
    if start not in graph:
        raise NodeNotFoundError(start)
    seen: Set[Node] = {start}
    layer = [start]
    while layer:
        yield layer
        next_layer: List[Node] = []
        for node in layer:
            for successor in graph.successors(node):
                if successor not in seen:
                    seen.add(successor)
                    next_layer.append(successor)
        layer = next_layer


def tree_postorder(
    children: Dict[Node, List[Node]],
    root: Node,
    *,
    child_order: Optional[Callable[[Iterable[Node]], List[Node]]] = None,
) -> Iterator[Node]:
    """Postorder walk of an explicit tree given as a children map.

    ``children`` maps each node to the list of its tree children; missing
    keys are treated as leaves.  ``child_order`` optionally re-orders the
    children of every node before descent (the postorder numbering of the
    compressed closure uses this hook to stay deterministic).
    """
    order = child_order if child_order is not None else list
    stack: List[tuple] = [(root, iter(order(children.get(root, [])))) ]
    seen: Set[Node] = {root}
    while stack:
        node, kids = stack[-1]
        advanced = False
        for child in kids:
            if child in seen:
                raise CycleError(f"tree children map revisits node {child!r}")
            seen.add(child)
            stack.append((child, iter(order(children.get(child, [])))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            yield node
