"""Strongly connected components and graph condensation.

The paper's compression scheme is defined for acyclic graphs and is
"extended to cyclic graphs by collapsing strongly connected components into
one node" (Section 3).  This module provides that collapse: Tarjan's
algorithm (iterative, so deep graphs do not blow the recursion limit) and a
condensation that the :class:`repro.core.condensation.CondensedIndex`
wrapper builds the interval index on.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.graph.digraph import DiGraph, Node

Component = FrozenSet[Node]


def strongly_connected_components(graph: DiGraph) -> List[Component]:
    """Tarjan's SCC algorithm, iterative formulation.

    Components are returned in *reverse topological order of the
    condensation* (a component appears before any component that can reach
    it), which is Tarjan's natural emission order.
    """
    index_of: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[Component] = []
    counter = 0

    for root in graph:
        if root in index_of:
            continue
        work: List[Tuple[Node, List[Node], int]] = [(root, list(graph.successors(root)), 0)]
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, successors, position = work.pop()
            advanced = False
            while position < len(successors):
                successor = successors[position]
                position += 1
                if successor not in index_of:
                    work.append((node, successors, position))
                    index_of[successor] = lowlink[successor] = counter
                    counter += 1
                    stack.append(successor)
                    on_stack[successor] = True
                    work.append((successor, list(graph.successors(successor)), 0))
                    advanced = True
                    break
                if on_stack.get(successor, False):
                    lowlink[node] = min(lowlink[node], index_of[successor])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, Component]]:
    """Collapse every strongly connected component into a single node.

    Returns ``(dag, member_of)`` where ``dag`` is an acyclic
    :class:`DiGraph` whose nodes are frozensets of original nodes, and
    ``member_of`` maps every original node to its component.  Arcs between
    distinct components are deduplicated.
    """
    components = strongly_connected_components(graph)
    member_of: Dict[Node, Component] = {}
    for component in components:
        for node in component:
            member_of[node] = component
    dag = DiGraph(nodes=components)
    for source, destination in graph.arcs():
        source_component = member_of[source]
        destination_component = member_of[destination]
        if source_component is not destination_component:
            dag.add_arc(source_component, destination_component)
    return dag, member_of
