"""Synthetic graph workloads.

Section 3.3 of the paper evaluates the compression scheme on synthetic
random graphs parameterised by *number of nodes* and *average out-degree*
(following Agrawal & Jagadish, VLDB 1987).  This module implements that
generator plus every special graph family the paper discusses:

* random DAGs with a prescribed average out-degree (Figures 3.9-3.11);
* random trees (Section 3.1, Figure 3.1);
* the bipartite worst case of Figure 3.6 and its intermediary-node fix of
  Figure 3.7;
* exhaustive and sampled enumeration of all small DAGs over a fixed
  topological order (Figure 3.12);
* IS-A-style concept hierarchies for the knowledge-base experiments
  (Section 2.1).

All generators take an explicit :class:`random.Random` (or a seed) so that
experiments are reproducible.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterator, List, Optional, Sequence, Union

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

RandomLike = Union[random.Random, int, None]


def _resolve_rng(rng: RandomLike) -> random.Random:
    if isinstance(rng, random.Random):
        return rng
    return random.Random(rng)


def random_dag(
    num_nodes: int,
    avg_out_degree: float,
    rng: RandomLike = None,
    *,
    connect: bool = False,
) -> DiGraph:
    """A random DAG with ``num_nodes`` nodes and ``num_nodes * avg_out_degree`` arcs.

    The paper's workload model: pick a random topological permutation of the
    nodes and sample the requested number of *distinct* forward arcs
    uniformly from the ``n(n-1)/2`` admissible pairs.  Node labels are the
    integers ``0 .. num_nodes-1``; the permutation is hidden so that node
    label carries no positional information.

    With ``connect=True`` every node with no predecessor other than the
    lowest-ranked node is attached to a random earlier node first, producing
    a single weakly connected component (the paper instead hooks components
    to a virtual root at indexing time; both paths are exercised in tests).
    """
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    max_arcs = num_nodes * (num_nodes - 1) // 2
    wanted = int(round(num_nodes * avg_out_degree))
    if wanted > max_arcs:
        raise GraphError(
            f"cannot place {wanted} arcs in an acyclic graph on {num_nodes} nodes "
            f"(maximum is {max_arcs})"
        )
    generator = _resolve_rng(rng)
    rank = list(range(num_nodes))
    generator.shuffle(rank)

    graph = DiGraph(nodes=range(num_nodes))
    chosen = set()
    if connect and num_nodes > 1:
        by_rank = sorted(range(num_nodes), key=rank.__getitem__)
        for position in range(1, num_nodes):
            parent = by_rank[generator.randrange(position)]
            pair = (parent, by_rank[position])
            if pair not in chosen:
                chosen.add(pair)
                graph.add_arc(*pair)

    # Sample distinct forward pairs.  For sparse requests rejection sampling
    # is near-optimal; for dense requests fall back to an explicit shuffle of
    # the full pair universe.
    remaining = wanted - len(chosen)
    if remaining > 0 and remaining > max_arcs // 2:
        universe = [
            (low, high) if rank[low] < rank[high] else (high, low)
            for low, high in itertools.combinations(range(num_nodes), 2)
        ]
        generator.shuffle(universe)
        for pair in universe:
            if remaining == 0:
                break
            if pair not in chosen:
                chosen.add(pair)
                graph.add_arc(*pair)
                remaining -= 1
    else:
        while remaining > 0:
            first = generator.randrange(num_nodes)
            second = generator.randrange(num_nodes)
            if first == second:
                continue
            if rank[first] > rank[second]:
                first, second = second, first
            pair = (first, second)
            if pair in chosen:
                continue
            chosen.add(pair)
            graph.add_arc(*pair)
            remaining -= 1
    return graph


def random_dag_local(
    num_nodes: int,
    avg_out_degree: float,
    rng: RandomLike = None,
    *,
    window: int = 20,
) -> DiGraph:
    """A random DAG whose arcs have bounded *topological locality*.

    Each arc ``(i, j)`` satisfies ``0 < j - i <= window`` in the hidden
    topological order.  Locality is how real part hierarchies and IS-A
    taxonomies look (related things sit near each other), and it is the
    regime where the paper's Figure 3.11 claim — *better compression for
    larger graphs* — shows up strongly: the full closure grows roughly
    ``n * window`` while long chains keep the compressed closure near the
    tree bound (see EXPERIMENTS.md, E-3.11).
    """
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    if window < 1:
        raise GraphError("window must be >= 1")
    wanted = int(round(num_nodes * avg_out_degree))
    max_arcs = sum(min(window, num_nodes - 1 - i) for i in range(num_nodes))
    if wanted > max_arcs:
        raise GraphError(
            f"cannot place {wanted} arcs with window {window} on {num_nodes} nodes "
            f"(maximum is {max_arcs})"
        )
    generator = _resolve_rng(rng)
    graph = DiGraph(nodes=range(num_nodes))
    chosen = set()
    while len(chosen) < wanted:
        source = generator.randrange(num_nodes - 1)
        destination = source + generator.randint(1, min(window, num_nodes - 1 - source))
        pair = (source, destination)
        if pair not in chosen:
            chosen.add(pair)
            graph.add_arc(source, destination)
    return graph


def random_tree(
    num_nodes: int,
    rng: RandomLike = None,
    *,
    max_children: Optional[int] = None,
) -> DiGraph:
    """A uniformly random rooted tree with arcs from parent to child.

    Node ``0`` is the root; node ``k`` attaches to a uniformly random
    earlier node (bounded by ``max_children`` when given).
    """
    if num_nodes < 0:
        raise GraphError("num_nodes must be non-negative")
    generator = _resolve_rng(rng)
    graph = DiGraph(nodes=range(num_nodes))
    child_count = [0] * num_nodes
    for node in range(1, num_nodes):
        while True:
            parent = generator.randrange(node)
            if max_children is None or child_count[parent] < max_children:
                break
        child_count[parent] += 1
        graph.add_arc(parent, node)
    return graph


def path_graph(num_nodes: int) -> DiGraph:
    """The directed path ``0 -> 1 -> ... -> n-1`` (a single chain)."""
    graph = DiGraph(nodes=range(num_nodes))
    for node in range(num_nodes - 1):
        graph.add_arc(node, node + 1)
    return graph


def bipartite_worst_case(num_sources: int, num_sinks: int) -> DiGraph:
    """The complete bipartite DAG of Figure 3.6.

    ``num_sources`` top nodes each point to all ``num_sinks`` bottom nodes.
    Any tree cover leaves ``(num_sources - 1) * (num_sinks - 1)`` arcs
    uncovered in the worst arrangement, driving the interval count to
    Theta(n^2/4) at ``num_sources ~ num_sinks ~ n/2``.  Sources are labelled
    ``('s', i)`` and sinks ``('t', j)``.
    """
    graph = DiGraph()
    for source in range(num_sources):
        for sink in range(num_sinks):
            graph.add_arc(("s", source), ("t", sink))
    return graph


def bipartite_with_intermediary(num_sources: int, num_sinks: int) -> DiGraph:
    """Figure 3.7: the same reachability with one intermediary node.

    Every source points at the single hub ``('m', 0)`` which points at every
    sink, restoring an O(n) compressed closure while preserving exactly the
    source->sink reachability of :func:`bipartite_worst_case`.
    """
    graph = DiGraph()
    hub = ("m", 0)
    for source in range(num_sources):
        graph.add_arc(("s", source), hub)
    for sink in range(num_sinks):
        graph.add_arc(hub, ("t", sink))
    return graph


def layered_dag(
    layers: Sequence[int],
    avg_out_degree: float,
    rng: RandomLike = None,
) -> DiGraph:
    """A layered DAG: arcs only go from one layer to the next.

    ``layers`` gives the node count per layer.  Each node in layer ``k``
    receives ``avg_out_degree`` arcs on average into layer ``k+1``; every
    node in layer ``k+1`` is guaranteed at least one predecessor so the
    graph has no isolated layers.  Models the "meaningful bundles" shape the
    paper expects in real inheritance hierarchies.
    """
    generator = _resolve_rng(rng)
    graph = DiGraph()
    node_id = 0
    layer_nodes: List[List[int]] = []
    for size in layers:
        layer_nodes.append(list(range(node_id, node_id + size)))
        for node in layer_nodes[-1]:
            graph.add_node(node)
        node_id += size
    for upper, lower in zip(layer_nodes, layer_nodes[1:]):
        for child in lower:
            graph.add_arc(generator.choice(upper), child)
        extra = int(round(len(upper) * avg_out_degree)) - len(lower)
        for _ in range(max(0, extra)):
            graph.add_arc(generator.choice(upper), generator.choice(lower))
    return graph


def random_hierarchy(
    num_nodes: int,
    rng: RandomLike = None,
    *,
    max_parents: int = 3,
    multi_parent_probability: float = 0.3,
) -> DiGraph:
    """An IS-A-style concept hierarchy (Section 2.1 workload).

    Node 0 is the root concept.  Every later concept gets one uniformly
    random parent among earlier concepts and, with probability
    ``multi_parent_probability``, up to ``max_parents - 1`` additional
    distinct parents — the "overlapping hierarchies" shape of KL-ONE-style
    knowledge bases.
    """
    generator = _resolve_rng(rng)
    graph = DiGraph(nodes=range(num_nodes))
    for node in range(1, num_nodes):
        parents = {generator.randrange(node)}
        if node > 1 and generator.random() < multi_parent_probability:
            extra = generator.randint(1, max_parents - 1)
            for _ in range(extra):
                parents.add(generator.randrange(node))
        for parent in parents:
            graph.add_arc(parent, node)
    return graph


def enumerate_dags(num_nodes: int) -> Iterator[DiGraph]:
    """Every DAG over the fixed topological order ``0 < 1 < ... < n-1``.

    There are ``2 ** (n(n-1)/2)`` such graphs; the Figure 3.12 census uses
    this family.  Exhaustive enumeration is practical up to ``n = 5``
    (1024 graphs) or ``n = 6`` (32768); use :func:`sample_dags` beyond that.
    """
    pairs = list(itertools.combinations(range(num_nodes), 2))
    for mask in range(1 << len(pairs)):
        graph = DiGraph(nodes=range(num_nodes))
        for bit, (source, destination) in enumerate(pairs):
            if mask >> bit & 1:
                graph.add_arc(source, destination)
        yield graph


def sample_dags(num_nodes: int, count: int, rng: RandomLike = None) -> Iterator[DiGraph]:
    """``count`` uniform samples from the fixed-topological-order DAG family.

    Including each admissible arc independently with probability 1/2 is
    exactly uniform over the ``2 ** (n(n-1)/2)`` fixed-order DAGs, so the
    sampled Figure 3.12 histogram converges to the exhaustive one.
    """
    generator = _resolve_rng(rng)
    pairs = list(itertools.combinations(range(num_nodes), 2))
    for _ in range(count):
        graph = DiGraph(nodes=range(num_nodes))
        for source, destination in pairs:
            if generator.random() < 0.5:
                graph.add_arc(source, destination)
        yield graph


def grid_dag(rows: int, columns: int) -> DiGraph:
    """A rows x columns grid with arcs right and down (dense closure shape)."""
    graph = DiGraph()
    for row in range(rows):
        for column in range(columns):
            graph.add_node((row, column))
            if column + 1 < columns:
                graph.add_arc((row, column), (row, column + 1))
            if row + 1 < rows:
                graph.add_arc((row, column), (row + 1, column))
    return graph
