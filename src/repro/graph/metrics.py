"""Structural metrics of DAGs, as used in the experiment reports.

The paper characterises its workloads by node count and average
out-degree; deeper structure — depth, width, reachability density —
explains *why* a particular graph compresses well or badly (deep and
narrow: close to the 2-units-per-node tree bound; shallow and wide:
approaching the Figure 3.6 worst case).  These helpers compute that
structure for report tables and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reverse_topological_order, topological_order


def longest_path_length(graph: DiGraph) -> int:
    """Number of arcs on the longest directed path (the DAG's depth)."""
    length: Dict[Node, int] = {}
    for node in reverse_topological_order(graph):
        successors = graph.successors(node)
        length[node] = 1 + max((length[s] for s in successors), default=-1)
    return max(length.values(), default=0)


def level_of(graph: DiGraph) -> Dict[Node, int]:
    """Longest-path level per node (roots at level 0)."""
    level: Dict[Node, int] = {}
    for node in topological_order(graph):
        predecessors = graph.predecessors(node)
        level[node] = 1 + max((level[p] for p in predecessors), default=-1)
    return level


def width_by_levels(graph: DiGraph) -> int:
    """Size of the most populated level — a cheap lower bound on width.

    The true width (maximum antichain) equals the Dilworth chain count,
    available precisely via
    :func:`repro.baselines.chain_cover.optimal_chain_decomposition`; the
    level histogram is the O(n + m) approximation used in reports.
    """
    levels = level_of(graph)
    histogram: Dict[int, int] = {}
    for level in levels.values():
        histogram[level] = histogram.get(level, 0) + 1
    return max(histogram.values(), default=0)


def reachability_count(graph: DiGraph) -> int:
    """Number of ordered reachable pairs, excluding reflexive ones.

    One reverse-topological bitset pass — O(n * m / wordsize); this is the
    exact size of the full transitive closure in the paper's units.
    """
    bit_of = {node: position for position, node in enumerate(graph.nodes())}
    row: Dict[Node, int] = {}
    pairs = 0
    for node in reverse_topological_order(graph):
        bits = 0
        for successor in graph.successors(node):
            bits |= row[successor] | (1 << bit_of[successor])
        row[node] = bits
        pairs += bits.bit_count()
    return pairs


def reachability_density(graph: DiGraph) -> float:
    """Reachable pairs as a fraction of the n(n-1)/2 admissible pairs."""
    n = graph.num_nodes
    possible = n * (n - 1) // 2
    if possible == 0:
        return 0.0
    return reachability_count(graph) / possible


def redundant_arcs(graph: DiGraph) -> List[tuple]:
    """Arcs whose removal leaves reachability unchanged (shortcut arcs).

    An arc ``(u, v)`` is redundant iff ``v`` is reachable from ``u``
    through some other successor.  "A graph of high degree has many
    'redundant' arcs whose removal does not affect the reachability
    information ... the compressed closure avoids the extra storage
    required for these redundant arcs" (Section 3.3).
    """
    bit_of = {node: position for position, node in enumerate(graph.nodes())}
    row: Dict[Node, int] = {}
    redundant: List[tuple] = []
    for node in reverse_topological_order(graph):
        bits = 0
        successor_rows = {}
        for successor in graph.successors(node):
            successor_rows[successor] = row[successor] | (1 << bit_of[successor])
            bits |= successor_rows[successor]
        row[node] = bits
        for successor, its_row in successor_rows.items():
            others = 0
            for other, other_row in successor_rows.items():
                if other != successor:
                    others |= other_row
            if others >> bit_of[successor] & 1:
                redundant.append((node, successor))
    return redundant


def transitive_reduction_size(graph: DiGraph) -> int:
    """Arc count of the transitive reduction (non-redundant arcs)."""
    return graph.num_arcs - len(redundant_arcs(graph))


@dataclass(frozen=True)
class GraphProfile:
    """A one-row structural summary of a DAG."""

    num_nodes: int
    num_arcs: int
    avg_out_degree: float
    depth: int
    level_width: int
    reachable_pairs: int
    density: float
    redundant_arcs: int

    def as_dict(self) -> dict:
        """Flat dict for report tables."""
        return dict(self.__dict__)


def profile(graph: DiGraph) -> GraphProfile:
    """Compute the full structural profile of ``graph``."""
    return GraphProfile(
        num_nodes=graph.num_nodes,
        num_arcs=graph.num_arcs,
        avg_out_degree=graph.average_out_degree(),
        depth=longest_path_length(graph),
        level_width=width_by_levels(graph),
        reachable_pairs=reachability_count(graph),
        density=reachability_density(graph),
        redundant_arcs=len(redundant_arcs(graph)),
    )
