"""A minimal, fast directed-graph container.

The paper models a binary relation as a directed graph: one node per
distinct value of the source/destination fields and one arc per tuple.
This module provides that substrate.  Nodes are arbitrary hashable labels;
arcs are ordered pairs.  Successor and predecessor sets are both maintained
so that the update algorithms of Section 4 of the paper (which walk
*predecessor* lists) run without auxiliary passes.

The class is deliberately small and dependency-free: the compressed-closure
index, the baselines, and the storage layer all build on it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

from repro.errors import ArcNotFoundError, GraphError, NodeNotFoundError

Node = Hashable
Arc = Tuple[Node, Node]


class DiGraph:
    """A directed graph with O(1) arc insertion, deletion and lookup.

    Adjacency is kept in *insertion order* (dict-backed ordered sets), so
    every traversal — and therefore every tree cover, numbering, and
    benchmark — is fully deterministic across processes, independent of
    string-hash randomisation.

    >>> g = DiGraph()
    >>> g.add_arc("a", "b")
    >>> g.add_arc("b", "c")
    >>> sorted(g.successors("a"))
    ['b']
    >>> g.num_nodes, g.num_arcs
    (3, 2)
    """

    __slots__ = ("_succ", "_pred", "_num_arcs")

    def __init__(self, arcs: Iterable[Arc] = (), nodes: Iterable[Node] = ()) -> None:
        self._succ: Dict[Node, Dict[Node, None]] = {}
        self._pred: Dict[Node, Dict[Node, None]] = {}
        self._num_arcs = 0
        for node in nodes:
            self.add_node(node)
        for source, destination in arcs:
            self.add_arc(source, destination)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` if not already present (idempotent)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_arc(self, source: Node, destination: Node) -> None:
        """Add the arc ``(source, destination)``, creating nodes as needed.

        Self-loops are rejected: the paper's relations are irreflexive (the
        reflexive convention "every node reaches itself" is applied at query
        time, not stored).  Adding an arc twice is idempotent.
        """
        if source == destination:
            raise GraphError(f"self-loop ({source!r}, {source!r}) is not allowed")
        self.add_node(source)
        self.add_node(destination)
        if destination not in self._succ[source]:
            self._succ[source][destination] = None
            self._pred[destination][source] = None
            self._num_arcs += 1

    def remove_arc(self, source: Node, destination: Node) -> None:
        """Remove the arc ``(source, destination)``.

        Raises :class:`ArcNotFoundError` if the arc is absent.
        """
        try:
            del self._succ[source][destination]
        except KeyError:
            raise ArcNotFoundError(source, destination) from None
        del self._pred[destination][source]
        self._num_arcs -= 1

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and every incident arc."""
        if node not in self._succ:
            raise NodeNotFoundError(node)
        for successor in list(self._succ[node]):
            self.remove_arc(node, successor)
        for predecessor in list(self._pred[node]):
            self.remove_arc(predecessor, node)
        del self._succ[node]
        del self._pred[node]

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._succ)

    @property
    def num_arcs(self) -> int:
        """Number of arcs (tuples of the base relation)."""
        return self._num_arcs

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes (insertion order)."""
        return iter(self._succ)

    def arcs(self) -> Iterator[Arc]:
        """Iterate over all arcs as ``(source, destination)`` pairs."""
        for source, successors in self._succ.items():
            for destination in successors:
                yield (source, destination)

    def has_node(self, node: Node) -> bool:
        """Return whether ``node`` is in the graph."""
        return node in self._succ

    def has_arc(self, source: Node, destination: Node) -> bool:
        """Return whether the arc ``(source, destination)`` is present."""
        successors = self._succ.get(source)
        return successors is not None and destination in successors

    def successors(self, node: Node) -> Set[Node]:
        """The *immediate successor list* of ``node`` (paper, Section 3).

        Returns a set-like, insertion-ordered read-only view; callers must
        not mutate it.
        """
        try:
            return self._succ[node].keys()
        except KeyError:
            raise NodeNotFoundError(node) from None

    def predecessors(self, node: Node) -> Set[Node]:
        """The *immediate predecessor list* of ``node`` (paper, Section 3)."""
        try:
            return self._pred[node].keys()
        except KeyError:
            raise NodeNotFoundError(node) from None

    def out_degree(self, node: Node) -> int:
        """Number of immediate successors of ``node``."""
        return len(self.successors(node))

    def in_degree(self, node: Node) -> int:
        """Number of immediate predecessors of ``node``."""
        return len(self.predecessors(node))

    def average_out_degree(self) -> float:
        """Average out-degree, the paper's primary workload parameter."""
        if not self._succ:
            return 0.0
        return self._num_arcs / len(self._succ)

    def roots(self) -> list:
        """Nodes without predecessors, in insertion order."""
        return [node for node in self._succ if not self._pred[node]]

    def leaves(self) -> list:
        """Nodes without successors, in insertion order."""
        return [node for node in self._succ if not self._succ[node]]

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def copy(self) -> "DiGraph":
        """An independent deep copy of the graph."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for source, destination in self.arcs():
            clone.add_arc(source, destination)
        return clone

    def reverse(self) -> "DiGraph":
        """A new graph with every arc flipped."""
        flipped = DiGraph()
        for node in self._succ:
            flipped.add_node(node)
        for source, destination in self.arcs():
            flipped.add_arc(destination, source)
        return flipped

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._succ)
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = DiGraph(nodes=keep)
        for source in keep:
            for destination in self._succ[source]:
                if destination in keep:
                    sub.add_arc(source, destination)
        return sub

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return self._succ == other._succ

    def __repr__(self) -> str:
        return f"DiGraph(num_nodes={self.num_nodes}, num_arcs={self.num_arcs})"

    def to_dot(self, name: str = "G") -> str:
        """Render the graph in Graphviz dot syntax (handy for debugging)."""
        lines = [f"digraph {name} {{"]
        for node in self._succ:
            lines.append(f'  "{node}";')
        for source, destination in self.arcs():
            lines.append(f'  "{source}" -> "{destination}";')
        lines.append("}")
        return "\n".join(lines)
