"""Reading and writing graphs as edge lists and JSON documents.

The base relation of the paper is a two-column table ``(source,
destination)``; the natural on-disk form is a whitespace-separated edge
list, one tuple per line, with ``#`` comments.  JSON round-tripping is also
provided for graphs whose node labels are not plain strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import GraphError
from repro.graph.digraph import DiGraph

PathLike = Union[str, Path]


def loads_edge_list(text: str) -> DiGraph:
    """Parse an edge-list document into a :class:`DiGraph`.

    Each non-blank, non-comment line holds ``source destination`` separated
    by whitespace; a line with a single token declares an isolated node.
    Node labels are kept as strings.
    """
    graph = DiGraph()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            graph.add_node(parts[0])
        elif len(parts) == 2:
            graph.add_arc(parts[0], parts[1])
        else:
            raise GraphError(
                f"line {line_number}: expected 'source destination', got {raw!r}"
            )
    return graph


def dumps_edge_list(graph: DiGraph) -> str:
    """Render a graph as an edge-list document (inverse of :func:`loads_edge_list`)."""
    lines = []
    for node in graph.nodes():
        if graph.out_degree(node) == 0 and graph.in_degree(node) == 0:
            lines.append(str(node))
    for source, destination in graph.arcs():
        lines.append(f"{source} {destination}")
    return "\n".join(lines) + ("\n" if lines else "")


def load_edge_list(path: PathLike) -> DiGraph:
    """Read an edge-list file from ``path``."""
    return loads_edge_list(Path(path).read_text())


def save_edge_list(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as an edge list."""
    Path(path).write_text(dumps_edge_list(graph))


def graph_to_dict(graph: DiGraph) -> dict:
    """A JSON-safe dict representation (labels pass through ``json`` rules)."""
    return {
        "nodes": list(graph.nodes()),
        "arcs": [list(arc) for arc in graph.arcs()],
    }


def graph_from_dict(document: dict) -> DiGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    JSON turns tuples into lists; labels are used exactly as found in the
    document, so round-tripping through JSON requires string/number labels.
    """
    graph = DiGraph(nodes=document.get("nodes", ()))
    for source, destination in document.get("arcs", ()):
        graph.add_arc(source, destination)
    return graph


def save_json(graph: DiGraph, path: PathLike) -> None:
    """Write ``graph`` to ``path`` as a JSON document."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_json(path: PathLike) -> DiGraph:
    """Read a JSON graph document from ``path``."""
    return graph_from_dict(json.loads(Path(path).read_text()))
