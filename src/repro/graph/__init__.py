"""Directed-graph substrate: container, traversals, SCCs, generators, IO."""

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation, strongly_connected_components
from repro.graph.traversal import (
    ancestors_of,
    can_reach,
    is_acyclic,
    reachable_from,
    reverse_topological_order,
    topological_order,
)

__all__ = [
    "DiGraph",
    "ancestors_of",
    "can_reach",
    "condensation",
    "is_acyclic",
    "reachable_from",
    "reverse_topological_order",
    "strongly_connected_components",
    "topological_order",
]
