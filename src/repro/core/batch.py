"""Batched maintenance: many updates, one interval recomputation.

Every single deletion pays one reverse-topological recomputation of the
non-tree intervals (Section 4.2).  When updates arrive in bulk — a nightly
diff against the base relation, a large refactoring of a hierarchy — that
per-operation pass is wasted work: the structural edits (graph arcs, tree
cover, numbering) can all be applied first and the intervals refreshed
*once*.

:func:`apply_operations` implements that schedule.  Operations are small
tuples (a stable wire format the CLI's diff files map onto):

====================  =====================================================
``("add-node", n, parents)``  insert a new node under ``parents``
``("add-arc", s, d)``         insert an arc (nodes must exist)
``("remove-arc", s, d)``      delete an arc
``("remove-node", n)``        delete a node and its arcs
====================  =====================================================

Deletions are applied structurally and flagged dirty; any operation that
must *read* intervals (an arc insertion's cycle check and propagation)
flushes the pending recomputation first, so correctness never depends on
batching.  The final flush leaves the index fully consistent.

:func:`parse_diff` reads the textual diff format::

    + new_node parent          # arc; creates new_node under parent if new
    - old_node parent          # arc removal
    + lonely                   # isolated new node
    - lonely                   # node removal
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.core import updates as _updates
from repro.core.index import IntervalTCIndex
from repro.errors import GraphError, IndexStateError
from repro.graph.digraph import Node

Operation = Tuple


def apply_operations(index: IntervalTCIndex,
                     operations: Iterable[Operation]) -> int:
    """Apply a stream of update operations with deferred maintenance.

    Returns the number of interval recomputation passes that ran —
    ``len(deletions)`` separate calls would have paid, batching usually
    pays 1 (or a few, when deletions interleave with arc insertions).
    """
    dirty = False
    flushes = 0

    def flush() -> None:
        nonlocal dirty, flushes
        if dirty:
            _updates.recompute_non_tree_intervals(index)
            dirty = False
            flushes += 1

    for operation in operations:
        kind = operation[0]
        if kind == "add-node":
            _, node, parents = operation
            # Tree insertion never reads non-tree intervals; but claiming a
            # slot under a parent *detached by a pending deletion* is fine
            # too (tree intervals are maintained eagerly).  Extra non-tree
            # parents propagate intervals, which requires a clean state.
            if len(parents) > 1:
                flush()
            index.add_node(node, parents)
        elif kind == "add-arc":
            _, source, destination = operation
            flush()  # cycle check + propagation read intervals
            index.add_arc(source, destination)
        elif kind == "remove-arc":
            _, source, destination = operation
            if index.cover.is_tree_arc(source, destination):
                _updates.delete_tree_arc(index, source, destination,
                                         recompute=False)
            else:
                _updates.delete_non_tree_arc(index, source, destination,
                                             recompute=False)
            dirty = True
        elif kind == "remove-node":
            _, node = operation
            _updates.remove_node(index, node, recompute=False)
            dirty = True
        else:
            raise IndexStateError(f"unknown batch operation {kind!r}")
    flush()
    return flushes


def parse_diff(text: str) -> List[Operation]:
    """Parse the textual diff format into operations.

    ``+ a b`` inserts the arc ``(a, b)``; ``- a b`` removes it; single-
    token lines add or remove a node.  ``#`` starts a comment.  Arc
    insertions whose source or destination is unknown are resolved by
    :func:`apply_diff`, which sees the index.
    """
    operations: List[Operation] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            sign, rest = line[0], line[1:].split()
        except IndexError:  # pragma: no cover - line is non-empty here
            raise GraphError(f"line {line_number}: malformed diff line {raw!r}")
        if sign not in "+-" or not 1 <= len(rest) <= 2:
            raise GraphError(
                f"line {line_number}: expected '+/- node [node]', got {raw!r}")
        if sign == "+" and len(rest) == 2:
            operations.append(("+arc", rest[0], rest[1]))
        elif sign == "+":
            operations.append(("add-node", rest[0], []))
        elif len(rest) == 2:
            operations.append(("remove-arc", rest[0], rest[1]))
        else:
            operations.append(("remove-node", rest[0]))
    return operations


def apply_diff(index: IntervalTCIndex, text: str) -> int:
    """Apply a textual diff, resolving arc insertions against the index.

    A ``+ a b`` line becomes a node insertion when one end-point is new
    (the cheap tree-arc path) and a plain arc insertion when both exist.
    Returns the number of interval recomputation passes (see
    :func:`apply_operations`).
    """
    resolved: List[Operation] = []
    known = set(index.nodes())
    for operation in parse_diff(text):
        if operation[0] != "+arc":
            resolved.append(operation)
            if operation[0] == "add-node":
                known.add(operation[1])
            elif operation[0] == "remove-node":
                known.discard(operation[1])
            continue
        _, source, destination = operation
        if source in known and destination in known:
            resolved.append(("add-arc", source, destination))
        elif source in known:
            resolved.append(("add-node", destination, [source]))
            known.add(destination)
        elif destination in known:
            resolved.append(("add-node", source, []))
            resolved.append(("add-arc", source, destination))
            known.add(source)
        else:
            resolved.append(("add-node", source, []))
            resolved.append(("add-node", destination, [source]))
            known.update((source, destination))
    return apply_operations(index, resolved)


def operations_from_pairs(add: Sequence[Tuple[Node, Node]] = (),
                          remove: Sequence[Tuple[Node, Node]] = ()) -> List[Operation]:
    """Convenience: build an operation list from arc pair collections."""
    operations: List[Operation] = [("remove-arc", s, d) for s, d in remove]
    operations.extend(("add-arc", s, d) for s, d in add)
    return operations
