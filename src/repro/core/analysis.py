"""Closed-form storage bounds from the paper's analysis sections.

The paper supports the empirical study with analytical facts:

* a **tree** stores its closure in exactly ``n`` intervals = ``2n`` units
  (Section 3.1 — "O(n) storage, only a constant factor (twice) the
  storage for the tree itself");
* the **bipartite worst case** K(m, k) costs ``m·k + m`` intervals
  (every source keeps one interval per sink subtree it cannot cover
  through its single tree arc, plus its own tree interval; sinks and the
  covered sink cost fold into the count), peaking at ``(n+1)²/4`` for
  ``n = 2m+1`` (Figure 3.6);
* the **intermediary fix** brings the same reachability down to
  ``(m+2) + 2(n-m-1)`` ≈ ``2n - m`` intervals (Figure 3.7);
* a **chain** (total order) costs ``n`` intervals, and so does any graph
  whose optimal tree cover covers all reachability (no surviving
  non-tree intervals).

These functions return the predicted counts; the tests build the
corresponding graphs and assert the measured index matches — the
"analytical evidence" half of the paper's abstract, executable.
"""

from __future__ import annotations

from repro.core.index import IntervalTCIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph


def tree_interval_count(num_nodes: int) -> int:
    """Exact interval count for any tree on ``num_nodes`` nodes."""
    return num_nodes


def tree_storage_units(num_nodes: int) -> int:
    """Exact storage for a tree: twice the tree itself (Section 3.1)."""
    return 2 * num_nodes


def chain_interval_count(num_nodes: int) -> int:
    """A directed path costs one interval per node."""
    return num_nodes


def bipartite_interval_count(num_sources: int, num_sinks: int) -> int:
    """Exact interval count of the Figure 3.6 complete bipartite DAG.

    Under any tree cover one source (the tree parent of every sink)
    covers all sinks with its tree interval; each of the other
    ``num_sources - 1`` sources holds its own tree interval plus one
    non-tree interval per sink (sink tree intervals are siblings, so
    nothing subsumes).  Total: ``num_sinks`` (sinks) + ``1`` (covering
    source) + ``(num_sources - 1)(num_sinks + 1)``.
    """
    if num_sources < 1 or num_sinks < 1:
        raise ReproError("bipartite worst case needs at least one node per side")
    return num_sinks + 1 + (num_sources - 1) * (num_sinks + 1)


def bipartite_worst_case_peak(num_nodes: int) -> int:
    """The paper's ``(n+1)^2 / 4`` peak over balanced splits of ``n`` odd.

    For ``n = 2m + 1`` (``m`` sources, ``m + 1`` sinks) the count is
    ``(m+1)(m+2) + m^2 + ...``; the paper rounds it to ``(n+1)^2/4`` —
    this helper returns the paper's figure.
    """
    return (num_nodes + 1) ** 2 // 4


def intermediary_interval_count(num_sources: int, num_sinks: int) -> int:
    """Exact interval count after the Figure 3.7 hub fix.

    The hub covers every sink with one tree interval; every source then
    holds its own tree interval plus (for all but the hub's tree parent)
    one inherited hub interval.  Sinks: ``num_sinks``; hub: 1; covering
    source: 1; other sources: 2 each.
    """
    if num_sources < 1 or num_sinks < 1:
        raise ReproError("bipartite worst case needs at least one node per side")
    return num_sinks + 1 + 1 + 2 * (num_sources - 1)


def paper_intermediary_formula(num_nodes: int, num_sources: int) -> int:
    """The paper's own ``(m+2) + 2(n-m-1) = 2n - m`` accounting."""
    return 2 * num_nodes - num_sources


def measured_interval_count(graph: DiGraph) -> int:
    """Measure a graph's optimal-cover interval count (gap 1, no merging)."""
    return IntervalTCIndex.build(graph, gap=1).num_intervals


def maximum_closure_pairs(num_nodes: int) -> int:
    """``n(n-1)/2`` — the most pairs an acyclic relation can close over.

    "In the case of a directed acyclic graph the maximum number of arcs in
    the graph is exactly half the total possible" (Section 3.3).
    """
    return num_nodes * (num_nodes - 1) // 2


def inverse_closure_size(num_nodes: int, closure_pairs: int) -> int:
    """Complement accounting for Figure 3.10: admissible minus reachable."""
    missing = maximum_closure_pairs(num_nodes) - closure_pairs
    if missing < 0:
        raise ReproError("closure_pairs exceeds the acyclic maximum")
    return missing
