"""Incremental maintenance of the compressed closure (Section 4).

The paper's update algorithms avoid recomputing the whole closure:

* **Adding a tree arc** (a brand-new node under an existing parent) costs
  O(log n): gaps deliberately left in the postorder numbering supply a free
  number inside the parent's tree interval, so *no existing label changes*.
* **Adding a non-tree arc** ``(i, j)`` propagates ``j``'s intervals to
  ``i`` and up ``i``'s immediate-predecessor lists, stopping at any node
  where every propagated interval is already subsumed — the paper's
  cut-off, which makes "hierarchy refinement" insertions effectively
  constant-time.
* **Running out of numbers** triggers renumbering.  We renumber the whole
  tree cover in one O(n + closure) pass (the paper also sketches a local
  shift; the global pass has the same worst case and is simpler to keep
  correct).
* **Deleting a tree arc** re-hangs the orphaned subtree under the virtual
  root with fresh numbers beyond the current maximum, then recomputes the
  non-tree intervals in one reverse-topological pass.  The paper instead
  patches old numbers to new in place; both are O(n + closure) in the
  worst case, and the recompute is immune to representation drift.
* **Deleting a non-tree arc** keeps the spanning tree and numbering and
  recomputes non-tree intervals in one reverse-topological pass — exactly
  the paper's procedure.

Free-number bookkeeping relies on the laminar-family property of tree
intervals: the numbers available under a parent are its tree interval
minus its own number and minus the children's tree intervals; no other
live interval can intersect that residue (see
:func:`repro.core.labeling.check_laminar`).

All functions here take the :class:`~repro.core.index.IntervalTCIndex` as
their first argument; the index exposes them as methods.
"""

from __future__ import annotations

from bisect import insort
from collections import deque
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.intervals import Interval, IntervalSet
from repro.core.tree_cover import VIRTUAL_ROOT
from repro.errors import (
    ArcNotFoundError,
    CycleError,
    GraphError,
    IndexStateError,
    NodeNotFoundError,
    NumberingExhaustedError,
)
from repro.graph.digraph import Node
from repro.graph.traversal import topological_order

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from repro.core.index import IntervalTCIndex


# ----------------------------------------------------------------------
# free-number bookkeeping
# ----------------------------------------------------------------------
def free_ranges_under(index: "IntervalTCIndex", parent: Node) -> List[Tuple[int, int]]:
    """Number ranges available for a new tree child of ``parent``.

    For a real parent: its tree interval, minus its own postorder number,
    minus the tree intervals of its current tree children.  For the
    virtual root the supply is unbounded; a synthetic range above the
    current maximum is returned.
    """
    if parent is VIRTUAL_ROOT:
        top = index.used_numbers[-1] if index.used_numbers else 0
        return [(top + 1, top + index.gap)]
    lo, number = index.tree_interval[parent]
    ranges: List[Tuple[int, int]] = []
    cursor = lo
    children = sorted(index.cover.tree_children(parent),
                      key=lambda child: index.tree_interval[child].lo)
    for child in children:
        child_lo, child_hi = index.tree_interval[child]
        if cursor <= child_lo - 1:
            ranges.append((cursor, child_lo - 1))
        cursor = max(cursor, child_hi + 1)
    if cursor <= number - 1:
        ranges.append((cursor, number - 1))
    return ranges


def claim_slot(index: "IntervalTCIndex", parent: Node) -> Tuple[int, Interval]:
    """Pick a postorder number and tree interval for a new child of ``parent``.

    Implements Section 4.1's "find the two postorder numbers ... that have
    the largest difference": the widest free range is selected, the new
    number is its midpoint, and the range below the number is reserved as
    the new node's tree interval (room for its own future descendants).

    Raises :class:`NumberingExhaustedError` when ``parent`` has no free
    numbers left (integer numbering only — fractional numbering always
    finds a slot, see :func:`claim_slot_fractional`).
    """
    if index.numbering == "fractional":
        return claim_slot_fractional(index, parent)
    ranges = free_ranges_under(index, parent)
    if not ranges:
        raise NumberingExhaustedError(
            f"no free postorder numbers under {parent!r}; renumber and retry"
        )
    lo, hi = max(ranges, key=lambda bounds: bounds[1] - bounds[0])
    number = (lo + hi + 1) // 2
    return number, Interval(lo, number)


def claim_slot_fractional(index: "IntervalTCIndex", parent: Node) -> Tuple[object, Interval]:
    """Continuous-numbering slot choice — the paper's footnote alternative.

    "Instead, one could use real numbers" (Section 4, footnote): with
    rational postorder numbers there is always an open gap under any
    parent, so insertion never triggers renumbering.  The widest open gap
    ``(a, b)`` between the parent's children (or the gap trailing up to
    the parent's own number) is selected; the new node is numbered at its
    midpoint and reserves the lower half of the remaining space as its
    tree interval.
    """
    from fractions import Fraction

    if parent is VIRTUAL_ROOT:
        top = index.used_numbers[-1] if index.used_numbers else 0
        lo = Fraction(top) + Fraction(1, 2)
        number = Fraction(top + index.gap)
        return number, Interval(lo, number)
    parent_lo, parent_number = index.tree_interval[parent]
    children = sorted(index.cover.tree_children(parent),
                      key=lambda child: index.tree_interval[child].lo)
    gaps = []
    cursor = Fraction(parent_lo)
    for child in children:
        child_lo, child_hi = index.tree_interval[child]
        if child_lo > cursor:
            gaps.append((cursor, Fraction(child_lo)))
        cursor = max(cursor, Fraction(child_hi))
    gaps.append((cursor, Fraction(parent_number)))
    a, b = max(gaps, key=lambda gap: gap[1] - gap[0])
    if b <= a:
        raise NumberingExhaustedError(       # pragma: no cover - unreachable
            f"no continuous gap under {parent!r}")
    number = (a + b) / 2
    lo = (a + number) / 2
    return number, Interval(lo, number)


# ----------------------------------------------------------------------
# additions (Section 4.1)
# ----------------------------------------------------------------------
def add_node(index: "IntervalTCIndex", node: Node, parents: Sequence[Node] = ()) -> None:
    """Insert ``node`` with an arc from each parent (first parent = tree arc)."""
    if node in index.postorder:
        raise IndexStateError(f"node {node!r} is already indexed")
    parents = list(parents)
    if len(set(parents)) != len(parents):
        raise GraphError(f"duplicate parents in {parents!r}")
    for parent in parents:
        if parent not in index.postorder:
            raise NodeNotFoundError(parent)

    tree_parent: Node = parents[0] if parents else VIRTUAL_ROOT
    try:
        number, interval = claim_slot(index, tree_parent)
    except NumberingExhaustedError:
        if not index.auto_renumber:
            raise
        if index.renumber_strategy == "local":
            # Paper Section 4.1: shift numbers up to the first hole, which
            # frees exactly one slot under this parent.
            make_room(index, tree_parent)
        else:
            # Global renumbering at stride 1 reopens no gaps, so widen to
            # at least 2; the new stride sticks, keeping later
            # insertions cheap.
            renumber(index, gap=max(index.gap, 2))
        number, interval = claim_slot(index, tree_parent)

    index._invalidate()
    index.graph.add_node(node)
    if tree_parent is not VIRTUAL_ROOT:
        index.graph.add_arc(tree_parent, node)
    index.cover.parent[node] = tree_parent
    index.cover.children.setdefault(node, [])
    index.cover.children.setdefault(tree_parent, []).append(node)

    index.postorder[node] = number
    index.tree_interval[node] = interval
    index.intervals[node] = IntervalSet([interval])
    index.node_of_number[number] = node
    insort(index.used_numbers, number)

    # The new number lies inside the tree intervals of every tree ancestor
    # (and of every interval that subsumed them), so no other label changes:
    # this is the paper's O(1) tree-arc addition.  Remaining parents are
    # ordinary non-tree arcs.
    for parent in parents[1:]:
        add_non_tree_arc(index, parent, node)


def add_non_tree_arc(index: "IntervalTCIndex", source: Node, destination: Node) -> None:
    """Insert an arc between two existing nodes and propagate intervals.

    ``destination``'s intervals are added to ``source`` and then pushed up
    the immediate-predecessor lists; propagation stops at nodes where
    nothing new survives subsumption (Section 4.1's optimisation, which is
    also what makes "hierarchy refinement" additions constant-time: the
    predecessors of a refined node already subsume everything below it).

    Raises :class:`CycleError` if the arc would close a directed cycle.
    """
    if source not in index.postorder:
        raise NodeNotFoundError(source)
    if destination not in index.postorder:
        raise NodeNotFoundError(destination)
    if source == destination:
        raise GraphError(f"self-loop ({source!r}, {source!r}) is not allowed")
    if index.graph.has_arc(source, destination):
        return
    if index.reachable(destination, source):
        raise CycleError(
            f"arc ({source!r}, {destination!r}) would create a cycle: "
            f"{destination!r} already reaches {source!r}"
        )
    index._invalidate()
    index.graph.add_arc(source, destination)

    cutoffs = 0
    queue = deque([(source, list(index.intervals[destination]))])
    while queue:
        node, incoming = queue.popleft()
        surviving = [interval for interval in incoming
                     if index.intervals[node].add(interval)]
        if surviving:
            for predecessor in index.graph.predecessors(node):
                queue.append((predecessor, surviving))
        else:
            cutoffs += 1
    tracer = getattr(index, "_tracer", None)
    if tracer is not None:
        tracer.annotate("cutoffs", cutoffs)
    obs = getattr(index, "_obs", None)
    if obs is not None and cutoffs:
        obs.counter("tc_subsumption_cutoffs_total",
                    help="propagations stopped by subsumption "
                         "(Section 4.1)").inc(cutoffs)


# ----------------------------------------------------------------------
# deletions (Section 4.2)
# ----------------------------------------------------------------------
def delete_non_tree_arc(index: "IntervalTCIndex", source: Node, destination: Node,
                        *, recompute: bool = True) -> None:
    """Remove a non-tree arc: spanning tree and numbering are untouched.

    Exactly the paper's procedure: one reverse-topological pass recomputes
    every node's non-tree intervals from the (unchanged) tree intervals.
    ``recompute=False`` defers that pass — the caller (batch updates) must
    run :func:`recompute_non_tree_intervals` before serving queries.
    """
    if index.cover.is_tree_arc(source, destination):
        raise IndexStateError(
            f"({source!r}, {destination!r}) is a tree arc; use delete_tree_arc"
        )
    index._invalidate()
    index.graph.remove_arc(source, destination)
    if recompute:
        recompute_non_tree_intervals(index)


def delete_tree_arc(index: "IntervalTCIndex", source: Node, destination: Node,
                    *, recompute: bool = True) -> None:
    """Remove a tree arc: re-hang the orphan subtree, renumber it, recompute.

    The subtree rooted at ``destination`` becomes a child of the virtual
    root; its nodes get fresh postorder numbers *above* the current maximum
    (the paper's rule), so labels outside the subtree never collide with
    the new ones, and the vacated number range becomes reusable free space
    under the old ancestors.  ``recompute=False`` defers the interval
    recomputation as in :func:`delete_non_tree_arc`.
    """
    if not index.cover.is_tree_arc(source, destination):
        raise ArcNotFoundError(source, destination)
    index._invalidate()
    index.graph.remove_arc(source, destination)
    detach_subtree(index, destination)
    if recompute:
        recompute_non_tree_intervals(index)


def detach_subtree(index: "IntervalTCIndex", root: Node) -> None:
    """Re-hang the tree subtree rooted at ``root`` under the virtual root.

    Renumbers the subtree with numbers greater than the current maximum
    (preserving its internal postorder shape) and refreshes its tree
    intervals.  Does *not* recompute non-tree intervals — callers do that
    once after all structural edits.
    """
    old_parent = index.cover.parent[root]
    if old_parent is VIRTUAL_ROOT:
        return
    index.cover.children[old_parent].remove(root)
    index.cover.parent[root] = VIRTUAL_ROOT
    index.cover.children[VIRTUAL_ROOT].append(root)

    base = index.used_numbers[-1] if index.used_numbers else 0
    gap = index.gap
    counter = 0
    # Iterative postorder over the subtree, assigning base-offset numbers
    # with the same reservation scheme as the initial labeling.
    stack: List[tuple] = [(root, iter(index.cover.tree_children(root)), counter)]
    renumbered: List[Tuple[Node, int, Interval]] = []
    while stack:
        node, kids, counter_at_entry = stack[-1]
        advanced = False
        for child in kids:
            stack.append((child, iter(index.cover.tree_children(child)), counter))
            advanced = True
            break
        if advanced:
            continue
        stack.pop()
        counter += 1
        number = base + counter * gap
        lo = base + counter_at_entry * gap + 1
        renumbered.append((node, number, Interval(lo, number)))

    for node, number, interval in renumbered:
        old_number = index.postorder[node]
        del index.node_of_number[old_number]
        index.postorder[node] = number
        index.tree_interval[node] = interval
        index.node_of_number[number] = node
    index.used_numbers = sorted(index.node_of_number)


def remove_node(index: "IntervalTCIndex", node: Node, *,
                recompute: bool = True) -> None:
    """Delete ``node`` and every incident arc.

    Each tree child's subtree is detached (one renumbering each), the
    node's arcs and labels are retired, and a single reverse-topological
    pass refreshes the non-tree intervals (deferrable via
    ``recompute=False`` for batch streams).
    """
    if node not in index.postorder:
        raise NodeNotFoundError(node)
    index._invalidate()
    for child in list(index.cover.tree_children(node)):
        index.graph.remove_arc(node, child)
        detach_subtree(index, child)

    for successor in list(index.graph.successors(node)):
        index.graph.remove_arc(node, successor)
    for predecessor in list(index.graph.predecessors(node)):
        index.graph.remove_arc(predecessor, node)
    index.graph.remove_node(node)

    tree_parent = index.cover.parent.pop(node)
    index.cover.children[tree_parent].remove(node)
    del index.cover.children[node]

    number = index.postorder.pop(node)
    del index.node_of_number[number]
    index.used_numbers.remove(number)
    del index.tree_interval[node]
    del index.intervals[node]

    if recompute:
        recompute_non_tree_intervals(index)


# ----------------------------------------------------------------------
# local renumbering (Section 4.1, "What if empty numbers run out")
# ----------------------------------------------------------------------
def make_room(index: "IntervalTCIndex", parent: Node) -> None:
    """Open one free postorder number under ``parent`` by a local shift.

    The paper's procedure: starting from the parent's postorder number,
    "find the first hole, suitably renumber all the intermediate numbers
    ... make a scan over all the nodes of the graph [and] replace oldnum
    by newnum" in the intervals.  Concretely: let ``h`` be the first
    unused integer above the parent's number ``p``.  Every used number in
    ``[p, h-1]`` shifts up by one, every interval end-point in that range
    shifts with it (the shift is monotone, so interval structure is
    preserved), and ``p`` itself becomes free — inside the parent's
    (now stretched) tree interval, outside all children's intervals.

    Cost: O(shifted nodes + total intervals) — cheaper than a global
    :func:`renumber` when the hole is nearby, and it never changes the
    numbering stride.  The paper also allows searching *left* of the
    parent; shifting right is always available because numbers are
    unbounded above, so this implementation only goes right.
    """
    if parent is VIRTUAL_ROOT:
        return  # the virtual root always has room above the maximum
    obs = getattr(index, "_obs", None)
    if obs is not None:
        obs.counter("tc_make_room_total",
                    help="local shifts to open one free number "
                         "(Section 4.1)").inc()
    index._invalidate()
    parent_number = index.postorder[parent]
    numbers = index.used_numbers
    position = numbers.index(parent_number)
    # First hole at or above parent_number + 1.
    hole = parent_number + 1
    for used in numbers[position + 1:]:
        if used > hole:
            break
        hole = used + 1
    shift_lo, shift_hi = parent_number, hole - 1

    def shifted(value: int) -> int:
        return value + 1 if shift_lo <= value <= shift_hi else value

    def shifted_lo(value: int) -> int:
        # A lower end-point equal to the parent's old number belongs to an
        # interval that covered the parent — its holder reaches the parent
        # and therefore must also cover the freed slot (the future child),
        # so it stays put.  Every other in-range lower bound tracks its
        # (shifted) content.
        return value + 1 if shift_lo < value <= shift_hi else value

    # Re-point every per-node table through the shift.
    new_postorder = {node: shifted(number)
                     for node, number in index.postorder.items()}
    index.postorder = new_postorder
    index.node_of_number = {number: node for node, number in new_postorder.items()}
    index.used_numbers = sorted(index.node_of_number)
    index.tree_interval = {
        node: Interval(shifted_lo(interval.lo), shifted(interval.hi))
        for node, interval in index.tree_interval.items()
    }
    for node, interval_set in list(index.intervals.items()):
        index.intervals[node] = IntervalSet(
            Interval(shifted_lo(lo), shifted(hi)) for lo, hi in interval_set)


# ----------------------------------------------------------------------
# recomputation helpers
# ----------------------------------------------------------------------
def recompute_non_tree_intervals(index: "IntervalTCIndex") -> None:
    """Rebuild every node's interval set from the current tree intervals.

    One reverse-topological pass over the current graph (the paper's
    non-tree deletion procedure).  Re-applies interval merging when the
    index was built with ``merge=True``.
    """
    index._invalidate()
    order = topological_order(index.graph)
    intervals: Dict[Node, IntervalSet] = index.intervals
    for node in reversed(order):
        fresh = IntervalSet([index.tree_interval[node]])
        for successor in index.graph.successors(node):
            fresh.add_all(intervals[successor])
        if index.merged:
            fresh = fresh.merged()
        intervals[node] = fresh


def renumber(index: "IntervalTCIndex", gap: Optional[int] = None) -> None:
    """Assign fresh postorder numbers over the current tree cover.

    Restores full insertion headroom (every node regains its reserved
    gap).  Tree-cover shape is preserved, so this is O(n) numbering plus
    one closure propagation — much cheaper than a rebuild, though only a
    rebuild restores Alg1 optimality after many updates.
    """
    if gap is not None:
        if gap < 1:
            raise GraphError(f"gap must be >= 1, got {gap}")
        index.gap = gap
    index._invalidate()
    index._renumber_count = getattr(index, "_renumber_count", 0) + 1
    stride = index.gap

    counter = 0
    stack: List[tuple] = [
        (VIRTUAL_ROOT, iter(index.cover.tree_children(VIRTUAL_ROOT)), counter)
    ]
    postorder: Dict[Node, int] = {}
    tree_interval: Dict[Node, Interval] = {}
    while stack:
        node, kids, counter_at_entry = stack[-1]
        advanced = False
        for child in kids:
            stack.append((child, iter(index.cover.tree_children(child)), counter))
            advanced = True
            break
        if advanced:
            continue
        stack.pop()
        if node is VIRTUAL_ROOT:
            continue
        counter += 1
        postorder[node] = counter * stride
        tree_interval[node] = Interval(counter_at_entry * stride + 1, counter * stride)

    index.postorder = postorder
    index.tree_interval = tree_interval
    index.node_of_number = {number: node for node, number in postorder.items()}
    index.used_numbers = sorted(index.node_of_number)
    recompute_non_tree_intervals(index)
