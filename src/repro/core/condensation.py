"""Interval index over cyclic graphs via SCC condensation.

Section 3 of the paper: "the techniques presented in this paper can also be
extended to cyclic graphs by collapsing strongly connected components into
one node".  :class:`CondensedIndex` performs that collapse transparently:
it condenses the input, builds an :class:`~repro.core.index.IntervalTCIndex`
on the acyclic condensation, and translates queries through the
node-to-component map.  Members of one strongly connected component all
reach each other by construction.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.scc import Component, condensation


class CondensedIndex:
    """Reachability index for graphs that may contain cycles.

    >>> g = DiGraph([("a", "b"), ("b", "a"), ("b", "c")])
    >>> index = CondensedIndex.build(g)
    >>> index.reachable("a", "c") and index.reachable("b", "a")
    True

    Updates: arc insertions that keep the condensation acyclic are applied
    incrementally (one Section 4 non-tree arc addition on the component
    DAG); an insertion that closes a component cycle merges components,
    which invalidates the collapse — the wrapper then rebuilds itself
    (:meth:`add_arc` reports which path was taken).  Deletions always
    rebuild: removing one arc may split a component.
    """

    def __init__(self, graph: DiGraph, dag_index: IntervalTCIndex,
                 member_of: Dict[Node, Component]) -> None:
        self.graph = graph
        self.dag_index = dag_index
        self.member_of = member_of

    @classmethod
    def build(cls, graph: DiGraph, *, policy: str = "alg1",
              gap: int = DEFAULT_GAP, merge: bool = False) -> "CondensedIndex":
        """Condense ``graph`` and index the resulting DAG."""
        dag, member_of = condensation(graph)
        dag_index = IntervalTCIndex.build(dag, policy=policy, gap=gap, merge=merge)
        return cls(graph, dag_index, member_of)

    def component_of(self, node: Node) -> Component:
        """The strongly connected component containing ``node``."""
        try:
            return self.member_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def reachable(self, source: Node, destination: Node) -> bool:
        """Whether a directed path ``source ->* destination`` exists (reflexive)."""
        return self.dag_index.reachable(self.component_of(source),
                                        self.component_of(destination))

    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes reachable from ``source`` in the original graph."""
        result: Set[Node] = set()
        for component in self.dag_index.successors(self.component_of(source)):
            result.update(component)
        if not reflexive and len(self.component_of(source)) == 1:
            # A node in a non-trivial SCC reaches itself through the cycle
            # even under irreflexive semantics, so only singletons drop out.
            result.discard(source)
        return result

    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes that can reach ``destination`` in the original graph."""
        result: Set[Node] = set()
        for component in self.dag_index.predecessors(self.component_of(destination)):
            result.update(component)
        if not reflexive and len(self.component_of(destination)) == 1:
            result.discard(destination)
        return result

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert an isolated node (its own singleton component)."""
        if node in self.member_of:
            from repro.errors import IndexStateError
            raise IndexStateError(f"node {node!r} is already indexed")
        self.graph.add_node(node)
        component = frozenset([node])
        self.member_of[node] = component
        self.dag_index.add_node(component)

    def add_arc(self, source: Node, destination: Node) -> bool:
        """Insert an arc; returns ``True`` when it was applied incrementally.

        If the arc stays *between* components (no cycle closes), the
        component DAG absorbs it through the ordinary Section 4 non-tree
        arc addition.  If it lands inside a component it changes nothing.
        If it closes a cycle across components, the affected components
        must merge: the wrapper rebuilds and returns ``False``.
        """
        for node in (source, destination):
            if node not in self.member_of:
                self.add_node(node)
        self.graph.add_arc(source, destination)
        source_component = self.member_of[source]
        destination_component = self.member_of[destination]
        if source_component is destination_component:
            return True  # internal arc: the collapse already covers it
        if self.dag_index.reachable(destination_component, source_component):
            self._rebuild()
            return False
        if not self.dag_index.graph.has_arc(source_component,
                                            destination_component):
            self.dag_index.add_arc(source_component, destination_component)
        return True

    def remove_arc(self, source: Node, destination: Node) -> None:
        """Delete an arc.  Always rebuilds (a component may split)."""
        self.graph.remove_arc(source, destination)
        self._rebuild()

    def remove_node(self, node: Node) -> None:
        """Delete a node and its arcs.  Always rebuilds."""
        self.graph.remove_node(node)
        self._rebuild()

    def _rebuild(self) -> None:
        dag, member_of = condensation(self.graph)
        self.dag_index = IntervalTCIndex.build(
            dag, policy=self.dag_index.policy, gap=self.dag_index.gap,
            merge=self.dag_index.merged)
        self.member_of = member_of

    def verify(self) -> None:
        """Cross-check against pointer chasing on the original graph."""
        from repro.graph.traversal import reachable_from
        for node in self.graph:
            assert self.successors(node) == reachable_from(self.graph, node), node

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return len(self.dag_index)

    @property
    def storage_units(self) -> int:
        """Storage of the underlying condensation index (paper units)."""
        return self.dag_index.storage_units
