"""Cheap graph statistics and the ``engine="auto"`` decision rule.

:func:`repro.open_index` with ``engine="auto"`` must pick a
representation *before* building anything, so the statistics here are
all O(n + m): node/arc counts, average out-degree, longest-path depth,
and a greedy chain-count estimate of the width (an upper bound on the
Dilworth width — the exact width needs a matching over the closure,
which would defeat the point).  Nothing touches the transitive closure.

The decision rule is calibrated against the measured head-to-head cells
in ``BENCH_engines.json`` (``benchmarks/bench_engines.py``; build plus
mixed point/sweep query wall time, 20k-node shapes).  The measurement
is one-sided: the chain-cover engine posts the lowest total on *every*
large shape — its greedy decomposition is the cheapest build pass and a
point query is a single dict probe —

======================  ==========================================  ========
regime                  BENCH_engines.json cell (total seconds)     winner
======================  ==========================================  ========
deep chain              chain 0.069 / interval 0.264 / frozen 0.30  chain
bushy hierarchy         chain 0.157 / interval 0.391 / hop 0.405    chain
bipartite (Fig. 3.6)    chain 0.014 / interval 0.059 / frozen 0.07  chain
sparse mid-depth DAG    chain 0.102 / hoplabel 0.191 / interval     chain
======================  ==========================================  ========

— so the rule has exactly one other branch: graphs under
:data:`THRESHOLDS` ``small_nodes`` keep the updatable interval index,
because at that size every build is sub-millisecond noise and the
interval index is the only from-graph engine that accepts updates.

The engines auto never picks still earn their keep on objectives the
wall-time race does not score: ``frozen`` has vectorised batch reads
and the mmap'd RTCF restart path; ``hoplabel`` holds the smallest label
sets on sparse mid-depth DAGs (87k entries vs chain's 163k in the
``sparse_dag`` cell); ``interval`` is the only updatable index.  Ask
for them explicitly — ``open_index(graph, engine="frozen")``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["GraphStats", "THRESHOLDS", "graph_stats", "recommend_engine"]

#: The one table of ``engine="auto"`` decision constants.
#:
#: ``small_nodes``
#:     Below this, build cost is noise for every engine (the whole
#:     matrix builds in under a millisecond at 256 nodes) and the
#:     updatable interval index is the flexible default.
#: ``deep_depth_ratio``
#:     depth/nodes at or above this marks a chain-shaped graph — the
#:     chain engine's best case (near one chain, one entry per node) —
#:     kept as a named regime although the measured rule already picks
#:     chain everywhere at scale.
THRESHOLDS = {
    "small_nodes": 256,
    "deep_depth_ratio": 0.5,
}


@dataclass(frozen=True)
class GraphStats:
    """An O(n + m) structural summary, sufficient for engine selection.

    ``chain_width_estimate`` is the greedy first-fit chain count — an
    upper bound on the true (Dilworth) width; ``depth`` counts arcs on
    the longest directed path; ``density`` is arcs per node.
    """

    num_nodes: int
    num_arcs: int
    avg_out_degree: float
    density: float
    depth: int
    depth_ratio: float
    chain_width_estimate: int

    def as_dict(self) -> dict:
        """Flat dict for report tables."""
        return dict(self.__dict__)


def graph_stats(graph: DiGraph) -> GraphStats:
    """Compute the cheap selection statistics for ``graph``."""
    from repro.core.chain_cover import greedy_chain_decomposition
    from repro.graph.metrics import longest_path_length

    nodes = graph.num_nodes
    arcs = graph.num_arcs
    depth = longest_path_length(graph) if nodes else 0
    chains = len(greedy_chain_decomposition(graph)) if nodes else 0
    return GraphStats(
        num_nodes=nodes,
        num_arcs=arcs,
        avg_out_degree=graph.average_out_degree() if nodes else 0.0,
        density=arcs / nodes if nodes else 0.0,
        depth=depth,
        depth_ratio=depth / nodes if nodes else 0.0,
        chain_width_estimate=chains,
    )


def recommend_engine(stats: GraphStats) -> str:
    """The :func:`repro.open_index` engine name ``engine="auto"`` picks.

    Calibrated on ``BENCH_engines.json`` (see the module docstring's
    cell table): the chain-cover engine wins the build+query race on
    every measured large shape, so the only other branch is the
    small-graph carve-out, where updatability beats a wall-time gap
    measured in microseconds.  Returns ``"interval"`` or ``"chain"``.
    """
    if stats.num_nodes < THRESHOLDS["small_nodes"]:
        return "interval"
    return "chain"
