"""JSON (de)serialisation of built indexes — mutable and frozen.

A compressed closure is a one-time computation "repeatedly used to
efficiently answer queries" (Section 3.2), so persisting it matters.  The
mutable-index document stores the graph, the tree cover (as a parent
map), the postorder numbers and every interval set; loading reconstructs
an identical :class:`~repro.core.index.IntervalTCIndex` without
re-running Alg1 or the propagation pass.

A :class:`~repro.core.frozen.FrozenTCIndex` persists as its raw flat
buffers (:func:`save_frozen_index` / :func:`load_frozen_index`): loading
rehydrates the arrays directly — no graph, tree cover, or interval-set
reconstruction — and only re-derives the reverse interval index with one
O(m log m) sort.  Frozen documents are self-contained; a view loaded this
way has no source index and can never go stale.

Node labels must be JSON-representable (strings or numbers); the virtual
root is encoded as ``None`` in the parent map.
"""

from __future__ import annotations

import json
import warnings
from fractions import Fraction
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.frozen import FrozenTCIndex
from repro.core.index import IntervalTCIndex
from repro.core.intervals import Interval, IntervalSet
from repro.core.labeling import Labeling
from repro.core.tree_cover import VIRTUAL_ROOT, TreeCover
from repro.durability.atomic import atomic_write_text
from repro.errors import CorruptFileError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.traversal import topological_order

FORMAT_VERSION = 1
FROZEN_FORMAT_VERSION = 1
HYBRID_FORMAT_VERSION = 1
#: Document discriminator for frozen-buffer files.
FROZEN_KIND = "frozen-tc-index"
#: Document discriminator for hybrid (base + delta log) files.
HYBRID_KIND = "hybrid-tc-index"


def _read_document(path: Union[str, Path]) -> dict:
    """Read one JSON document, typing every corruption mode.

    Truncated, garbage, or non-object files raise
    :class:`~repro.errors.CorruptFileError` instead of leaking raw
    ``json.JSONDecodeError``; a missing file still raises
    :class:`FileNotFoundError` (absent and damaged are different
    failures).
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise CorruptFileError(path, f"unreadable: {error}") from error
    except UnicodeDecodeError as error:
        raise CorruptFileError(path, f"not UTF-8 text: {error}") from error
    try:
        document = json.loads(text)
    except ValueError as error:
        raise CorruptFileError(path, f"not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise CorruptFileError(
            path, f"expected a JSON object, got {type(document).__name__}")
    return document


def _rebuild(path, loader, *args, **kwargs):
    """Run a ``*_from_dict`` loader, wrapping structural failures.

    A document that parses as JSON but does not decode into an index
    (missing keys, wrong shapes) is corrupt from the caller's point of
    view; ``ReproError`` subtypes (version/kind mismatches) pass through
    with their sharper message.
    """
    try:
        return loader(*args, **kwargs)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError,
            IndexError) as error:
        raise CorruptFileError(
            path,
            f"document does not decode ({type(error).__name__}: {error})"
        ) from error


def _encode_number(number) -> object:
    """Postorder numbers are ints, or Fractions under fractional numbering."""
    if isinstance(number, Fraction):
        return {"n": number.numerator, "d": number.denominator}
    return number


def _decode_number(stored) -> object:
    if isinstance(stored, dict):
        return Fraction(stored["n"], stored["d"])
    return stored


def index_to_dict(index: IntervalTCIndex) -> dict:
    """A JSON-safe document capturing the full index state."""
    nodes = list(index.nodes())
    return {
        "format_version": FORMAT_VERSION,
        "policy": index.policy,
        "gap": index.gap,
        "merged": index.merged,
        "numbering": index.numbering,
        "graph": graph_to_dict(index.graph),
        "parent": [[node, None if index.cover.parent[node] is VIRTUAL_ROOT
                    else index.cover.parent[node]] for node in nodes],
        "postorder": [[node, _encode_number(index.postorder[node])]
                      for node in nodes],
        "tree_interval": [[node, [_encode_number(bound) for bound
                                  in index.tree_interval[node]]]
                          for node in nodes],
        "intervals": [[node, [[_encode_number(bound) for bound in interval]
                              for interval in index.intervals[node]]]
                      for node in nodes],
    }


def index_from_dict(document: dict) -> IntervalTCIndex:
    """Rebuild an index from :func:`index_to_dict` output.

    JSON converts non-string dict keys, so all per-node tables are stored
    as pair lists; labels round-trip as long as they are strings/numbers.
    """
    if document.get("kind") == FROZEN_KIND:
        raise ReproError(
            "document holds frozen buffers; load it with load_frozen_index")
    if document.get("kind") == HYBRID_KIND:
        raise ReproError(
            "document holds a hybrid engine; load it with load_hybrid_index")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported index document version {version!r}")
    graph: DiGraph = graph_from_dict(document["graph"])

    parent = {node: (VIRTUAL_ROOT if stored is None else stored)
              for node, stored in document["parent"]}
    children: Dict = {VIRTUAL_ROOT: []}
    for node in graph.nodes():
        children.setdefault(node, [])
    postorder = {node: _decode_number(number)
                 for node, number in document["postorder"]}
    for node, chosen in parent.items():
        children.setdefault(chosen, []).append(node)
    for child_list in children.values():
        child_list.sort(key=lambda node: postorder[node])
    order = topological_order(graph)
    cover = TreeCover(parent=parent, children=children, order=order,
                      policy=document["policy"])

    tree_interval = {node: Interval(*(_decode_number(bound) for bound in bounds))
                     for node, bounds in document["tree_interval"]}
    intervals = {
        node: IntervalSet(Interval(*(_decode_number(bound) for bound in interval))
                          for interval in stored)
        for node, stored in document["intervals"]
    }
    labeling = Labeling(postorder=postorder, tree_interval=tree_interval,
                        intervals=intervals, gap=document["gap"])
    return IntervalTCIndex(graph, cover, labeling, policy=document["policy"],
                           merged=document["merged"],
                           numbering=document.get("numbering", "integer"))


def save_index(index: IntervalTCIndex, path: Union[str, Path]) -> None:
    """Write the index to ``path`` as JSON (atomically: temp + rename)."""
    atomic_write_text(path, json.dumps(index_to_dict(index)))


def _load_index(path: Union[str, Path]) -> IntervalTCIndex:
    return _rebuild(path, index_from_dict, _read_document(path))


def load_index(path: Union[str, Path]) -> IntervalTCIndex:
    """Read an index previously written by :func:`save_index`.

    .. deprecated:: use :func:`repro.open_index` — it dispatches on the
       document kind and wires observability.
    """
    _warn_deprecated("load_index")
    return _load_index(path)


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"{name}() is deprecated; use repro.open_index() instead",
        DeprecationWarning, stacklevel=3)


# ----------------------------------------------------------------------
# frozen buffers
# ----------------------------------------------------------------------
def frozen_to_dict(frozen: FrozenTCIndex) -> dict:
    """A JSON-safe document holding the frozen engine's flat buffers."""
    buffers = frozen.to_buffers()
    return {
        "format_version": FROZEN_FORMAT_VERSION,
        "kind": FROZEN_KIND,
        "epoch": buffers.get("epoch", 0),
        "nodes": buffers["nodes"],
        "numbers": [_encode_number(number) for number in buffers["numbers"]],
        "offsets": buffers["offsets"],
        "lows": buffers["lows"],
        "highs": buffers["highs"],
    }


def frozen_from_dict(document: dict, *,
                     backend: Optional[str] = None) -> FrozenTCIndex:
    """Rehydrate a frozen engine from :func:`frozen_to_dict` output.

    The CSR buffers are adopted as-is (no closure or tree-cover rebuild);
    only the derived reverse interval index is re-sorted.  ``backend``
    picks the buffer implementation, defaulting to numpy when installed.
    """
    if document.get("kind") != FROZEN_KIND:
        raise ReproError(
            "document does not hold frozen buffers; use load_index")
    version = document.get("format_version")
    if version != FROZEN_FORMAT_VERSION:
        raise ReproError(f"unsupported frozen document version {version!r}")
    return FrozenTCIndex.from_buffers(
        nodes=document["nodes"],
        numbers=[_decode_number(number) for number in document["numbers"]],
        offsets=document["offsets"],
        lows=document["lows"],
        highs=document["highs"],
        backend=backend,
        epoch=document.get("epoch", 0),
    )


def save_frozen_index(frozen: FrozenTCIndex, path: Union[str, Path], *,
                      format: str = "json") -> None:
    """Write a frozen engine to ``path`` atomically.

    ``format="json"`` writes the textual buffer document (portable,
    human-inspectable, the only choice for fractional numbering);
    ``format="rtcf"`` writes the binary zero-copy container
    (:mod:`repro.core.rtcf`), which :func:`load_any` and
    :func:`repro.open_index` reopen through ``mmap`` in O(1).
    """
    if format == "json":
        atomic_write_text(path, json.dumps(frozen_to_dict(frozen)))
    elif format == "rtcf":
        from repro.core.rtcf import save_rtcf
        save_rtcf(frozen, path)
    else:
        raise ReproError(
            f"unknown frozen format {format!r}; choose 'json' or 'rtcf'")


def _load_frozen_index(path: Union[str, Path], *,
                       backend: Optional[str] = None) -> FrozenTCIndex:
    from repro.core.rtcf import load_rtcf, sniff_rtcf
    if sniff_rtcf(path):
        return load_rtcf(path, backend=backend)
    return _rebuild(path, frozen_from_dict, _read_document(path),
                    backend=backend)


def load_frozen_index(path: Union[str, Path], *,
                      backend: Optional[str] = None) -> FrozenTCIndex:
    """Read buffers previously written by :func:`save_frozen_index`.

    .. deprecated:: use :func:`repro.open_index` with
       ``engine="frozen"``.
    """
    _warn_deprecated("load_frozen_index")
    return _load_frozen_index(path, backend=backend)


# ----------------------------------------------------------------------
# hybrid engine (base buffers + delta log)
# ----------------------------------------------------------------------
def hybrid_to_dict(hybrid: "HybridTCIndex") -> dict:
    """A JSON-safe document capturing base snapshot, delta log and truth.

    Persisting all three means a warm restart skips recompilation
    entirely: the base buffers rehydrate like a frozen document, the
    mutable index reloads its interval sets, and the delta log replays
    the difference — no freeze, no Alg1, no propagation pass.
    """
    state = hybrid.to_state()
    return {
        "format_version": HYBRID_FORMAT_VERSION,
        "kind": HYBRID_KIND,
        "index": index_to_dict(hybrid.index),
        "base": frozen_to_dict(hybrid.base),
        "delta": {
            "arcs": [[source, destination]
                     for source, destination in state["delta_arcs"]],
            "nodes": state["delta_nodes"],
            "cost": state["delta_cost"],
            "tainted": state["tainted"],
        },
        "settings": state["settings"],
    }


def hybrid_from_dict(document: dict, *,
                     backend: Optional[str] = None) -> "HybridTCIndex":
    """Rehydrate a hybrid engine from :func:`hybrid_to_dict` output."""
    from repro.core.hybrid import HybridTCIndex
    if document.get("kind") != HYBRID_KIND:
        raise ReproError(
            "document does not hold a hybrid engine; use load_any")
    version = document.get("format_version")
    if version != HYBRID_FORMAT_VERSION:
        raise ReproError(f"unsupported hybrid document version {version!r}")
    index = index_from_dict(document["index"])
    base = frozen_from_dict(document["base"], backend=backend)
    delta = document["delta"]
    settings = document.get("settings", {})
    return HybridTCIndex.restore(
        index, base,
        delta_arcs=[(source, destination)
                    for source, destination in delta["arcs"]],
        delta_nodes=delta["nodes"],
        delta_cost=delta["cost"],
        tainted=delta["tainted"],
        backend=backend,
        **settings,
    )


def save_hybrid_index(hybrid: "HybridTCIndex",
                      path: Union[str, Path]) -> None:
    """Write a hybrid engine (base + delta log) to ``path`` atomically."""
    atomic_write_text(path, json.dumps(hybrid_to_dict(hybrid)))


def _load_hybrid_index(path: Union[str, Path], *,
                       backend: Optional[str] = None) -> "HybridTCIndex":
    return _rebuild(path, hybrid_from_dict, _read_document(path),
                    backend=backend)


def load_hybrid_index(path: Union[str, Path], *,
                      backend: Optional[str] = None) -> "HybridTCIndex":
    """Read a hybrid engine previously written by :func:`save_hybrid_index`.

    .. deprecated:: use :func:`repro.open_index` with
       ``engine="hybrid"``.
    """
    _warn_deprecated("load_hybrid_index")
    return _load_hybrid_index(path, backend=backend)


def _load_any(path: Union[str, Path], *, backend: Optional[str] = None
              ) -> Union[IntervalTCIndex, FrozenTCIndex, "HybridTCIndex"]:
    from repro.core.rtcf import load_rtcf, sniff_rtcf
    if sniff_rtcf(path):
        return load_rtcf(path, backend=backend)
    document = _read_document(path)
    kind = document.get("kind")
    if kind == FROZEN_KIND:
        return _rebuild(path, frozen_from_dict, document, backend=backend)
    if kind == HYBRID_KIND:
        return _rebuild(path, hybrid_from_dict, document, backend=backend)
    return _rebuild(path, index_from_dict, document)


def load_any(path: Union[str, Path]
             ) -> Union[IntervalTCIndex, FrozenTCIndex, "HybridTCIndex"]:
    """Load whichever index kind ``path`` holds.

    .. deprecated:: use :func:`repro.open_index` — the same dispatch,
       plus engine coercion and observability wiring.
    """
    _warn_deprecated("load_any")
    return _load_any(path)
