"""JSON (de)serialisation of built indexes — mutable and frozen.

A compressed closure is a one-time computation "repeatedly used to
efficiently answer queries" (Section 3.2), so persisting it matters.  The
mutable-index document stores the graph, the tree cover (as a parent
map), the postorder numbers and every interval set; loading reconstructs
an identical :class:`~repro.core.index.IntervalTCIndex` without
re-running Alg1 or the propagation pass.

A :class:`~repro.core.frozen.FrozenTCIndex` persists as its raw flat
buffers (:func:`save_frozen_index`; reopened via
:func:`repro.open_index`): loading rehydrates the arrays directly — no graph, tree cover, or interval-set
reconstruction — and only re-derives the reverse interval index with one
O(m log m) sort.  Frozen documents are self-contained; a view loaded this
way has no source index and can never go stale.

Node labels must be JSON-representable (strings or numbers); the virtual
root is encoded as ``None`` in the parent map.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Dict, Optional, Union

from repro.core.frozen import FrozenTCIndex
from repro.core.index import IntervalTCIndex
from repro.core.intervals import Interval, IntervalSet
from repro.core.labeling import Labeling
from repro.core.tree_cover import VIRTUAL_ROOT, TreeCover
from repro.durability.atomic import atomic_write_text
from repro.errors import CorruptFileError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.traversal import topological_order

FORMAT_VERSION = 1
FROZEN_FORMAT_VERSION = 1
HYBRID_FORMAT_VERSION = 1
HOPLABEL_FORMAT_VERSION = 1
CHAIN_FORMAT_VERSION = 1
#: Document discriminator for frozen-buffer files.
FROZEN_KIND = "frozen-tc-index"
#: Document discriminator for hybrid (base + delta log) files.
HYBRID_KIND = "hybrid-tc-index"
#: Document discriminator for 2-hop label files.
HOPLABEL_KIND = "hop-label-index"
#: Document discriminator for chain-cover label files.
CHAIN_KIND = "chain-tc-index"


def _read_document(path: Union[str, Path]) -> dict:
    """Read one JSON document, typing every corruption mode.

    Truncated, garbage, or non-object files raise
    :class:`~repro.errors.CorruptFileError` instead of leaking raw
    ``json.JSONDecodeError``; a missing file still raises
    :class:`FileNotFoundError` (absent and damaged are different
    failures).
    """
    try:
        text = Path(path).read_text()
    except FileNotFoundError:
        raise
    except OSError as error:
        raise CorruptFileError(path, f"unreadable: {error}") from error
    except UnicodeDecodeError as error:
        raise CorruptFileError(path, f"not UTF-8 text: {error}") from error
    try:
        document = json.loads(text)
    except ValueError as error:
        raise CorruptFileError(path, f"not valid JSON: {error}") from error
    if not isinstance(document, dict):
        raise CorruptFileError(
            path, f"expected a JSON object, got {type(document).__name__}")
    return document


def _rebuild(path, loader, *args, **kwargs):
    """Run a ``*_from_dict`` loader, wrapping structural failures.

    A document that parses as JSON but does not decode into an index
    (missing keys, wrong shapes) is corrupt from the caller's point of
    view; ``ReproError`` subtypes (version/kind mismatches) pass through
    with their sharper message.
    """
    try:
        return loader(*args, **kwargs)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError,
            IndexError) as error:
        raise CorruptFileError(
            path,
            f"document does not decode ({type(error).__name__}: {error})"
        ) from error


def _encode_number(number) -> object:
    """Postorder numbers are ints, or Fractions under fractional numbering."""
    if isinstance(number, Fraction):
        return {"n": number.numerator, "d": number.denominator}
    return number


def _decode_number(stored) -> object:
    if isinstance(stored, dict):
        return Fraction(stored["n"], stored["d"])
    return stored


def index_to_dict(index: IntervalTCIndex) -> dict:
    """A JSON-safe document capturing the full index state."""
    nodes = list(index.nodes())
    return {
        "format_version": FORMAT_VERSION,
        "policy": index.policy,
        "gap": index.gap,
        "merged": index.merged,
        "numbering": index.numbering,
        "graph": graph_to_dict(index.graph),
        "parent": [[node, None if index.cover.parent[node] is VIRTUAL_ROOT
                    else index.cover.parent[node]] for node in nodes],
        "postorder": [[node, _encode_number(index.postorder[node])]
                      for node in nodes],
        "tree_interval": [[node, [_encode_number(bound) for bound
                                  in index.tree_interval[node]]]
                          for node in nodes],
        "intervals": [[node, [[_encode_number(bound) for bound in interval]
                              for interval in index.intervals[node]]]
                      for node in nodes],
    }


def index_from_dict(document: dict) -> IntervalTCIndex:
    """Rebuild an index from :func:`index_to_dict` output.

    JSON converts non-string dict keys, so all per-node tables are stored
    as pair lists; labels round-trip as long as they are strings/numbers.
    """
    kind = document.get("kind")
    if kind is not None:
        raise ReproError(
            f"document holds a {kind!r} engine, not a mutable index; "
            "open it with repro.open_index")
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported index document version {version!r}")
    graph: DiGraph = graph_from_dict(document["graph"])

    parent = {node: (VIRTUAL_ROOT if stored is None else stored)
              for node, stored in document["parent"]}
    children: Dict = {VIRTUAL_ROOT: []}
    for node in graph.nodes():
        children.setdefault(node, [])
    postorder = {node: _decode_number(number)
                 for node, number in document["postorder"]}
    for node, chosen in parent.items():
        children.setdefault(chosen, []).append(node)
    for child_list in children.values():
        child_list.sort(key=lambda node: postorder[node])
    order = topological_order(graph)
    cover = TreeCover(parent=parent, children=children, order=order,
                      policy=document["policy"])

    tree_interval = {node: Interval(*(_decode_number(bound) for bound in bounds))
                     for node, bounds in document["tree_interval"]}
    intervals = {
        node: IntervalSet(Interval(*(_decode_number(bound) for bound in interval))
                          for interval in stored)
        for node, stored in document["intervals"]
    }
    labeling = Labeling(postorder=postorder, tree_interval=tree_interval,
                        intervals=intervals, gap=document["gap"])
    return IntervalTCIndex(graph, cover, labeling, policy=document["policy"],
                           merged=document["merged"],
                           numbering=document.get("numbering", "integer"))


def save_index(index: IntervalTCIndex, path: Union[str, Path]) -> None:
    """Write the index to ``path`` as JSON (atomically: temp + rename)."""
    atomic_write_text(path, json.dumps(index_to_dict(index)))


def _load_index(path: Union[str, Path]) -> IntervalTCIndex:
    return _rebuild(path, index_from_dict, _read_document(path))


# ----------------------------------------------------------------------
# frozen buffers
# ----------------------------------------------------------------------
def frozen_to_dict(frozen: FrozenTCIndex) -> dict:
    """A JSON-safe document holding the frozen engine's flat buffers."""
    buffers = frozen.to_buffers()
    return {
        "format_version": FROZEN_FORMAT_VERSION,
        "kind": FROZEN_KIND,
        "epoch": buffers.get("epoch", 0),
        "nodes": buffers["nodes"],
        "numbers": [_encode_number(number) for number in buffers["numbers"]],
        "offsets": buffers["offsets"],
        "lows": buffers["lows"],
        "highs": buffers["highs"],
    }


def frozen_from_dict(document: dict, *,
                     backend: Optional[str] = None) -> FrozenTCIndex:
    """Rehydrate a frozen engine from :func:`frozen_to_dict` output.

    The CSR buffers are adopted as-is (no closure or tree-cover rebuild);
    only the derived reverse interval index is re-sorted.  ``backend``
    picks the buffer implementation, defaulting to numpy when installed.
    """
    if document.get("kind") != FROZEN_KIND:
        raise ReproError(
            "document does not hold frozen buffers; "
            "open it with repro.open_index")
    version = document.get("format_version")
    if version != FROZEN_FORMAT_VERSION:
        raise ReproError(f"unsupported frozen document version {version!r}")
    return FrozenTCIndex.from_buffers(
        nodes=document["nodes"],
        numbers=[_decode_number(number) for number in document["numbers"]],
        offsets=document["offsets"],
        lows=document["lows"],
        highs=document["highs"],
        backend=backend,
        epoch=document.get("epoch", 0),
    )


def save_frozen_index(frozen: FrozenTCIndex, path: Union[str, Path], *,
                      format: str = "json") -> None:
    """Write a frozen engine to ``path`` atomically.

    ``format="json"`` writes the textual buffer document (portable,
    human-inspectable, the only choice for fractional numbering);
    ``format="rtcf"`` writes the binary zero-copy container
    (:mod:`repro.core.rtcf`), which :func:`repro.open_index` reopens
    through ``mmap`` in O(1).
    """
    if format == "json":
        atomic_write_text(path, json.dumps(frozen_to_dict(frozen)))
    elif format == "rtcf":
        from repro.core.rtcf import save_rtcf
        save_rtcf(frozen, path)
    else:
        raise ReproError(
            f"unknown frozen format {format!r}; choose 'json' or 'rtcf'")


def _load_frozen_index(path: Union[str, Path], *,
                       backend: Optional[str] = None) -> FrozenTCIndex:
    from repro.core.rtcf import load_rtcf, sniff_rtcf
    if sniff_rtcf(path):
        return load_rtcf(path, backend=backend)
    return _rebuild(path, frozen_from_dict, _read_document(path),
                    backend=backend)


# ----------------------------------------------------------------------
# hybrid engine (base buffers + delta log)
# ----------------------------------------------------------------------
def hybrid_to_dict(hybrid: "HybridTCIndex") -> dict:
    """A JSON-safe document capturing base snapshot, delta log and truth.

    Persisting all three means a warm restart skips recompilation
    entirely: the base buffers rehydrate like a frozen document, the
    mutable index reloads its interval sets, and the delta log replays
    the difference — no freeze, no Alg1, no propagation pass.
    """
    state = hybrid.to_state()
    return {
        "format_version": HYBRID_FORMAT_VERSION,
        "kind": HYBRID_KIND,
        "index": index_to_dict(hybrid.index),
        "base": frozen_to_dict(hybrid.base),
        "delta": {
            "arcs": [[source, destination]
                     for source, destination in state["delta_arcs"]],
            "nodes": state["delta_nodes"],
            "cost": state["delta_cost"],
            "tainted": state["tainted"],
        },
        "settings": state["settings"],
    }


def hybrid_from_dict(document: dict, *,
                     backend: Optional[str] = None) -> "HybridTCIndex":
    """Rehydrate a hybrid engine from :func:`hybrid_to_dict` output."""
    from repro.core.hybrid import HybridTCIndex
    if document.get("kind") != HYBRID_KIND:
        raise ReproError(
            "document does not hold a hybrid engine; "
            "open it with repro.open_index")
    version = document.get("format_version")
    if version != HYBRID_FORMAT_VERSION:
        raise ReproError(f"unsupported hybrid document version {version!r}")
    index = index_from_dict(document["index"])
    base = frozen_from_dict(document["base"], backend=backend)
    delta = document["delta"]
    settings = document.get("settings", {})
    return HybridTCIndex.restore(
        index, base,
        delta_arcs=[(source, destination)
                    for source, destination in delta["arcs"]],
        delta_nodes=delta["nodes"],
        delta_cost=delta["cost"],
        tainted=delta["tainted"],
        backend=backend,
        **settings,
    )


def save_hybrid_index(hybrid: "HybridTCIndex",
                      path: Union[str, Path]) -> None:
    """Write a hybrid engine (base + delta log) to ``path`` atomically."""
    atomic_write_text(path, json.dumps(hybrid_to_dict(hybrid)))


def _load_hybrid_index(path: Union[str, Path], *,
                       backend: Optional[str] = None) -> "HybridTCIndex":
    return _rebuild(path, hybrid_from_dict, _read_document(path),
                    backend=backend)


# ----------------------------------------------------------------------
# 2-hop labels
# ----------------------------------------------------------------------
def hoplabel_to_dict(oracle: "HopLabelIndex") -> dict:
    """A JSON-safe document holding the oracle's Lin/Lout label lists."""
    labels = oracle.to_labels()
    return {
        "format_version": HOPLABEL_FORMAT_VERSION,
        "kind": HOPLABEL_KIND,
        "nodes": labels["nodes"],
        "lin": labels["lin"],
        "lout": labels["lout"],
    }


def hoplabel_from_dict(document: dict) -> "HopLabelIndex":
    """Rehydrate a 2-hop oracle from :func:`hoplabel_to_dict` output.

    The label lists are adopted as-is; only the inverted cluster lists
    (for set-valued queries) are re-derived — one linear pass.
    """
    from repro.core.hoplabel import HopLabelIndex
    if document.get("kind") != HOPLABEL_KIND:
        raise ReproError(
            "document does not hold 2-hop labels; "
            "open it with repro.open_index")
    version = document.get("format_version")
    if version != HOPLABEL_FORMAT_VERSION:
        raise ReproError(
            f"unsupported hop-label document version {version!r}")
    return HopLabelIndex.from_labels(
        document["nodes"], document["lin"], document["lout"])


def save_hoplabel_index(oracle: "HopLabelIndex",
                        path: Union[str, Path]) -> None:
    """Write a 2-hop oracle to ``path`` atomically."""
    atomic_write_text(path, json.dumps(hoplabel_to_dict(oracle)))


# ----------------------------------------------------------------------
# chain-cover labels
# ----------------------------------------------------------------------
def chain_to_dict(index: "ChainCoverIndex") -> dict:
    """A JSON-safe document holding chains and per-node chain minima."""
    return {
        "format_version": CHAIN_FORMAT_VERSION,
        "kind": CHAIN_KIND,
        "method": index.method,
        "chains": [list(chain) for chain in index.chains],
        "reach": [[node, sorted(entries.items())]
                  for node, entries in index._reach.items()],
    }


def chain_from_dict(document: dict) -> "ChainCoverIndex":
    """Rehydrate a chain-cover engine from :func:`chain_to_dict` output."""
    from repro.core.chain_cover import ChainCoverIndex
    if document.get("kind") != CHAIN_KIND:
        raise ReproError(
            "document does not hold chain-cover labels; "
            "open it with repro.open_index")
    version = document.get("format_version")
    if version != CHAIN_FORMAT_VERSION:
        raise ReproError(
            f"unsupported chain-cover document version {version!r}")
    chains = [list(chain) for chain in document["chains"]]
    position_of = {node: (chain_id, sequence)
                   for chain_id, chain in enumerate(chains)
                   for sequence, node in enumerate(chain)}
    reach = {node: {int(chain_id): int(sequence)
                    for chain_id, sequence in entries}
             for node, entries in document["reach"]}
    return ChainCoverIndex(chains, position_of, reach,
                           document.get("method", "greedy"))


def save_chain_index(index: "ChainCoverIndex",
                     path: Union[str, Path]) -> None:
    """Write a chain-cover engine to ``path`` atomically."""
    atomic_write_text(path, json.dumps(chain_to_dict(index)))


def _load_any(path: Union[str, Path], *, backend: Optional[str] = None):
    """Load whichever engine kind ``path`` holds (magic sniff + ``kind``).

    The dispatch behind :func:`repro.open_index`: binary RTCF containers
    are recognised by magic and opened through ``mmap``; JSON documents
    dispatch on their ``kind`` discriminator; documents without one are
    mutable-index documents.
    """
    from repro.core.rtcf import load_rtcf, sniff_rtcf
    if sniff_rtcf(path):
        return load_rtcf(path, backend=backend)
    document = _read_document(path)
    kind = document.get("kind")
    if kind == FROZEN_KIND:
        return _rebuild(path, frozen_from_dict, document, backend=backend)
    if kind == HYBRID_KIND:
        return _rebuild(path, hybrid_from_dict, document, backend=backend)
    if kind == HOPLABEL_KIND:
        return _rebuild(path, hoplabel_from_dict, document)
    if kind == CHAIN_KIND:
        return _rebuild(path, chain_from_dict, document)
    return _rebuild(path, index_from_dict, document)
