"""JSON (de)serialisation of a built index.

A compressed closure is a one-time computation "repeatedly used to
efficiently answer queries" (Section 3.2), so persisting it matters.  The
document stores the graph, the tree cover (as a parent map), the postorder
numbers and every interval set; loading reconstructs an identical
:class:`~repro.core.index.IntervalTCIndex` without re-running Alg1 or the
propagation pass.

Node labels must be JSON-representable (strings or numbers); the virtual
root is encoded as ``None`` in the parent map.
"""

from __future__ import annotations

import json
from fractions import Fraction
from pathlib import Path
from typing import Dict, Union

from repro.core.index import IntervalTCIndex
from repro.core.intervals import Interval, IntervalSet
from repro.core.labeling import Labeling
from repro.core.tree_cover import VIRTUAL_ROOT, TreeCover
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.io import graph_from_dict, graph_to_dict
from repro.graph.traversal import topological_order

FORMAT_VERSION = 1


def _encode_number(number) -> object:
    """Postorder numbers are ints, or Fractions under fractional numbering."""
    if isinstance(number, Fraction):
        return {"n": number.numerator, "d": number.denominator}
    return number


def _decode_number(stored) -> object:
    if isinstance(stored, dict):
        return Fraction(stored["n"], stored["d"])
    return stored


def index_to_dict(index: IntervalTCIndex) -> dict:
    """A JSON-safe document capturing the full index state."""
    nodes = list(index.nodes())
    return {
        "format_version": FORMAT_VERSION,
        "policy": index.policy,
        "gap": index.gap,
        "merged": index.merged,
        "numbering": index.numbering,
        "graph": graph_to_dict(index.graph),
        "parent": [[node, None if index.cover.parent[node] is VIRTUAL_ROOT
                    else index.cover.parent[node]] for node in nodes],
        "postorder": [[node, _encode_number(index.postorder[node])]
                      for node in nodes],
        "tree_interval": [[node, [_encode_number(bound) for bound
                                  in index.tree_interval[node]]]
                          for node in nodes],
        "intervals": [[node, [[_encode_number(bound) for bound in interval]
                              for interval in index.intervals[node]]]
                      for node in nodes],
    }


def index_from_dict(document: dict) -> IntervalTCIndex:
    """Rebuild an index from :func:`index_to_dict` output.

    JSON converts non-string dict keys, so all per-node tables are stored
    as pair lists; labels round-trip as long as they are strings/numbers.
    """
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise ReproError(f"unsupported index document version {version!r}")
    graph: DiGraph = graph_from_dict(document["graph"])

    parent = {node: (VIRTUAL_ROOT if stored is None else stored)
              for node, stored in document["parent"]}
    children: Dict = {VIRTUAL_ROOT: []}
    for node in graph.nodes():
        children.setdefault(node, [])
    postorder = {node: _decode_number(number)
                 for node, number in document["postorder"]}
    for node, chosen in parent.items():
        children.setdefault(chosen, []).append(node)
    for child_list in children.values():
        child_list.sort(key=lambda node: postorder[node])
    order = topological_order(graph)
    cover = TreeCover(parent=parent, children=children, order=order,
                      policy=document["policy"])

    tree_interval = {node: Interval(*(_decode_number(bound) for bound in bounds))
                     for node, bounds in document["tree_interval"]}
    intervals = {
        node: IntervalSet(Interval(*(_decode_number(bound) for bound in interval))
                          for interval in stored)
        for node, stored in document["intervals"]
    }
    labeling = Labeling(postorder=postorder, tree_interval=tree_interval,
                        intervals=intervals, gap=document["gap"])
    return IntervalTCIndex(graph, cover, labeling, policy=document["policy"],
                           merged=document["merged"],
                           numbering=document.get("numbering", "integer"))


def save_index(index: IntervalTCIndex, path: Union[str, Path]) -> None:
    """Write the index to ``path`` as JSON."""
    Path(path).write_text(json.dumps(index_to_dict(index)))


def load_index(path: Union[str, Path]) -> IntervalTCIndex:
    """Read an index previously written by :func:`save_index`."""
    return index_from_dict(json.loads(Path(path).read_text()))
