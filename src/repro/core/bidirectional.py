"""A forward + backward index pair for fast queries in both directions.

The paper stores successor intervals only, so predecessor queries
("where-used" in a parts database, "all superconcepts" in a taxonomy) scan
every node's interval set — O(n log k).  When those queries matter, the
standard remedy is a second interval index over the *reversed* graph:
ancestors of ``v`` are exactly the nodes reachable from ``v`` along
reversed arcs.  :class:`BidirectionalTCIndex` packages the pair and keeps
both sides synchronised through the Section 4 update algorithms.

Storage doubles (two compressed closures — still far below one full
closure on the graphs the paper targets); predecessor queries drop from
O(n log k) to O(answer + k log n).
"""

from __future__ import annotations

from typing import Iterator, Sequence, Set

from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.graph.digraph import DiGraph, Node


class BidirectionalTCIndex:
    """Compressed closure over a DAG and its reverse, updated in lockstep.

    >>> index = BidirectionalTCIndex.build(DiGraph([("a", "b"), ("b", "c")]))
    >>> index.predecessors("c") == {"a", "b", "c"}
    True
    """

    def __init__(self, forward: IntervalTCIndex, backward: IntervalTCIndex) -> None:
        self.forward = forward
        self.backward = backward

    @classmethod
    def build(cls, graph: DiGraph, *, policy: str = "alg1",
              gap: int = DEFAULT_GAP, merge: bool = False) -> "BidirectionalTCIndex":
        """Index ``graph`` and its reverse.

        The reverse index owns a reversed *copy*; the forward index holds
        the caller's graph, exactly like :meth:`IntervalTCIndex.build`.
        """
        forward = IntervalTCIndex.build(graph, policy=policy, gap=gap, merge=merge)
        backward = IntervalTCIndex.build(graph.reverse(), policy=policy,
                                         gap=gap, merge=merge)
        return cls(forward, backward)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self.forward

    def __len__(self) -> int:
        return len(self.forward)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes."""
        return self.forward.nodes()

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability (forward index)."""
        return self.forward.reachable(source, destination)

    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes reachable from ``source``."""
        return self.forward.successors(source, reflexive=reflexive)

    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes reaching ``destination`` — via the reverse index, so
        O(answer) instead of an all-nodes scan."""
        return self.backward.successors(destination, reflexive=reflexive)

    def count_predecessors(self, destination: Node, *, reflexive: bool = True) -> int:
        """Predecessor count without materialising the set."""
        return self.backward.count_successors(destination, reflexive=reflexive)

    # ------------------------------------------------------------------
    # updates — applied to both sides
    # ------------------------------------------------------------------
    def add_node(self, node: Node, parents: Sequence[Node] = ()) -> None:
        """Insert a node below ``parents`` in the forward direction."""
        self.forward.add_node(node, parents)
        # In the reversed graph the new node has *outgoing* arcs to its
        # parents: insert it as a root, then add the reversed arcs (each
        # propagates only to the new node itself — its predecessor set in
        # the reversed graph is empty, so the cut-off fires immediately).
        self.backward.add_node(node)
        for parent in parents:
            self.backward.add_arc(node, parent)

    def add_arc(self, source: Node, destination: Node) -> None:
        """Insert an arc; the reverse index receives the flipped arc."""
        self.forward.add_arc(source, destination)
        self.backward.add_arc(destination, source)

    def remove_arc(self, source: Node, destination: Node) -> None:
        """Delete an arc from both sides."""
        self.forward.remove_arc(source, destination)
        self.backward.remove_arc(destination, source)

    def remove_node(self, node: Node) -> None:
        """Delete a node from both sides."""
        self.forward.remove_node(node)
        self.backward.remove_node(node)

    # ------------------------------------------------------------------
    # accounting / verification
    # ------------------------------------------------------------------
    @property
    def storage_units(self) -> int:
        """Total paper units across both directions."""
        return self.forward.storage_units + self.backward.storage_units

    def verify(self) -> None:
        """Cross-check both directions against pointer chasing."""
        self.forward.verify()
        self.backward.verify()

    def check_invariants(self) -> None:
        """Structural invariants of both indexes, plus mirror consistency."""
        self.forward.check_invariants()
        self.backward.check_invariants()
        forward_arcs = set(self.forward.graph.arcs())
        backward_arcs = {(d, s) for s, d in self.backward.graph.arcs()}
        if forward_arcs != backward_arcs:
            from repro.errors import IndexStateError
            raise IndexStateError("forward and backward graphs have diverged")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"BidirectionalTCIndex(nodes={len(self.forward)}, "
                f"units={self.storage_units})")
