"""Higher-level queries over a compressed closure.

Section 6 of the paper lists the operations a knowledge-representation
system needs beyond raw reachability: "subsumption, disjointness, least
common ancestors, and other properties".  This module implements them on
top of :class:`~repro.core.index.IntervalTCIndex`, and provides the
irreflexive (strict) view of reachability for callers who do not want the
paper's every-node-reaches-itself convention.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core.index import IntervalTCIndex
from repro.graph.digraph import Node


def descendants(index: IntervalTCIndex, node: Node) -> Set[Node]:
    """Strict descendants of ``node`` (successors minus the node itself)."""
    return index.successors(node, reflexive=False)


def ancestors(index: IntervalTCIndex, node: Node) -> Set[Node]:
    """Strict ancestors of ``node`` (predecessors minus the node itself)."""
    return index.predecessors(node, reflexive=False)


def strictly_reachable(index: IntervalTCIndex, source: Node, destination: Node) -> bool:
    """Reachability under irreflexive semantics: ``u -> u`` only via a real path.

    The stored relation is acyclic, so a node never strictly reaches itself.
    """
    if source == destination:
        return False
    return index.reachable(source, destination)


def common_ancestors(index: IntervalTCIndex, nodes: Iterable[Node]) -> Set[Node]:
    """Nodes that reach *every* node in ``nodes`` (reflexively)."""
    node_list = list(nodes)
    if not node_list:
        return set()
    result = index.predecessors(node_list[0])
    for node in node_list[1:]:
        result &= index.predecessors(node)
    return result


def common_descendants(index: IntervalTCIndex, nodes: Iterable[Node]) -> Set[Node]:
    """Nodes reachable from *every* node in ``nodes`` (reflexively)."""
    node_list = list(nodes)
    if not node_list:
        return set()
    result = index.successors(node_list[0])
    for node in node_list[1:]:
        result &= index.successors(node)
    return result


def least_common_ancestors(index: IntervalTCIndex, nodes: Iterable[Node]) -> Set[Node]:
    """The minimal elements of the common-ancestor set.

    In a lattice-shaped hierarchy this is the greatest lower bound of the
    concepts *above* ``nodes``; in a general DAG there may be several
    incomparable least common ancestors, all of which are returned.
    """
    candidates = common_ancestors(index, nodes)
    return {candidate for candidate in candidates
            if not any(candidate is not other and index.reachable(candidate, other)
                       for other in candidates)}


def greatest_common_descendants(index: IntervalTCIndex, nodes: Iterable[Node]) -> Set[Node]:
    """The maximal elements of the common-descendant set (dual of LCA)."""
    candidates = common_descendants(index, nodes)
    return {candidate for candidate in candidates
            if not any(candidate is not other and index.reachable(other, candidate)
                       for other in candidates)}


def are_disjoint(index: IntervalTCIndex, first: Node, second: Node) -> bool:
    """Whether two hierarchy nodes share no common descendant.

    In an IS-A hierarchy read downward (concept -> subconcept), two
    concepts with no common descendant cannot classify a shared instance —
    the "disjointness" computation of Section 6.
    """
    if index.reachable(first, second) or index.reachable(second, first):
        return False
    return not common_descendants(index, [first, second])


def are_comparable(index: IntervalTCIndex, first: Node, second: Node) -> bool:
    """Whether one of the two nodes reaches the other."""
    return index.reachable(first, second) or index.reachable(second, first)


def topological_level(index: IntervalTCIndex, node: Node) -> int:
    """Length of the longest path from any root down to ``node``.

    Computed by memoised pointer chasing over the ancestor cone (cheap,
    bounded by the cone size); used by reports and examples.
    """
    graph = index.graph
    memo = {}
    stack = [(node, iter(graph.predecessors(node)))]
    while stack:
        current, parents = stack[-1]
        advanced = False
        for parent in parents:
            if parent not in memo:
                stack.append((parent, iter(graph.predecessors(parent))))
                advanced = True
                break
        if advanced:
            continue
        stack.pop()
        levels = [memo[parent] for parent in graph.predecessors(current)]
        memo[current] = 1 + max(levels) if levels else 0
    return memo[node]


def path_exists_batch(index: IntervalTCIndex,
                      pairs: Iterable[tuple]) -> List[bool]:
    """Vector form of :meth:`IntervalTCIndex.reachable` for benchmark loops."""
    return [index.reachable(source, destination) for source, destination in pairs]


def reachable_from_set(index: IntervalTCIndex,
                       sources: Iterable[Node]) -> Set[Node]:
    """Everything reachable from *any* of ``sources`` (reflexive).

    The semijoin building block of recursive query evaluation: one
    interval-set union instead of per-source traversals.
    """
    result: Set[Node] = set()
    for source in sources:
        result |= index.successors(source)
    return result


def reaching_set(index: IntervalTCIndex,
                 destinations: Iterable[Node]) -> Set[Node]:
    """Everything that reaches *any* of ``destinations`` (reflexive).

    One pass over the nodes, testing each interval set against all target
    numbers — O(n * |destinations| * log k) worst case, versus
    |destinations| full predecessor scans done naively.
    """
    numbers = [index.postorder[destination] for destination in destinations]
    result: Set[Node] = set()
    for node, interval_set in index.intervals.items():
        if any(interval_set.covers(number) for number in numbers):
            result.add(node)
    return result


def any_reachable(index: IntervalTCIndex, sources: Iterable[Node],
                  destinations: Iterable[Node]) -> bool:
    """Does any source reach any destination?  Early-exit set semijoin."""
    targets = [index.postorder[destination] for destination in destinations]
    for source in sources:
        interval_set = index.intervals[source]
        if any(interval_set.covers(number) for number in targets):
            return True
    return False
