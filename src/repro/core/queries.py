"""Higher-level queries over a compressed closure.

Section 6 of the paper lists the operations a knowledge-representation
system needs beyond raw reachability: "subsumption, disjointness, least
common ancestors, and other properties".  This module implements them on
top of :class:`~repro.core.index.IntervalTCIndex`, and provides the
irreflexive (strict) view of reachability for callers who do not want the
paper's every-node-reaches-itself convention.

Every helper is written against the shared
:class:`~repro.core.engine.TCEngine` protocol, so any engine works —
mutable, frozen, hybrid, or durable (:func:`topological_level` is the
one exception: it needs a graph, which only mutable-backed engines
carry).  Given a mutable index that currently has a fresh frozen view
(see :meth:`IntervalTCIndex.freeze`), queries transparently route
through the flat-array engine: predecessor-flavoured queries then use
the reverse interval index instead of scanning every node, and
:func:`path_exists_batch` runs vectorised.  A hybrid engine routes
internally (base snapshot + delta overlay), so it is always used as-is.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.core.engine import TCEngine
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import Node

#: Anything with the shared query surface — kept as an alias so existing
#: ``queries.Engine`` annotations keep working.
Engine = TCEngine


def _engine(index: Engine) -> Engine:
    """The fastest engine available for ``index`` without compiling one.

    Frozen, hybrid and durable engines are used as-is (the hybrid does
    its own base/delta routing); a mutable index is swapped for its
    cached frozen view when that view exists and is fresh.  Freezing is
    never triggered here — callers opt in with ``index.freeze()``.
    """
    frozen_view = getattr(index, "frozen_view", None)
    if frozen_view is not None:
        view = frozen_view()
        return index if view is None else view
    return index


def descendants(index: Engine, node: Node) -> Set[Node]:
    """Strict descendants of ``node`` (successors minus the node itself)."""
    return _engine(index).successors(node, reflexive=False)


def ancestors(index: Engine, node: Node) -> Set[Node]:
    """Strict ancestors of ``node`` (predecessors minus the node itself)."""
    return _engine(index).predecessors(node, reflexive=False)


def strictly_reachable(index: Engine, source: Node, destination: Node) -> bool:
    """Reachability under irreflexive semantics: ``u -> u`` only via a real path.

    The stored relation is acyclic, so a node never strictly reaches itself.
    """
    if source == destination:
        return False
    return index.reachable(source, destination)


def common_ancestors(index: Engine, nodes: Iterable[Node]) -> Set[Node]:
    """Nodes that reach *every* node in ``nodes`` (reflexively)."""
    node_list = list(nodes)
    if not node_list:
        return set()
    engine = _engine(index)
    result = engine.predecessors(node_list[0])
    for node in node_list[1:]:
        result &= engine.predecessors(node)
    return result


def common_descendants(index: Engine, nodes: Iterable[Node]) -> Set[Node]:
    """Nodes reachable from *every* node in ``nodes`` (reflexively)."""
    node_list = list(nodes)
    if not node_list:
        return set()
    engine = _engine(index)
    result = engine.successors(node_list[0])
    for node in node_list[1:]:
        result &= engine.successors(node)
    return result


def least_common_ancestors(index: Engine, nodes: Iterable[Node]) -> Set[Node]:
    """The minimal elements of the common-ancestor set.

    In a lattice-shaped hierarchy this is the greatest lower bound of the
    concepts *above* ``nodes``; in a general DAG there may be several
    incomparable least common ancestors, all of which are returned.
    """
    engine = _engine(index)
    candidates = common_ancestors(engine, nodes)
    return {candidate for candidate in candidates
            if not any(candidate is not other and engine.reachable(candidate, other)
                       for other in candidates)}


def greatest_common_descendants(index: Engine, nodes: Iterable[Node]) -> Set[Node]:
    """The maximal elements of the common-descendant set (dual of LCA)."""
    engine = _engine(index)
    candidates = common_descendants(engine, nodes)
    return {candidate for candidate in candidates
            if not any(candidate is not other and engine.reachable(other, candidate)
                       for other in candidates)}


def are_disjoint(index: Engine, first: Node, second: Node) -> bool:
    """Whether two hierarchy nodes share no common descendant.

    In an IS-A hierarchy read downward (concept -> subconcept), two
    concepts with no common descendant cannot classify a shared instance —
    the "disjointness" computation of Section 6.  Under the frozen engine
    this is a two-pointer walk over the two rank-run lists; no successor
    set is materialised.
    """
    return _engine(index).are_disjoint(first, second)


def are_comparable(index: Engine, first: Node, second: Node) -> bool:
    """Whether one of the two nodes reaches the other."""
    return index.reachable(first, second) or index.reachable(second, first)


def topological_level(index: IntervalTCIndex, node: Node) -> int:
    """Length of the longest path from any root down to ``node``.

    Computed by memoised pointer chasing over the ancestor cone (cheap,
    bounded by the cone size); used by reports and examples.  Needs the
    mutable index — a frozen view carries no graph.
    """
    graph = index.graph
    memo = {}
    stack = [(node, iter(graph.predecessors(node)))]
    while stack:
        current, parents = stack[-1]
        advanced = False
        for parent in parents:
            if parent not in memo:
                stack.append((parent, iter(graph.predecessors(parent))))
                advanced = True
                break
        if advanced:
            continue
        stack.pop()
        levels = [memo[parent] for parent in graph.predecessors(current)]
        memo[current] = 1 + max(levels) if levels else 0
    return memo[node]


def path_exists_batch(index: Engine,
                      pairs: Iterable[tuple]) -> List[bool]:
    """Vector form of :meth:`IntervalTCIndex.reachable` for benchmark loops.

    Delegates to :meth:`FrozenTCIndex.reachable_many` (one vectorised
    lookup under numpy) whenever a frozen view is available; the
    list-of-bools contract is identical either way.
    """
    return _engine(index).reachable_many(pairs)


def reachable_from_set(index: Engine,
                       sources: Iterable[Node]) -> Set[Node]:
    """Everything reachable from *any* of ``sources`` (reflexive).

    The semijoin building block of recursive query evaluation: one
    interval-set union instead of per-source traversals.
    """
    return _engine(index).reachable_from_set(sources)


def reaching_set(index: Engine,
                 destinations: Iterable[Node]) -> Set[Node]:
    """Everything that reaches *any* of ``destinations`` (reflexive).

    Frozen engine: one reverse-index stab per distinct destination —
    O(log m + answers) each.  Mutable engine: the target numbers are
    sorted once, then each node pays one early-exit bisect pass over its
    own intervals — O(n k log t) worst case, versus the naive
    O(n t log k) of testing every target against every node.
    """
    return _engine(index).reaching_set(destinations)


def any_reachable(index: Engine, sources: Iterable[Node],
                  destinations: Iterable[Node]) -> bool:
    """Does any source reach any destination?  Early-exit set semijoin.

    Target numbers are sorted once; each source then needs one bisect per
    stored interval, stopping at the first hit.
    """
    return _engine(index).any_reachable(sources, destinations)
