"""2-hop reachability labeling — a hub-based oracle engine.

The design point of Jin & Wang's "Simple, Fast, and Scalable Reachability
Oracle" (see PAPERS.md) and of pruned landmark labeling: every node ``u``
carries two sorted hub-rank sets, ``Lout(u)`` (hubs ``u`` reaches) and
``Lin(v)`` (hubs that reach ``v``), and

    ``u`` reaches ``v``  iff  ``Lout(u) ∩ Lin(v) ≠ ∅``

— one sorted-list intersection per point query, no traversal and no
interval arithmetic.  Where the paper's interval index compresses best on
tree-like structure, hop labels shine on dense bushy DAGs whose closure
funnels through a few high-degree hubs.

Construction processes every node once as a hub, in a degree/topological
rank order (highest ``(in+1)·(out+1)`` degree product first, topological
position as the tie-break), running one *pruned* forward and one pruned
backward BFS per hub: a visit that the labels built so far can already
answer is cut off, which is what keeps label sets near the closure's
hub structure instead of Θ(n) each.  Correctness of pruning is the
standard argument: for any reachable pair take the minimum-rank hub on
any connecting path; neither endpoint can have been pruned when that hub
ran, so the pair intersects on it.

The oracle is an immutable compiled artefact (``is_frozen_snapshot`` in
capability terms): it keeps no adjacency.  Set-valued queries decode
from the inverted *cluster* form of the same labels — hub rank ``r`` maps
to every node carrying ``r`` — so ``successors`` is a union of in-cluster
lists, O(candidates) with no per-candidate intersection.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Set, Tuple

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_order
from repro.obs.instrument import instrumented

__all__ = ["HopLabelIndex"]


def _intersects(left: List[int], right: List[int]) -> bool:
    """Whether two ascending rank lists share an element (two-pointer)."""
    i = j = 0
    left_len, right_len = len(left), len(right)
    while i < left_len and j < right_len:
        a, b = left[i], right[j]
        if a == b:
            return True
        if a < b:
            i += 1
        else:
            j += 1
    return False


class HopLabelIndex:
    """2-hop reachability oracle with pruned Lin/Lout hub labels."""

    def __init__(self, node_of: List[Node], id_of: Dict[Node, int],
                 lin: List[List[int]], lout: List[List[int]]) -> None:
        self._node_of = node_of
        self._id_of = id_of
        self._lin = lin
        self._lout = lout
        # Inverted labels: rank -> node ids carrying it, for set queries.
        in_clusters: List[List[int]] = [[] for _ in node_of]
        out_clusters: List[List[int]] = [[] for _ in node_of]
        for identifier, ranks in enumerate(lin):
            for rank in ranks:
                in_clusters[rank].append(identifier)
        for identifier, ranks in enumerate(lout):
            for rank in ranks:
                out_clusters[rank].append(identifier)
        self._in_clusters = in_clusters
        self._out_clusters = out_clusters
        self._obs = None
        self._tracer = None

    @classmethod
    def build(cls, graph: DiGraph) -> "HopLabelIndex":
        """Label ``graph`` with pruned forward/backward hub BFS passes."""
        order = list(topological_order(graph))
        id_of = {node: identifier for identifier, node in enumerate(order)}
        out_adj: List[List[int]] = [
            [id_of[successor] for successor in graph.successors(node)]
            for node in order]
        in_adj: List[List[int]] = [
            [id_of[predecessor] for predecessor in graph.predecessors(node)]
            for node in order]
        # Highest degree product first — the hubs the closure funnels
        # through.  Ties break on *binary-split* order over topological
        # positions (the midpoint of [0, n), then the midpoints of each
        # half, breadth-first): on chain-shaped regions where every
        # degree product is equal, each hub halves the remaining
        # unsplit span, which keeps labels O(log n) per node.  A naive
        # front-to-back (or centre-outward) tie order degenerates to
        # O(n) labels per node on exactly those regions.
        count = len(order)
        split_rank = [0] * count
        spans = [(0, count)]
        sequence = 0
        for low, high in spans:  # appended-to while iterating: BFS
            if low >= high:
                continue
            middle = (low + high) // 2
            split_rank[middle] = sequence
            sequence += 1
            spans.append((low, middle))
            spans.append((middle + 1, high))
        hubs = sorted(range(count),
                      key=lambda identifier: (
                          -(len(in_adj[identifier]) + 1)
                          * (len(out_adj[identifier]) + 1),
                          split_rank[identifier]))
        lin: List[List[int]] = [[] for _ in order]
        lout: List[List[int]] = [[] for _ in order]
        for rank, hub in enumerate(hubs):
            hub_out = lout[hub]
            # Forward pass: rank lands in Lin of everything the labels
            # cannot already prove reachable from the hub.
            stack = [hub]
            seen = {hub}
            while stack:
                current = stack.pop()
                if current != hub and _intersects(hub_out, lin[current]):
                    continue
                lin[current].append(rank)
                for successor in out_adj[current]:
                    if successor not in seen:
                        seen.add(successor)
                        stack.append(successor)
            hub_in = lin[hub]
            # Backward pass: rank lands in Lout of everything not yet
            # provably reaching the hub.  ``hub_in`` now contains the
            # hub's own rank, which is on no other Lout yet, so the
            # hub itself is never pruned here.
            stack = [hub]
            seen = {hub}
            while stack:
                current = stack.pop()
                if current != hub and _intersects(lout[current], hub_in):
                    continue
                lout[current].append(rank)
                for predecessor in in_adj[current]:
                    if predecessor not in seen:
                        seen.add(predecessor)
                        stack.append(predecessor)
        return cls(order, id_of, lin, lout)

    # ------------------------------------------------------------------
    # membership and introspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._id_of

    def __len__(self) -> int:
        return len(self._node_of)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes."""
        return iter(self._id_of)

    def capabilities(self) -> "EngineCapabilities":
        """An immutable compiled label set — no graph, no updates."""
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="hoplabel", supports_updates=False, supports_batch=False,
            is_frozen_snapshot=True, durable=False)

    def _id(self, node: Node) -> int:
        try:
            return self._id_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        """One sorted-list intersection: ``Lout(u) ∩ Lin(v) ≠ ∅``."""
        if source not in self._id_of:
            raise NodeNotFoundError(source)
        try:
            target = self._id_of[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        return _intersects(self._lout[self._id_of[source]],
                           self._lin[target])

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """Union of the in-clusters of every hub in ``Lout(source)``."""
        identifiers: Set[int] = set()
        for rank in self._lout[self._id(source)]:
            identifiers.update(self._in_clusters[rank])
        node_of = self._node_of
        result = {node_of[identifier] for identifier in identifiers}
        if not reflexive:
            result.discard(source)
        return result

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        """Lazily yield successors, cluster by cluster, deduplicated."""
        seen: Set[int] = set()
        source_id = self._id(source)
        node_of = self._node_of
        for rank in self._lout[source_id]:
            for identifier in self._in_clusters[rank]:
                if identifier in seen:
                    continue
                seen.add(identifier)
                if not reflexive and identifier == source_id:
                    continue
                yield node_of[identifier]

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """Union of the out-clusters of every hub in ``Lin(destination)``."""
        identifiers: Set[int] = set()
        for rank in self._lin[self._id(destination)]:
            identifiers.update(self._out_clusters[rank])
        node_of = self._node_of
        result = {node_of[identifier] for identifier in identifiers}
        if not reflexive:
            result.discard(destination)
        return result

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        """Number of successors; clusters overlap, so ids are deduplicated."""
        identifiers: Set[int] = set()
        for rank in self._lout[self._id(source)]:
            identifiers.update(self._in_clusters[rank])
        return len(identifiers) if reflexive else len(identifiers) - 1

    # ------------------------------------------------------------------
    # batch queries and set semijoins
    # ------------------------------------------------------------------
    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Batch :meth:`reachable` over ``(source, destination)`` pairs."""
        return [self.reachable(source, destination)
                for source, destination in pairs]

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        """One successor set per source, in input order."""
        return [self.successors(source, reflexive=reflexive)
                for source in sources]

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        """One predecessor set per destination, in input order."""
        return [self.predecessors(destination, reflexive=reflexive)
                for destination in destinations]

    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        """Everything reachable from *any* source (reflexive).

        One union of hub ranks, then one union of in-clusters — shared
        hubs between sources are decoded once.
        """
        ranks: Set[int] = set()
        for source in sources:
            ranks.update(self._lout[self._id(source)])
        identifiers: Set[int] = set()
        for rank in ranks:
            identifiers.update(self._in_clusters[rank])
        node_of = self._node_of
        return {node_of[identifier] for identifier in identifiers}

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        """Everything that reaches *any* destination (reflexive)."""
        ranks: Set[int] = set()
        for destination in destinations:
            ranks.update(self._lin[self._id(destination)])
        identifiers: Set[int] = set()
        for rank in ranks:
            identifiers.update(self._out_clusters[rank])
        node_of = self._node_of
        return {node_of[identifier] for identifier in identifiers}

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        """Does any source reach any destination?  Early-exit semijoin.

        The union of the destinations' Lin sets is taken once; each
        source then pays one membership sweep over its Lout list.
        """
        targets: Set[int] = set()
        for destination in destinations:
            targets.update(self._lin[self._id(destination)])
        if not targets:
            return False
        for source in sources:
            if any(rank in targets
                   for rank in self._lout[self._id(source)]):
                return True
        return False

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two nodes share no common descendant (reflexive)."""
        return not (self.successors(first) & self.successors(second))

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Total label entries across both directions."""
        return (sum(len(ranks) for ranks in self._lin)
                + sum(len(ranks) for ranks in self._lout))

    @property
    def storage_units(self) -> int:
        """One hub rank per label entry."""
        return self.num_entries

    def stats(self) -> dict:
        """A small size/shape report for CLI output and benchmarks."""
        nodes = len(self._node_of)
        entries_in = sum(len(ranks) for ranks in self._lin)
        entries_out = sum(len(ranks) for ranks in self._lout)
        largest = max(
            (len(ranks) for ranks in self._lin + self._lout), default=0)
        return {
            "num_nodes": nodes,
            "label_entries_in": entries_in,
            "label_entries_out": entries_out,
            "num_entries": entries_in + entries_out,
            "entries_per_node": ((entries_in + entries_out) / nodes
                                 if nodes else 0.0),
            "max_label": largest,
            "storage_units": self.storage_units,
        }

    def to_labels(self) -> dict:
        """The raw label state, for serialization round-trips."""
        return {
            "nodes": list(self._node_of),
            "lin": [list(ranks) for ranks in self._lin],
            "lout": [list(ranks) for ranks in self._lout],
        }

    @classmethod
    def from_labels(cls, nodes: List[Node], lin: List[List[int]],
                    lout: List[List[int]]) -> "HopLabelIndex":
        """Rehydrate from :meth:`to_labels` output (clusters are rederived)."""
        node_of = list(nodes)
        id_of = {node: identifier for identifier, node in enumerate(node_of)}
        return cls(node_of, id_of,
                   [list(ranks) for ranks in lin],
                   [list(ranks) for ranks in lout])

    def _register_gauges(self, registry, label: str) -> None:
        """Health gauges for :func:`repro.obs.instrument.attach`."""
        import weakref

        from repro.obs.instrument import _gauge
        ref = weakref.ref(self)
        _gauge(registry, "tc_nodes", "indexed nodes", label, ref, len)
        _gauge(registry, "tc_hop_label_entries",
               "total Lin/Lout hub-rank entries", label, ref,
               lambda e: e.num_entries)
        _gauge(registry, "tc_hop_entries_per_node",
               "mean label entries per node", label, ref,
               lambda e: e.num_entries / max(len(e), 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HopLabelIndex(nodes={len(self)}, "
                f"entries={self.num_entries})")
