"""The compressed transitive-closure index — the paper's headline artifact.

:class:`IntervalTCIndex` materialises the transitive closure of a DAG as
per-node interval sets over a postorder numbering of an (optimal) tree
cover.  A reachability query is a binary search in the source node's
interval set; enumerating all successors of a node walks its intervals over
the sorted list of live postorder numbers.

The index is *updatable*: the Section 4 algorithms (implemented in
:mod:`repro.core.updates`) insert and delete nodes and arcs without
recomputing the closure, exploiting gaps left in the numbering.

Typical use::

    from repro import DiGraph, IntervalTCIndex

    g = DiGraph([("a", "b"), ("b", "c"), ("a", "d")])
    index = IntervalTCIndex.build(g)
    index.reachable("a", "c")        # True -- one range comparison
    sorted(index.successors("a"))    # ['a', 'b', 'c', 'd']
    index.add_node("e", parents=["d"])   # incremental, no rebuild
"""

from __future__ import annotations

import random
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core import updates as _updates
from repro.core.intervals import Interval, IntervalSet
from repro.core.labeling import Labeling, assign_postorder, merge_all, propagate_intervals
from repro.core.tree_cover import TreeCover, build_tree_cover
from repro.errors import IndexStateError, NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reachable_from
from repro.obs.instrument import instrumented

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.frozen import FrozenTCIndex

#: Default numbering stride: each node reserves ``DEFAULT_GAP - 1`` spare
#: postorder numbers for future insertions below it (Section 4).
DEFAULT_GAP = 32


@dataclass(frozen=True)
class IndexStats:
    """Size accounting for one index, in the paper's storage units."""

    num_nodes: int
    num_arcs: int
    num_tree_arcs: int
    num_intervals: int
    num_tree_intervals: int
    num_non_tree_intervals: int
    storage_units: int
    policy: str
    gap: int
    merged: bool
    max_intervals_per_node: int = 0
    tree_depth: int = 0
    numbering: str = "integer"
    #: Free postorder numbers below the current maximum (Section 4's
    #: insertion headroom); -1 means unlimited (fractional numbering).
    gap_budget_remaining: int = 0
    #: Full renumbering passes this index has performed.
    renumber_count: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return dict(self.__dict__)


class IntervalTCIndex:
    """Compressed transitive closure with interval labels.

    Build with :meth:`build`; query with :meth:`reachable`,
    :meth:`successors`, :meth:`predecessors`; update with
    :meth:`add_node`, :meth:`add_arc`, :meth:`remove_arc`,
    :meth:`remove_node`.

    The index owns a reference to the graph it was built from and keeps it
    in sync when updated through the index API.  Mutating the graph behind
    the index's back leaves the index stale — rebuild in that case.
    """

    def __init__(self, graph: DiGraph, cover: TreeCover, labeling: Labeling, *,
                 policy: str = "alg1", merged: bool = False,
                 auto_renumber: bool = True,
                 renumber_strategy: str = "global",
                 numbering: str = "integer") -> None:
        if renumber_strategy not in ("global", "local"):
            raise IndexStateError(
                f"renumber_strategy must be 'global' or 'local', "
                f"got {renumber_strategy!r}")
        if numbering not in ("integer", "fractional"):
            raise IndexStateError(
                f"numbering must be 'integer' or 'fractional', got {numbering!r}")
        if numbering == "fractional" and labeling.gap < 2:
            raise IndexStateError(
                "fractional numbering needs gap >= 2 so every tree interval "
                "has positive width to subdivide")
        self.graph = graph
        self.cover = cover
        self.gap = labeling.gap
        self.policy = policy
        self.merged = merged
        self.auto_renumber = auto_renumber
        #: How insertion reacts to running out of numbers: ``"global"``
        #: renumbers the whole tree at a widened stride; ``"local"`` uses
        #: the paper's shift-to-the-first-hole procedure (Section 4.1).
        self.renumber_strategy = renumber_strategy
        #: ``"integer"`` (the paper's main scheme) or ``"fractional"`` —
        #: rational postorder numbers per the Section 4 footnote ("one
        #: could use real numbers"), under which insertion never exhausts.
        self.numbering = numbering
        self.postorder: Dict[Node, int] = labeling.postorder
        self.tree_interval: Dict[Node, Interval] = labeling.tree_interval
        self.intervals: Dict[Node, IntervalSet] = labeling.intervals
        self.node_of_number: Dict[int, Node] = labeling.node_of_number
        #: Sorted list L of postorder numbers currently in use (Section 4).
        self.used_numbers: List[int] = sorted(self.node_of_number)
        #: Monotone update counter; frozen views compare against it to
        #: detect staleness (see :meth:`freeze`).
        self._version = 0
        self._frozen_cache: Optional["FrozenTCIndex"] = None
        #: Optional write-ahead journal sink.  When set, every public
        #: mutation that actually changed the index appends its operation
        #: (``["add_arc", source, destination]``-style lists) via
        #: ``journal.append(op)`` *after* succeeding in memory — see
        #: :class:`repro.durability.wal.WalWriter`.  ``None`` costs one
        #: attribute test per mutation.
        self.journal = None
        #: Observability hooks (see :mod:`repro.obs.instrument`): per-op
        #: metrics instruments and a query tracer, both attached after
        #: construction via :func:`repro.obs.instrument.attach`.  ``None``
        #: costs two attribute reads per instrumented call.
        self._obs = None
        self._tracer = None
        #: Full renumbering passes (:func:`repro.core.updates.renumber`).
        self._renumber_count = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, *, policy: str = "alg1", gap: int = DEFAULT_GAP,
              merge: bool = False, merge_ordering: bool = False,
              auto_renumber: bool = True,
              renumber_strategy: str = "global", numbering: str = "integer",
              propagation: str = "python",
              rng: Union[random.Random, int, None] = None) -> "IntervalTCIndex":
        """Compute the compressed closure of an acyclic ``graph``.

        ``policy`` selects the tree cover (``"alg1"`` is the paper's
        optimum); ``gap`` the numbering stride (1 reproduces the paper's
        figures exactly, larger values leave room for incremental
        insertion); ``merge=True`` applies the optional adjacent-interval
        merging pass, and ``merge_ordering=True`` additionally reorders
        tree siblings by the affinity heuristic so more intervals abut
        (see :mod:`repro.core.merge_ordering` — the paper leaves the
        optimal ordering open as "a combinatorial problem").
        ``propagation`` selects the interval-propagation kernel:
        ``"python"`` (the sequential reference pass), ``"vectorized"``
        (the numpy level kernel — same labeling, much faster on large
        graphs), or ``"parallel"`` (adds a multiprocessing fan-out for
        wide levels); see :mod:`repro.core.propagation`.  Raises
        :class:`repro.errors.CycleError` on cyclic input — wrap cyclic
        graphs with :class:`repro.core.condensation.CondensedIndex`
        instead.
        """
        from repro.core.propagation import run_propagation
        cover = build_tree_cover(graph, policy, rng=rng)
        if merge_ordering:
            from repro.core.merge_ordering import order_children_for_merging
            order_children_for_merging(graph, cover)
        labeling = assign_postorder(cover, gap)
        run_propagation(graph, cover, labeling, propagation)
        if merge:
            merge_all(labeling)
        return cls(graph, cover, labeling, policy=policy, merged=merge,
                   auto_renumber=auto_renumber,
                   renumber_strategy=renumber_strategy, numbering=numbering)

    @classmethod
    def from_arcs(cls, arcs: Iterable[tuple], **kwargs) -> "IntervalTCIndex":
        """Build directly from an iterable of ``(source, destination)`` pairs."""
        return cls.build(DiGraph(arcs), **kwargs)

    # ------------------------------------------------------------------
    # the frozen query engine
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Update counter: bumped by every mutation, read by frozen views."""
        return self._version

    @property
    def epoch(self) -> int:
        """Alias of :attr:`version` in snapshot terms.

        Every mutation advances the epoch by one; a frozen view captures
        the epoch at compile time, so ``frozen.lag()`` measures how far the
        source has moved on.  The delta-overlay engine
        (:class:`~repro.core.hybrid.HybridTCIndex`) relies on this to
        detect out-of-band mutations behind its back.
        """
        return self._version

    def _invalidate(self) -> None:
        """Record a mutation: advances the epoch, staling frozen views."""
        self._version += 1
        self._frozen_cache = None

    def _journal_op(self, op: list) -> None:
        if self.journal is not None:
            self.journal.append(op)

    def freeze(self, *, backend: Optional[str] = None,
               force: bool = False) -> "FrozenTCIndex":
        """Compile this index into a :class:`~repro.core.frozen.FrozenTCIndex`.

        The flat-array engine answers the same queries faster (and adds
        batch forms) but is a read-only snapshot: any update through this
        index stales it, after which its queries raise
        :class:`~repro.errors.IndexStateError` — update, then call
        :meth:`freeze` again.  The compiled view is cached while fresh, so
        repeated calls between updates are free.  ``backend`` picks the
        buffer implementation (``"numpy"`` or ``"array"``; default: numpy
        when installed); ``force=True`` recompiles even when fresh.
        """
        from repro.core.frozen import FrozenTCIndex
        cached = self._frozen_cache
        if (not force and cached is not None and not cached.is_stale()
                and (backend is None or cached.backend == backend)):
            return cached
        frozen = FrozenTCIndex.from_index(self, backend=backend)
        self._frozen_cache = frozen
        return frozen

    def frozen_view(self) -> Optional["FrozenTCIndex"]:
        """The cached frozen view if one exists and is fresh, else ``None``.

        Query helpers use this to route through the fast engine without
        triggering a compile behind the caller's back.
        """
        cached = self._frozen_cache
        if cached is not None and not cached.is_stale():
            return cached
        return None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self.postorder

    def __len__(self) -> int:
        return len(self.postorder)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes."""
        return iter(self.postorder)

    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        """Whether a directed path ``source ->* destination`` exists.

        Reflexive (paper Section 3.1): every node reaches itself.  This is
        the "single range comparison" query of Lemma 1 — O(log k) in the
        number of intervals at ``source``.
        """
        if source not in self.postorder:
            raise NodeNotFoundError(source)
        try:
            number = self.postorder[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        covered = self.intervals[source].covers(number)
        tracer = self._tracer
        if tracer is not None and tracer.current() is not None:
            # Lemma 1 explanation: the destination's number is inside the
            # source's own subtree interval (a tree hit), inside an
            # interval propagated from a non-tree arc, or nowhere.
            if not covered:
                kind = "miss"
            else:
                tree = self.tree_interval[source]
                kind = ("tree-interval" if tree.lo <= number <= tree.hi
                        else "propagated-interval")
            tracer.annotate("hit", kind)
        return covered

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """The full successor list of ``source``, decoded from its intervals.

        Walks each interval over the sorted live-number list, so the cost
        is O(answer + k log n) rather than a graph traversal.
        """
        if source not in self.postorder:
            raise NodeNotFoundError(source)
        result: Set[Node] = set()
        numbers = self.used_numbers
        for lo, hi in self.intervals[source]:
            start = bisect_left(numbers, lo)
            stop = bisect_right(numbers, hi)
            for position in range(start, stop):
                result.add(self.node_of_number[numbers[position]])
        if not reflexive:
            result.discard(source)
        return result

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        """Lazily yield the successors of ``source`` in postorder-number order.

        Duplicate-free even when intervals overlap (merged indexes), and
        O(1) memory beyond the iterator — use for early-exit scans over
        potentially huge successor sets.
        """
        if source not in self.postorder:
            raise NodeNotFoundError(source)
        numbers = self.used_numbers
        previous_hi: Optional[int] = None
        for lo, hi in self.intervals[source]:
            if previous_hi is not None and lo <= previous_hi:
                lo = previous_hi + 1
            if lo > hi:
                previous_hi = max(previous_hi, hi) if previous_hi is not None else hi
                continue
            start = bisect_left(numbers, lo)
            stop = bisect_right(numbers, hi)
            for position in range(start, stop):
                node = self.node_of_number[numbers[position]]
                if not reflexive and node == source:
                    continue
                yield node
            previous_hi = hi if previous_hi is None else max(previous_hi, hi)

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """Every node that can reach ``destination``.

        The paper stores successor intervals only; predecessor queries scan
        all nodes (O(n log k)).  Build a second index on the reversed graph
        when predecessor queries dominate.
        """
        if destination not in self.postorder:
            raise NodeNotFoundError(destination)
        number = self.postorder[destination]
        result = {node for node, interval_set in self.intervals.items()
                  if interval_set.covers(number)}
        if not reflexive:
            result.discard(destination)
        return result

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        """Number of successors without materialising the set."""
        if source not in self.postorder:
            raise NodeNotFoundError(source)
        numbers = self.used_numbers
        seen = 0
        previous_hi: Optional[int] = None
        for lo, hi in self.intervals[source]:
            if previous_hi is not None:
                lo = max(lo, previous_hi + 1)
            if lo <= hi:
                seen += bisect_right(numbers, hi) - bisect_left(numbers, lo)
            previous_hi = hi if previous_hi is None else max(previous_hi, hi)
        return seen if reflexive else seen - 1

    # ------------------------------------------------------------------
    # batch queries and set semijoins (the shared TCEngine surface; the
    # frozen/hybrid engines override these with vectorised fast paths,
    # here they are the straightforward single-op loops)
    # ------------------------------------------------------------------
    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Batch :meth:`reachable` over ``(source, destination)`` pairs."""
        return [self.reachable(source, destination)
                for source, destination in pairs]

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        """One successor set per source, in input order."""
        return [self.successors(source, reflexive=reflexive)
                for source in sources]

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        """One predecessor set per destination, in input order."""
        return [self.predecessors(destination, reflexive=reflexive)
                for destination in destinations]

    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        """Everything reachable from *any* source (reflexive)."""
        result: Set[Node] = set()
        for source in sources:
            result |= self.successors(source)
        return result

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        """Everything that reaches *any* destination (reflexive).

        Target numbers are sorted once; each node then pays one
        early-exit bisect pass over its own intervals.
        """
        targets = sorted({self._number_of(destination)
                          for destination in destinations})
        if not targets:
            return set()
        result: Set[Node] = set()
        for node, interval_set in self.intervals.items():
            if self._covers_any(interval_set, targets):
                result.add(node)
        return result

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        """Does any source reach any destination?  Early-exit semijoin."""
        targets = sorted({self._number_of(destination)
                          for destination in destinations})
        if not targets:
            return False
        for source in sources:
            if source not in self.postorder:
                raise NodeNotFoundError(source)
            if self._covers_any(self.intervals[source], targets):
                return True
        return False

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two nodes share no common descendant (reflexive)."""
        return not (self.successors(first) & self.successors(second))

    def _number_of(self, node: Node) -> int:
        try:
            return self.postorder[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    @staticmethod
    def _covers_any(interval_set: IntervalSet,
                    targets: Sequence[int]) -> bool:
        """Whether any of the sorted ``targets`` lies inside the set."""
        for lo, hi in interval_set:
            position = bisect_left(targets, lo)
            if position < len(targets) and targets[position] <= hi:
                return True
        return False

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        """Total intervals across all nodes (the Theorem 1 objective)."""
        return sum(len(interval_set) for interval_set in self.intervals.values())

    @property
    def storage_units(self) -> int:
        """Paper accounting: two end-points per interval (Section 3.3)."""
        return 2 * self.num_intervals

    @property
    def gap_budget_remaining(self) -> int:
        """Free postorder numbers below the current maximum.

        The Section 4 insertion headroom: how many more nodes fit before
        a gap exhaustion can force :meth:`renumber`.  ``-1`` means
        unlimited (fractional numbering never runs out).
        """
        if self.numbering == "fractional":
            return -1
        if not self.used_numbers:
            return 0
        return int(self.used_numbers[-1]) - len(self.used_numbers)

    @property
    def renumber_count(self) -> int:
        """Full renumbering passes this index has performed."""
        return self._renumber_count

    def capabilities(self) -> "EngineCapabilities":
        """Updatable, loop-based batches, graph-carrying, in-memory."""
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="interval", supports_updates=True, supports_batch=False,
            is_frozen_snapshot=False, durable=False)

    def stats(self) -> IndexStats:
        """A full size report."""
        total = self.num_intervals
        tree = len(self.postorder)
        return IndexStats(
            num_nodes=self.graph.num_nodes,
            num_arcs=self.graph.num_arcs,
            num_tree_arcs=sum(1 for _ in self.cover.tree_arcs()),
            num_intervals=total,
            num_tree_intervals=tree,
            num_non_tree_intervals=total - tree,
            storage_units=2 * total,
            policy=self.policy,
            gap=self.gap,
            merged=self.merged,
            max_intervals_per_node=max(
                (len(interval_set) for interval_set in self.intervals.values()),
                default=0),
            tree_depth=self._tree_depth(),
            numbering=self.numbering,
            gap_budget_remaining=self.gap_budget_remaining,
            renumber_count=self._renumber_count,
        )

    def _tree_depth(self) -> int:
        """Deepest node of the spanning forest (virtual root at 0)."""
        from repro.core.tree_cover import VIRTUAL_ROOT
        depth = 0
        frontier = [(child, 1) for child in self.cover.tree_children(VIRTUAL_ROOT)]
        while frontier:
            node, level = frontier.pop()
            depth = max(depth, level)
            frontier.extend((child, level + 1)
                            for child in self.cover.tree_children(node))
        return depth

    # ------------------------------------------------------------------
    # incremental updates (Section 4) — implemented in repro.core.updates
    # ------------------------------------------------------------------
    @instrumented("add_node")
    def add_node(self, node: Node, parents: Sequence[Node] = ()) -> None:
        """Insert a new node with arcs from each of ``parents``.

        The first parent supplies the tree arc (O(1) thanks to numbering
        gaps); the rest become non-tree arcs with subsumption-cut-off
        propagation.  With no parents the node hangs off the virtual root.
        """
        _updates.add_node(self, node, parents)
        self._journal_op(["add_node", node, list(parents)])

    @instrumented("add_arc")
    def add_arc(self, source: Node, destination: Node) -> None:
        """Insert an arc between two existing nodes (non-tree arc addition)."""
        before = self._version
        _updates.add_non_tree_arc(self, source, destination)
        if self._version != before:
            self._journal_op(["add_arc", source, destination])

    @instrumented("remove_arc")
    def remove_arc(self, source: Node, destination: Node) -> None:
        """Delete an arc; dispatches to the tree/non-tree procedures of §4.2."""
        before = self._version
        if self.cover.is_tree_arc(source, destination):
            _updates.delete_tree_arc(self, source, destination)
        else:
            _updates.delete_non_tree_arc(self, source, destination)
        if self._version != before:
            self._journal_op(["remove_arc", source, destination])

    @instrumented("remove_node")
    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident arcs."""
        before = self._version
        _updates.remove_node(self, node)
        if self._version != before:
            self._journal_op(["remove_node", node])

    def merge_intervals(self) -> None:
        """Apply Section 3.2's optional adjacent-interval coalescing.

        Replaces every node's interval set with its merged form and marks
        the index so later recomputations keep merging.  A mutation for
        staleness purposes: merged labels are a different representation,
        so frozen views must not survive it.
        """
        self._invalidate()
        for node, interval_set in list(self.intervals.items()):
            self.intervals[node] = interval_set.merged()
        self.merged = True
        self._journal_op(["merge"])

    def renumber(self, gap: Optional[int] = None) -> None:
        """Re-assign postorder numbers over the current tree cover.

        Used when insertion gaps are exhausted (automatically if
        ``auto_renumber``), and available to callers who want to restore
        headroom after heavy update traffic.  Keeps the tree cover, so it
        is much cheaper than :meth:`rebuild`, but does not restore Alg1
        optimality lost to updates.
        """
        _updates.renumber(self, gap)
        self._journal_op(["renumber", self.gap])

    def rebuild(self, *, policy: Optional[str] = None,
                gap: Optional[int] = None) -> "IntervalTCIndex":
        """A fresh optimal index over the current graph.

        The paper (end of Section 4) notes that incremental updates do not
        preserve tree-cover optimality and suggests rebuilding "after
        sufficient update activity".
        """
        return IntervalTCIndex.build(
            self.graph,
            policy=policy if policy is not None else self.policy,
            gap=gap if gap is not None else self.gap,
            merge=self.merged,
            auto_renumber=self.auto_renumber,
            renumber_strategy=self.renumber_strategy,
            numbering=self.numbering,
        )

    def make_room(self, parent: Node) -> None:
        """Open one free postorder number under ``parent`` (local shift).

        The paper's Section 4.1 renumbering: used numbers between the
        parent and the first hole shift up by one, interval end-points
        shift with them, and exactly one insertion slot appears under the
        parent.  Called automatically when ``renumber_strategy`` is
        ``"local"``.
        """
        if parent not in self.postorder:
            raise NodeNotFoundError(parent)
        _updates.make_room(self, parent)

    # ------------------------------------------------------------------
    # verification (used extensively by the test suite)
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Cross-check the index against pointer-chasing ground truth.

        O(n * closure) — meant for tests and post-update assertions, not
        production queries.  Raises :class:`IndexStateError` on the first
        discrepancy.
        """
        for source in self.graph:
            truth = reachable_from(self.graph, source)
            answer = self.successors(source)
            if truth != answer:
                missing = truth - answer
                extra = answer - truth
                raise IndexStateError(
                    f"closure mismatch at {source!r}: missing={sorted(map(repr, missing))} "
                    f"extra={sorted(map(repr, extra))}"
                )

    def check_invariants(self) -> None:
        """Validate structural invariants (interval sets, numbering maps)."""
        if set(self.postorder) != set(self.graph.nodes()):
            raise IndexStateError("postorder map does not cover the graph's nodes")
        if sorted(self.node_of_number) != self.used_numbers:
            raise IndexStateError("used_numbers is out of sync with node_of_number")
        if len(self.node_of_number) != len(self.postorder):
            raise IndexStateError("postorder numbers are not unique")
        for node, interval_set in self.intervals.items():
            interval_set.check_invariants()
            if not interval_set.covers(self.postorder[node]):
                raise IndexStateError(f"node {node!r} does not cover its own number")
        self.cover.check_spanning(self.graph)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"IntervalTCIndex(nodes={len(self.postorder)}, "
                f"intervals={self.num_intervals}, policy={self.policy!r}, gap={self.gap})")
