"""Heuristic child ordering to boost adjacent-interval merging.

Section 3.2: "Finding an optimum ordering of node numbers to maximize the
benefits of interval merging appears to be a combinatorial problem.  We
have omitted the merging of the intervals in Alg1 ..." — the paper leaves
the ordering question open (Figure 3.8 shows two orderings of the same
tree with different merge outcomes).

This module implements a greedy *affinity* heuristic for it.  Two tree
siblings whose subtrees are entered by the same non-tree predecessor
produce two intervals at that predecessor; if the siblings are numbered
consecutively the intervals abut and merge into one.  So, for every
parent, order the children as a chain that maximises shared-non-tree-
predecessor affinity between neighbours:

1. for each child, collect the sources of non-tree arcs into its subtree;
2. greedily build the chain, always appending the unplaced child with the
   largest predecessor overlap with the chain's current tail (ties break
   by topological index, keeping the result deterministic).

The heuristic only permutes sibling order — any DFS order yields a
correct labeling — so it composes freely with Alg1's (order-independent)
optimal cover, and it can only *help* the subsequent merging pass.
Measured gains live in ``benchmarks/bench_merging.py``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.core.tree_cover import VIRTUAL_ROOT, TreeCover
from repro.graph.digraph import DiGraph, Node


def subtree_external_predecessors(graph: DiGraph,
                                  cover: TreeCover) -> Dict[Node, FrozenSet[Node]]:
    """For every node: sources of non-tree arcs entering its tree subtree.

    Computed bottom-up over the spanning tree: a node's set is its own
    non-tree predecessors plus the union over its tree children, minus
    nodes inside the subtree itself (an arc from inside is not "external").
    """
    # Process in reverse numbering order of the tree (children first):
    # iterate nodes so parents come after children via an explicit
    # post-order walk of the cover.
    result: Dict[Node, Set[Node]] = {}
    members: Dict[Node, Set[Node]] = {}
    stack: List[tuple] = [(child, False) for child
                          in cover.tree_children(VIRTUAL_ROOT)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            for child in cover.tree_children(node):
                stack.append((child, False))
            continue
        inside: Set[Node] = {node}
        external: Set[Node] = set()
        for child in cover.tree_children(node):
            inside |= members[child]
            external |= result[child]
        tree_parent = cover.parent.get(node)
        for predecessor in graph.predecessors(node):
            if predecessor != tree_parent:
                external.add(predecessor)
        external -= inside
        members[node] = inside
        result[node] = external
    return {node: frozenset(external) for node, external in result.items()}


def order_children_for_merging(graph: DiGraph, cover: TreeCover) -> int:
    """Reorder every child list by the affinity heuristic (in place).

    Returns the number of parents whose child order changed.  Call before
    :func:`repro.core.labeling.assign_postorder`; the cover's child lists
    are what the numbering walks.
    """
    external = subtree_external_predecessors(graph, cover)
    index_of = {node: position for position, node in enumerate(cover.order)}
    changed = 0
    for parent in list(cover.children):
        children = cover.children.get(parent, [])
        if len(children) < 2:
            continue
        ordered = _affinity_chain(children, external, index_of)
        if ordered != children:
            cover.children[parent] = ordered
            changed += 1
    return changed


def _affinity_chain(children: List[Node],
                    external: Dict[Node, FrozenSet[Node]],
                    index_of: Dict[Node, int]) -> List[Node]:
    """Greedy maximum-affinity chain over one sibling group."""
    remaining = sorted(children, key=index_of.__getitem__)
    # Seed with the child that has the largest total affinity mass so the
    # chain grows from the densest cluster (deterministic tie-break).
    def total_affinity(child: Node) -> int:
        return sum(len(external[child] & external[other])
                   for other in remaining if other is not child)

    seed = max(remaining, key=lambda child: (total_affinity(child),
                                             -index_of[child]))
    chain = [seed]
    remaining.remove(seed)
    while remaining:
        tail = chain[-1]
        best = max(remaining,
                   key=lambda child: (len(external[tail] & external[child]),
                                      -index_of[child]))
        chain.append(best)
        remaining.remove(best)
    return chain


def build_merge_ordered_labeling(graph: DiGraph, cover: TreeCover, gap: int = 1):
    """Convenience: apply the heuristic, then label with merging enabled."""
    from repro.core.labeling import label_graph

    order_children_for_merging(graph, cover)
    return label_graph(graph, cover, gap, merge=True)
