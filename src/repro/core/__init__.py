"""The paper's contribution: interval-compressed transitive closure."""

from repro.core.bidirectional import BidirectionalTCIndex
from repro.core.chain_cover import ChainCoverIndex
from repro.core.condensation import CondensedIndex
from repro.core.engine import EngineCapabilities, TCEngine
from repro.core.frozen import FrozenTCIndex
from repro.core.hoplabel import HopLabelIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import DEFAULT_GAP, IndexStats, IntervalTCIndex
from repro.core.select import GraphStats, graph_stats, recommend_engine
from repro.core.serialize import (
    chain_from_dict,
    chain_to_dict,
    frozen_from_dict,
    frozen_to_dict,
    hoplabel_from_dict,
    hoplabel_to_dict,
    hybrid_from_dict,
    hybrid_to_dict,
    index_from_dict,
    index_to_dict,
    save_chain_index,
    save_frozen_index,
    save_hoplabel_index,
    save_hybrid_index,
    save_index,
)
from repro.core.intervals import Interval, IntervalSet, intervals_from_points
from repro.core.labeling import (
    Labeling,
    assign_postorder,
    check_laminar,
    label_graph,
    merge_all,
    propagate_intervals,
)
from repro.core.tree_cover import (
    POLICIES,
    VIRTUAL_ROOT,
    TreeCover,
    all_tree_covers,
    build_tree_cover,
)

__all__ = [
    "BidirectionalTCIndex",
    "ChainCoverIndex",
    "CondensedIndex",
    "DEFAULT_GAP",
    "EngineCapabilities",
    "FrozenTCIndex",
    "GraphStats",
    "HopLabelIndex",
    "HybridTCIndex",
    "IndexStats",
    "Interval",
    "IntervalSet",
    "IntervalTCIndex",
    "Labeling",
    "POLICIES",
    "TCEngine",
    "TreeCover",
    "VIRTUAL_ROOT",
    "all_tree_covers",
    "assign_postorder",
    "build_tree_cover",
    "chain_from_dict",
    "chain_to_dict",
    "check_laminar",
    "frozen_from_dict",
    "frozen_to_dict",
    "graph_stats",
    "hoplabel_from_dict",
    "hoplabel_to_dict",
    "hybrid_from_dict",
    "hybrid_to_dict",
    "index_from_dict",
    "index_to_dict",
    "intervals_from_points",
    "label_graph",
    "merge_all",
    "propagate_intervals",
    "recommend_engine",
    "save_chain_index",
    "save_frozen_index",
    "save_hoplabel_index",
    "save_hybrid_index",
    "save_index",
]
