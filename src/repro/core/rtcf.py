"""RTCF — the binary zero-copy container for frozen closure buffers.

JSON frozen documents (:func:`repro.core.serialize.save_frozen_index`)
re-parse the whole index at every cold start: O(index) text decoding
plus an O(m log m) re-sort of the reverse interval index.  At a million
nodes that is seconds of startup before the first query — and every
server process pays it again, each holding a private copy of the
buffers.

RTCF ("Reachability Transitive Closure, Frozen") persists the
*materialised* query engine instead: every array a
:class:`~repro.core.frozen.FrozenTCIndex` consults at query time — the
CSR offsets, the ``lo``/``hi`` rank runs, the row-keyed ``lo`` buffer,
the full reverse interval index, and the label lookup table — is stored
as a little-endian section that ``numpy.frombuffer`` can adopt straight
out of an ``mmap``.  Loading is O(1) page mapping: no parsing, no
sorting, no per-element conversion; the OS pages the index in on first
touch, and N processes opening the same file share one physical copy of
the pages (the deployment shape a fleet serving millions of users
needs).  The layout-compaction idea follows Munro & Nicholson's succinct
posets: ship the derived structures once, flat, instead of rebuilding
them per process.

File layout (all little-endian)::

    header         magic 'RTCF', format version, flags, node count,
                   interval count, source epoch, section count, CRC-32
                   of the header + section table
    section table  one 32-byte entry per section: section id, dtype
                   code, byte offset, byte length, CRC-32 of the payload
    sections       64-byte-aligned payloads, zero-padded between

Sections (ids in :data:`SECTION_NAMES`): node labels (an ``int64``
array when every label is a non-negative int, else a compact JSON
blob), postorder numbers, CSR offsets, interval lows/highs, the
row-keyed lows, the reverse interval index (lo, hi, owner, prefix-max
hi), and the optional label->rank lookup table.

Integrity comes in two tiers.  Structural validation — magic, version,
header checksum, every section in bounds and size-consistent — is
always performed at open and costs a few hundred bytes of reads, so a
truncated file is diagnosed without faulting in the payload.  Full
payload CRC verification (``verify=True``, or :func:`verify_rtcf`)
reads every page and is what ``repro convert`` and the corruption tests
use; the mmap fast path skips it by default because checksumming the
whole file would defeat the zero-copy cold start.

Writes are deterministic — same buffers, same bytes — so
``save -> load -> save`` is bit-stable, which the tests assert.

Fractional numbering stores rational postorder numbers; RTCF sections
are fixed-width integers, so those indexes must keep using the JSON
format (the writer raises a typed error).

Typical use::

    from repro.core.rtcf import save_rtcf, load_rtcf

    save_rtcf(index.freeze(), "closure.rtcf")
    frozen = load_rtcf("closure.rtcf")       # O(1): mmap + frombuffer
    frozen.reachable_many(pairs)             # straight off the mapped pages
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import sys
import zlib
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.frozen import FrozenTCIndex, _numpy, _resolve_backend
from repro.durability.atomic import RealFS, atomic_write_bytes
from repro.errors import CorruptFileError, NodeNotFoundError, ReproError
from repro.graph.digraph import Node

PathLike = Union[str, Path]

MAGIC = b"RTCF"
FORMAT_VERSION = 1

#: Sections start on 64-byte boundaries: cache-line friendly, and any
#: future dtype is aligned no matter where the previous section ended.
ALIGNMENT = 64

# header: magic, version, flags, num_nodes, num_intervals, epoch,
# section_count, header_crc (CRC-32 of header+table with this field 0)
_HEADER = struct.Struct("<4sHHQQQII")
# section entry: section id, dtype code, offset, byte length, crc, pad
_SECTION = struct.Struct("<IIQQI4x")

FLAG_INT_LABELS = 0x1   # LABELS holds an int64 array, not a JSON blob
FLAG_HAS_LUT = 0x2      # the label->rank lookup table is present

DTYPE_BLOB = 0          # raw bytes (UTF-8 JSON for the label section)
DTYPE_INT32 = 1
DTYPE_INT64 = 2
_DTYPE_SIZES = {DTYPE_INT32: 4, DTYPE_INT64: 8}
_DTYPE_CODES = {DTYPE_INT32: "i", DTYPE_INT64: "q"}

SEC_LABELS = 1
SEC_NUMBERS = 2
SEC_OFFSETS = 3
SEC_LOWS = 4
SEC_HIGHS = 5
SEC_LOKEYED = 6
SEC_REVLO = 7
SEC_REVHI = 8
SEC_REVOWNER = 9
SEC_REVMAXHI = 10
SEC_LUT = 11

SECTION_NAMES = {
    SEC_LABELS: "labels",
    SEC_NUMBERS: "numbers",
    SEC_OFFSETS: "offsets",
    SEC_LOWS: "lows",
    SEC_HIGHS: "highs",
    SEC_LOKEYED: "lo_keyed",
    SEC_REVLO: "rev_lo",
    SEC_REVHI: "rev_hi",
    SEC_REVOWNER: "rev_owner",
    SEC_REVMAXHI: "rev_maxhi",
    SEC_LUT: "lut",
}

#: Sections every RTCF file must carry (LUT is optional).
_REQUIRED = (SEC_LABELS, SEC_NUMBERS, SEC_OFFSETS, SEC_LOWS, SEC_HIGHS,
             SEC_LOKEYED, SEC_REVLO, SEC_REVHI, SEC_REVOWNER, SEC_REVMAXHI)

#: Upper bound on the label value the lookup table is worth building
#: for — must match :meth:`FrozenTCIndex._build_lut` so a file written
#: from any backend materialises the same view a live freeze would.
_LUT_FLOOR = 65536


def sniff_rtcf(path: PathLike) -> bool:
    """Whether ``path`` exists and starts with the RTCF magic."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except (OSError, ValueError):
        return False


# ----------------------------------------------------------------------
# writing
# ----------------------------------------------------------------------
def _interval_dtype_code(num_nodes: int) -> int:
    """Mirror of the frozen engine's dtype choice: rank-space keys fit
    int32 only while ``n * n`` does, because ``lo_keyed`` holds
    ``row * n + lo``."""
    return DTYPE_INT32 if num_nodes * num_nodes <= 2**31 - 1 else DTYPE_INT64

def _int_labels(nodes: Sequence) -> bool:
    """Whether every label is a plain non-negative int (bool excluded)."""
    return all(type(node) is int and 0 <= node < 2**63 for node in nodes)


def _pack_ints(values, code: int) -> bytes:
    """Little-endian packing of an int sequence without numpy."""
    from array import array
    typecode = _DTYPE_CODES[code]
    packed = array(typecode, values)
    if packed.itemsize != _DTYPE_SIZES[code]:  # pragma: no cover - exotic ABI
        fmt = "<%d%s" % (len(values), "i" if code == DTYPE_INT32 else "q")
        return struct.pack(fmt, *values)
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        packed.byteswap()
    return packed.tobytes()


def _derive_sections_numpy(nodes, numbers, offsets, lows, highs, np):
    """All section payloads, derived exactly as the frozen engine would."""
    n = len(nodes)
    code = _interval_dtype_code(n)
    dtype = np.int32 if code == DTYPE_INT32 else np.int64
    off = np.ascontiguousarray(np.asarray(offsets, dtype=np.int64))
    lo = np.ascontiguousarray(np.asarray(lows, dtype=dtype))
    hi = np.ascontiguousarray(np.asarray(highs, dtype=dtype))
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(off))
    lo_keyed = (row_of * n + lo).astype(dtype)
    order = np.argsort(lo, kind="stable")
    rev_lo = np.ascontiguousarray(lo[order])
    rev_hi = np.ascontiguousarray(hi[order])
    rev_owner = np.ascontiguousarray(row_of[order].astype(dtype))
    rev_maxhi = (np.maximum.accumulate(rev_hi) if len(order) else rev_hi)

    sections = [
        (SEC_NUMBERS, DTYPE_INT64,
         np.asarray(numbers, dtype=np.int64).tobytes()),
        (SEC_OFFSETS, DTYPE_INT64, off.tobytes()),
        (SEC_LOWS, code, lo.tobytes()),
        (SEC_HIGHS, code, hi.tobytes()),
        (SEC_LOKEYED, code, lo_keyed.tobytes()),
        (SEC_REVLO, code, rev_lo.tobytes()),
        (SEC_REVHI, code, rev_hi.tobytes()),
        (SEC_REVOWNER, code, rev_owner.tobytes()),
        (SEC_REVMAXHI, code, np.ascontiguousarray(rev_maxhi).tobytes()),
    ]

    flags = 0
    if _int_labels(nodes):
        flags |= FLAG_INT_LABELS
        labels = np.asarray(nodes, dtype=np.int64)
        sections.insert(0, (SEC_LABELS, DTYPE_INT64, labels.tobytes()))
        top = int(labels.max()) if n else 0
        if n and top <= max(_LUT_FLOOR, 4 * n):
            flags |= FLAG_HAS_LUT
            table = np.full(top + 1, -1, dtype=np.int64)
            table[labels] = np.arange(n, dtype=np.int64)
            sections.append((SEC_LUT, DTYPE_INT64, table.tobytes()))
    else:
        blob = json.dumps(list(nodes), separators=(",", ":")).encode("utf-8")
        sections.insert(0, (SEC_LABELS, DTYPE_BLOB, blob))
    return sections, flags


def _derive_sections_stdlib(nodes, numbers, offsets, lows, highs):
    """Pure-stdlib twin of :func:`_derive_sections_numpy` (same bytes)."""
    n = len(nodes)
    code = _interval_dtype_code(n)
    off = [int(value) for value in offsets]
    lo = [int(value) for value in lows]
    hi = [int(value) for value in highs]
    row_of: List[int] = []
    for rank in range(n):
        row_of.extend([rank] * (off[rank + 1] - off[rank]))
    lo_keyed = [row_of[i] * n + lo[i] for i in range(len(lo))]
    order = sorted(range(len(lo)), key=lo.__getitem__)
    rev_lo = [lo[i] for i in order]
    rev_hi = [hi[i] for i in order]
    rev_owner = [row_of[i] for i in order]
    rev_maxhi: List[int] = []
    top = -1
    for value in rev_hi:
        top = value if value > top else top
        rev_maxhi.append(top)

    sections = [
        (SEC_NUMBERS, DTYPE_INT64, _pack_ints(
            [int(number) for number in numbers], DTYPE_INT64)),
        (SEC_OFFSETS, DTYPE_INT64, _pack_ints(off, DTYPE_INT64)),
        (SEC_LOWS, code, _pack_ints(lo, code)),
        (SEC_HIGHS, code, _pack_ints(hi, code)),
        (SEC_LOKEYED, code, _pack_ints(lo_keyed, code)),
        (SEC_REVLO, code, _pack_ints(rev_lo, code)),
        (SEC_REVHI, code, _pack_ints(rev_hi, code)),
        (SEC_REVOWNER, code, _pack_ints(rev_owner, code)),
        (SEC_REVMAXHI, code, _pack_ints(rev_maxhi, code)),
    ]

    flags = 0
    if _int_labels(nodes):
        flags |= FLAG_INT_LABELS
        sections.insert(0, (SEC_LABELS, DTYPE_INT64,
                            _pack_ints(list(nodes), DTYPE_INT64)))
        top_label = max(nodes) if n else 0
        if n and top_label <= max(_LUT_FLOOR, 4 * n):
            flags |= FLAG_HAS_LUT
            table = [-1] * (top_label + 1)
            for rank, label in enumerate(nodes):
                table[label] = rank
            sections.append((SEC_LUT, DTYPE_INT64,
                             _pack_ints(table, DTYPE_INT64)))
    else:
        blob = json.dumps(list(nodes), separators=(",", ":")).encode("utf-8")
        sections.insert(0, (SEC_LABELS, DTYPE_BLOB, blob))
    return sections, flags


def rtcf_bytes(frozen: FrozenTCIndex) -> bytes:
    """Serialise a frozen engine into one deterministic RTCF byte string.

    Works from either buffer backend; the derived sections (keyed lows,
    reverse index, lookup table) are recomputed with the exact recipe
    ``FrozenTCIndex`` uses at freeze time, so a numpy- and an
    array-backed view of the same index produce identical files.
    """
    buffers = frozen.to_buffers()
    nodes = buffers["nodes"]
    numbers = buffers["numbers"]
    for number in numbers:
        if type(number) is not int and not hasattr(number, "__index__"):
            raise ReproError(
                "RTCF stores fixed-width integer postorder numbers; "
                "serialise fractional-numbered indexes with the JSON "
                "format instead (save_frozen_index(..., format='json'))")
    np = _numpy()
    if np is not None:
        sections, flags = _derive_sections_numpy(
            nodes, numbers, buffers["offsets"], buffers["lows"],
            buffers["highs"], np)
    else:
        sections, flags = _derive_sections_stdlib(
            nodes, numbers, buffers["offsets"], buffers["lows"],
            buffers["highs"])
    return _assemble(sections, flags, num_nodes=len(nodes),
                     num_intervals=len(buffers["lows"]),
                     epoch=buffers.get("epoch", 0))


def _assemble(sections, flags: int, *, num_nodes: int, num_intervals: int,
              epoch: int) -> bytes:
    table_offset = _HEADER.size
    payload_start = table_offset + len(sections) * _SECTION.size
    payload_start += (-payload_start) % ALIGNMENT

    entries = []
    body = io.BytesIO()
    cursor = payload_start
    for section_id, dtype_code, blob in sections:
        padding = (-cursor) % ALIGNMENT
        body.write(b"\0" * padding)
        cursor += padding
        entries.append(_SECTION.pack(section_id, dtype_code, cursor,
                                     len(blob), zlib.crc32(blob)))
        body.write(blob)
        cursor += len(blob)

    table = b"".join(entries)
    header_zero_crc = _HEADER.pack(MAGIC, FORMAT_VERSION, flags, num_nodes,
                                   num_intervals, epoch, len(sections), 0)
    header_crc = zlib.crc32(header_zero_crc + table)
    header = _HEADER.pack(MAGIC, FORMAT_VERSION, flags, num_nodes,
                          num_intervals, epoch, len(sections), header_crc)
    lead_padding = b"\0" * ((-len(header) - len(table)) % ALIGNMENT)
    return header + table + lead_padding + body.getvalue()


def save_rtcf(frozen: FrozenTCIndex, path: PathLike, *,
              fs: Optional[RealFS] = None) -> int:
    """Write ``frozen`` to ``path`` atomically; returns bytes written."""
    blob = rtcf_bytes(frozen)
    atomic_write_bytes(path, blob, fs=fs, label="rtcf")
    return len(blob)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------
class _ParsedHeader:
    __slots__ = ("flags", "num_nodes", "num_intervals", "epoch", "sections")

    def __init__(self, flags, num_nodes, num_intervals, epoch, sections):
        self.flags = flags
        self.num_nodes = num_nodes
        self.num_intervals = num_intervals
        self.epoch = epoch
        #: section id -> (dtype code, offset, nbytes, crc)
        self.sections: Dict[int, Tuple[int, int, int, int]] = sections


def _parse_header(path: PathLike, handle) -> _ParsedHeader:
    """Structural validation: magic, version, header CRC, bounds.

    Reads only the header and section table — a few hundred bytes — so
    opening stays O(1) regardless of index size.  Every failure mode
    raises :class:`~repro.errors.CorruptFileError` with a diagnosis.
    """
    file_size = os.fstat(handle.fileno()).st_size
    raw = handle.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise CorruptFileError(path, "truncated header")
    (magic, version, flags, num_nodes, num_intervals, epoch,
     section_count, header_crc) = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise CorruptFileError(path, "not an RTCF file (bad magic)")
    if version != FORMAT_VERSION:
        raise CorruptFileError(
            path, f"unsupported RTCF format version {version}")
    if not 0 < section_count <= 64:
        raise CorruptFileError(
            path, f"implausible section count {section_count}")
    table = handle.read(section_count * _SECTION.size)
    if len(table) < section_count * _SECTION.size:
        raise CorruptFileError(path, "truncated section table")
    zeroed = _HEADER.pack(magic, version, flags, num_nodes, num_intervals,
                          epoch, section_count, 0)
    if zlib.crc32(zeroed + table) != header_crc:
        raise CorruptFileError(path, "header checksum mismatch")

    sections: Dict[int, Tuple[int, int, int, int]] = {}
    payload_floor = _HEADER.size + len(table)
    for position in range(section_count):
        section_id, dtype_code, offset, nbytes, crc = _SECTION.unpack_from(
            table, position * _SECTION.size)
        if dtype_code not in (DTYPE_BLOB, DTYPE_INT32, DTYPE_INT64):
            raise CorruptFileError(
                path, f"unknown dtype code {dtype_code} in section "
                      f"{SECTION_NAMES.get(section_id, section_id)}")
        if offset < payload_floor or offset + nbytes > file_size:
            raise CorruptFileError(
                path, f"section {SECTION_NAMES.get(section_id, section_id)} "
                      f"out of bounds (offset {offset}, {nbytes} bytes, "
                      f"file is {file_size})")
        sections[section_id] = (dtype_code, offset, nbytes, crc)

    for required in _REQUIRED:
        if required not in sections:
            raise CorruptFileError(
                path, f"missing section {SECTION_NAMES[required]}")

    n, m = num_nodes, num_intervals
    expected = {
        SEC_NUMBERS: n * 8,
        SEC_OFFSETS: (n + 1) * 8,
        SEC_LOWS: m, SEC_HIGHS: m, SEC_LOKEYED: m,
        SEC_REVLO: m, SEC_REVHI: m, SEC_REVOWNER: m, SEC_REVMAXHI: m,
    }
    for section_id, want in expected.items():
        dtype_code, _, nbytes, _ = sections[section_id]
        unit = _DTYPE_SIZES.get(dtype_code)
        if unit is None or nbytes != want * (unit if section_id not in
                                            (SEC_NUMBERS, SEC_OFFSETS)
                                            else 1):
            raise CorruptFileError(
                path, f"section {SECTION_NAMES[section_id]} size "
                      f"inconsistent with header counts")
    if flags & FLAG_INT_LABELS:
        if sections[SEC_LABELS][0] != DTYPE_INT64 \
                or sections[SEC_LABELS][2] != n * 8:
            raise CorruptFileError(path, "label section size inconsistent")
    if flags & FLAG_HAS_LUT and SEC_LUT not in sections:
        raise CorruptFileError(path, "lookup table flagged but missing")
    return _ParsedHeader(flags, num_nodes, num_intervals, epoch, sections)


def _verify_sections(path: PathLike, header: _ParsedHeader, data) -> None:
    """Full payload verification: CRC-32 every section (reads all pages)."""
    for section_id, (dtype_code, offset, nbytes, crc) in \
            sorted(header.sections.items()):
        if zlib.crc32(bytes(data[offset:offset + nbytes])) != crc:
            raise CorruptFileError(
                path, f"section {SECTION_NAMES.get(section_id, section_id)} "
                      f"checksum mismatch")


def verify_rtcf(path: PathLike) -> dict:
    """Validate ``path`` end to end and return a section report.

    Used by ``repro stats`` / ``repro convert``; raises
    :class:`~repro.errors.CorruptFileError` on any damage.
    """
    with open(path, "rb") as handle:
        header = _parse_header(path, handle)
        handle.seek(0)
        data = handle.read()
    _verify_sections(path, header, data)
    return {
        "path": str(path),
        "format_version": FORMAT_VERSION,
        "num_nodes": header.num_nodes,
        "num_intervals": header.num_intervals,
        "epoch": header.epoch,
        "int_labels": bool(header.flags & FLAG_INT_LABELS),
        "has_lut": bool(header.flags & FLAG_HAS_LUT),
        "file_bytes": len(data),
        "sections": {
            SECTION_NAMES.get(section_id, str(section_id)): {
                "offset": offset, "nbytes": nbytes,
                "dtype": {DTYPE_BLOB: "blob", DTYPE_INT32: "int32",
                          DTYPE_INT64: "int64"}[dtype_code],
            }
            for section_id, (dtype_code, offset, nbytes, _crc)
            in sorted(header.sections.items())
        },
    }


def _np_section(np, data, header: _ParsedHeader, section_id: int):
    dtype_code, offset, nbytes, _ = header.sections[section_id]
    dtype = np.dtype("<i4") if dtype_code == DTYPE_INT32 else np.dtype("<i8")
    count = nbytes // dtype.itemsize
    if count == 0:
        return np.empty(0, dtype=dtype)
    return np.frombuffer(data, dtype=dtype, count=count, offset=offset)


def _list_section(data, header: _ParsedHeader, section_id: int) -> list:
    from array import array
    dtype_code, offset, nbytes, _ = header.sections[section_id]
    typecode = _DTYPE_CODES[dtype_code]
    values = array(typecode)
    values.frombytes(bytes(data[offset:offset + nbytes]))
    if sys.byteorder != "little":  # pragma: no cover - big-endian hosts
        values.byteswap()
    return values.tolist()


def _labels_from(data, header: _ParsedHeader, *, as_list: bool):
    dtype_code, offset, nbytes, _ = header.sections[SEC_LABELS]
    if header.flags & FLAG_INT_LABELS:
        if as_list:
            return _list_section(data, header, SEC_LABELS)
        return None  # mapped path keeps the raw array instead
    blob = bytes(data[offset:offset + nbytes])
    try:
        labels = json.loads(blob.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptFileError(
            header_path(data), f"label blob does not decode: {error}"
        ) from error
    if not isinstance(labels, list):
        raise CorruptFileError(header_path(data), "label blob is not a list")
    return labels


def header_path(data) -> str:  # pragma: no cover - diagnostic fallback
    return getattr(data, "name", "<rtcf>")


class MappedFrozenTCIndex(FrozenTCIndex):
    """A :class:`FrozenTCIndex` whose buffers live in an ``mmap``.

    Constructed by :func:`load_rtcf`: every query-path array is a
    ``numpy.frombuffer`` view straight into the mapped file, so opening
    performs no deserialisation and sibling processes share the pages.
    The Python-object tables (the rank->label list and the label->rank
    dict) are materialised lazily, on the first query that actually
    needs node *objects* — point reachability over integer labels runs
    entirely off the map via the stored lookup table.

    The inherited query surface is unchanged; a mapped view is always
    detached (no source index, never stale) and reports the ``epoch``
    recorded in the file header.
    """

    def __init__(self, *, mm, path: str, header: _ParsedHeader, np,
                 labels_blob_nodes: Optional[list]) -> None:
        # Deliberately does NOT call FrozenTCIndex.__init__: buffers are
        # adopted from the map instead of copied and re-derived.
        self._backend = "numpy"
        self._mm = mm
        self._path = path
        self._header = header
        self._num_nodes = header.num_nodes
        self._source = None
        self._source_epoch = header.epoch
        self._obs = None
        self._tracer = None
        self._off = _np_section(np, mm, header, SEC_OFFSETS)
        self._lo = _np_section(np, mm, header, SEC_LOWS)
        self._hi = _np_section(np, mm, header, SEC_HIGHS)
        self._dtype = self._lo.dtype
        self._lo_keyed = _np_section(np, mm, header, SEC_LOKEYED)
        self._rev_lo = _np_section(np, mm, header, SEC_REVLO)
        self._rev_hi = _np_section(np, mm, header, SEC_REVHI)
        self._rev_owner = _np_section(np, mm, header, SEC_REVOWNER)
        self._rev_maxhi = _np_section(np, mm, header, SEC_REVMAXHI)
        self._lut = (_np_section(np, mm, header, SEC_LUT)
                     if header.flags & FLAG_HAS_LUT else None)
        if header.flags & FLAG_INT_LABELS:
            self._labels_array = _np_section(np, mm, header, SEC_LABELS)
            self._labels_json: Optional[list] = None
        else:
            self._labels_array = None
            self._labels_json = labels_blob_nodes
        self._numbers_array = _np_section(np, mm, header, SEC_NUMBERS)

    # -- lazy Python-object tables -------------------------------------
    def __getattr__(self, name):
        if name == "_nodes":
            if self._labels_array is not None:
                nodes = self._labels_array.tolist()
            else:
                nodes = list(self._labels_json)
            self._nodes = nodes
            return nodes
        if name == "_numbers":
            numbers = self._numbers_array.tolist()
            self._numbers = numbers
            return numbers
        if name == "_id_of":
            id_of = {node: rank for rank, node in enumerate(self._nodes)}
            if len(id_of) != self._num_nodes:
                raise CorruptFileError(
                    self._path, "duplicate node labels in label section")
            self._id_of = id_of
            return id_of
        raise AttributeError(name)

    def __len__(self) -> int:
        return self._num_nodes

    def __contains__(self, node: Node) -> bool:
        table = self._lut
        if table is not None and type(node) is int:
            return 0 <= node < table.size and int(table[node]) >= 0
        return super().__contains__(node)

    def _id(self, node: Node) -> int:
        table = self._lut
        if table is not None and type(node) is int:
            if 0 <= node < table.size:
                rank = int(table[node])
                if rank >= 0:
                    return rank
            raise NodeNotFoundError(node)
        return super()._id(node)

    @property
    def path(self) -> str:
        """The backing RTCF file."""
        return self._path

    def close(self) -> None:
        """Release the mapping.  Queries after ``close()`` are invalid;
        Python-level references to the arrays must be dropped first, so
        this is best-effort (the map is unmapped at GC otherwise)."""
        try:
            self._mm.close()
        except (BufferError, ValueError):  # pragma: no cover - refs alive
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MappedFrozenTCIndex(nodes={self._num_nodes}, "
                f"intervals={self.num_intervals}, path={self._path!r})")


def load_rtcf(path: PathLike, *, backend: Optional[str] = None,
              verify: bool = False) -> FrozenTCIndex:
    """Open an RTCF file; zero-copy via ``mmap`` when numpy serves.

    With the numpy backend (the default when installed) the returned
    view adopts the mapped pages directly — O(1) open, shared across
    processes.  ``backend="array"`` (or a numpy-free interpreter) falls
    back to reading the core sections and rehydrating through
    :meth:`FrozenTCIndex.from_buffers` — correct, just not zero-copy.

    ``verify=True`` additionally CRC-checks every section payload
    (reads the whole file); structural validation (magic, version,
    header checksum, section bounds) always runs.
    """
    resolved = _resolve_backend(backend)
    handle = open(path, "rb")
    try:
        header = _parse_header(path, handle)
        if resolved == "numpy":
            np = _numpy()
            mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
            if verify:
                _verify_sections(path, header, mapped)
            labels = (None if header.flags & FLAG_INT_LABELS
                      else _labels_from(mapped, header, as_list=True))
            try:
                return MappedFrozenTCIndex(
                    mm=mapped, path=str(path), header=header,
                    np=np, labels_blob_nodes=labels)
            except Exception:
                mapped.close()
                raise
        handle.seek(0)
        data = handle.read()
        if verify:
            _verify_sections(path, header, data)
        nodes = _labels_from(data, header, as_list=True)
        try:
            return FrozenTCIndex.from_buffers(
                nodes=nodes,
                numbers=_list_section(data, header, SEC_NUMBERS),
                offsets=_list_section(data, header, SEC_OFFSETS),
                lows=_list_section(data, header, SEC_LOWS),
                highs=_list_section(data, header, SEC_HIGHS),
                backend=resolved, epoch=header.epoch)
        except ReproError as error:
            raise CorruptFileError(
                path, f"sections do not assemble ({error})") from error
    finally:
        handle.close()
