"""Delta-overlay hybrid engine: frozen-speed reads under live updates.

:class:`~repro.core.frozen.FrozenTCIndex` (PR 1) is the fastest query
engine in the repository, but it is a snapshot: the first mutation stales
it and a read-heavy workload with even a trickle of writes pays a full
O(n + intervals) re-compile per write burst.  The paper's own answer to
update traffic is Section 4 — interval labels survive insertion and
deletion through postorder-numbering gaps — which keeps the *mutable*
index correct in microseconds but leaves its per-query constant an order
of magnitude above the flat-array engine's.

:class:`HybridTCIndex` combines the two, LSM-style:

* a **pinned frozen base** (a :meth:`~repro.core.frozen.FrozenTCIndex.detach`-ed
  snapshot) serves the bulk of every answer at flat-array speed;
* a small **delta overlay** — the arcs and nodes added since the snapshot
  — corrects base answers through a bounded search that crosses only
  delta arcs, with memoised per-entry reachable sets;
* the **mutable index underneath is written through** on every mutation
  using the Section 4 gap-based algorithms, so it is always the ground
  truth and compaction never re-runs Alg1 or the propagation pass from
  scratch: folding the delta into a fresh base is one freeze of the
  already-updated index.

Additions are the cheap, common case: the overlay stays sound because
every base path still exists.  Deletions of *pre-snapshot* structure
cannot be corrected against the base (an interval cannot un-cover a
rank), so they **taint** the snapshot: queries fall back to the mutable
index — still exact, microsecond-fast — until the next compaction.
Deleting delta-only structure (an arc or node added since the snapshot)
simply edits the overlay and keeps the fast path.

The correction rule, for an untainted base with delta arcs
``{(a_i, b_i)}``:

    ``reach(u, v)``  iff  ``base(u, v)``  or  there is a delta arc
    ``(a, b)`` with ``base(u, a)`` and some ``t`` in ``D(b)`` with
    ``base(t, v)``

where ``base(x, y)`` is reflexive base-only reachability (new nodes reach
only themselves) and ``D(b)`` — the memoised *delta closure* of ``b`` —
is the set of delta-arc targets reachable from ``b``, including ``b``.
Splitting any path at the first delta arc it crosses shows the rule is
complete; soundness is immediate.  ``successors``, ``predecessors`` and
``reachable_many`` reuse the same decomposition, and the batch form keeps
the vectorised numpy route for the base portion of each batch.

Compaction policy: a cost threshold (``max_delta``, deletions weighted by
``delete_cost``) and a base-size ratio (``max_ratio``) trigger compaction
on the mutation that crosses them; :meth:`compact` folds eagerly on
demand; ``auto_compact_on_query=True`` defers folding to the next query
instead, which batches the cost under bursty writes.

Typical use::

    hybrid = HybridTCIndex.build(graph)
    hybrid.reachable("a", "c")            # flat-array speed
    hybrid.add_arc("c", "d")              # O(1) amortised: delta append
    hybrid.reachable("a", "d")            # True — corrected via the delta
    hybrid.compact()                      # fold; queries unchanged
"""

from __future__ import annotations

import random
import time as _time
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

from repro.core.frozen import FrozenTCIndex
from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import IndexStateError, NodeNotFoundError, ReproError
from repro.graph.digraph import DiGraph, Node
from repro.obs.instrument import instrumented

#: Default compaction threshold, in delta cost units (1 per added arc or
#: node, ``delete_cost`` per pre-snapshot deletion).
DEFAULT_MAX_DELTA = 64
#: Compact early when the overlay reaches this fraction of the base size,
#: so small indexes never carry proportionally huge deltas.
DEFAULT_MAX_RATIO = 0.25
#: Cost units charged for deleting pre-snapshot structure: a deletion
#: taints the base, so it should pull the next compaction much closer
#: than an addition does.
DEFAULT_DELETE_COST = 8


class HybridTCIndex:
    """Frozen base snapshot + mutable delta overlay + write-through truth.

    Build with :meth:`build` (or wrap an existing index with
    :meth:`from_index`); query with the shared engine surface
    (:meth:`reachable`, :meth:`successors`, :meth:`predecessors`, the
    batch and semijoin forms); update with :meth:`add_node`,
    :meth:`add_arc`, :meth:`remove_arc`, :meth:`remove_node`; fold with
    :meth:`compact`.
    """

    def __init__(self, index: IntervalTCIndex, *,
                 backend: Optional[str] = None,
                 max_delta: int = DEFAULT_MAX_DELTA,
                 max_ratio: float = DEFAULT_MAX_RATIO,
                 delete_cost: int = DEFAULT_DELETE_COST,
                 auto_compact_on_query: bool = False) -> None:
        if max_delta < 1:
            raise ReproError(f"max_delta must be >= 1, got {max_delta}")
        if not max_ratio > 0:
            raise ReproError(f"max_ratio must be positive, got {max_ratio}")
        if delete_cost < 1:
            raise ReproError(f"delete_cost must be >= 1, got {delete_cost}")
        self._index = index
        self._backend = backend
        self._max_delta = max_delta
        self._max_ratio = max_ratio
        self._delete_cost = delete_cost
        self._auto_compact_on_query = auto_compact_on_query
        self._compactions = 0
        self._obs = None
        self._tracer = None
        self._base = self._compile()
        self._reset_delta()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: DiGraph, *, policy: str = "alg1",
              gap: int = DEFAULT_GAP, backend: Optional[str] = None,
              max_delta: int = DEFAULT_MAX_DELTA,
              max_ratio: float = DEFAULT_MAX_RATIO,
              delete_cost: int = DEFAULT_DELETE_COST,
              auto_compact_on_query: bool = False,
              rng: Union[random.Random, int, None] = None,
              **index_kwargs) -> "HybridTCIndex":
        """Compute the compressed closure of ``graph`` and snapshot it.

        ``policy``/``gap`` and any extra keyword arguments configure the
        underlying :meth:`IntervalTCIndex.build`; the remaining keywords
        configure the overlay (see the class docstring).
        """
        index = IntervalTCIndex.build(graph, policy=policy, gap=gap, rng=rng,
                                      **index_kwargs)
        return cls(index, backend=backend, max_delta=max_delta,
                   max_ratio=max_ratio, delete_cost=delete_cost,
                   auto_compact_on_query=auto_compact_on_query)

    @classmethod
    def from_arcs(cls, arcs: Iterable[tuple], **kwargs) -> "HybridTCIndex":
        """Build directly from ``(source, destination)`` pairs."""
        return cls.build(DiGraph(arcs), **kwargs)

    @classmethod
    def from_index(cls, index: IntervalTCIndex, **kwargs) -> "HybridTCIndex":
        """Wrap an already-built index (snapshots it immediately)."""
        return cls(index, **kwargs)

    @classmethod
    def restore(cls, index: IntervalTCIndex, base: FrozenTCIndex, *,
                delta_arcs: Sequence[Tuple[Node, Node]],
                delta_nodes: Iterable[Node],
                delta_cost: int, tainted: bool,
                backend: Optional[str] = None,
                max_delta: int = DEFAULT_MAX_DELTA,
                max_ratio: float = DEFAULT_MAX_RATIO,
                delete_cost: int = DEFAULT_DELETE_COST,
                auto_compact_on_query: bool = False) -> "HybridTCIndex":
        """Adopt persisted state without recompiling the base snapshot.

        This is the warm-restart path used by
        :func:`repro.core.serialize.hybrid_from_dict`: ``index`` is the
        current (post-delta) truth, ``base`` the snapshot it was frozen
        from, and the delta log replays the difference between them.
        """
        self = cls.__new__(cls)
        self._index = index
        self._backend = backend
        self._max_delta = max_delta
        self._max_ratio = max_ratio
        self._delete_cost = delete_cost
        self._auto_compact_on_query = auto_compact_on_query
        self._compactions = 0
        self._obs = None
        self._tracer = None
        self._base = base.detach()
        self._reset_delta()
        self._delta_arcs = [(source, destination)
                            for source, destination in delta_arcs]
        self._delta_arc_set = set(self._delta_arcs)
        self._delta_nodes = set(delta_nodes)
        self._delta_cost = delta_cost
        self._tainted = tainted
        return self

    def _compile(self) -> FrozenTCIndex:
        # Deliberately not ``index.freeze()``: the cached view there must
        # stay strict (stale after one epoch), while the base must be
        # pinned.  Detaching a shared cache entry would leak never-stale
        # views to other callers.
        frozen = FrozenTCIndex.from_index(self._index,
                                          backend=self._backend).detach()
        # Every recompiled base inherits this hybrid's observability so
        # base lookups keep reporting after a compaction.
        frozen._obs = (self._obs.child("FrozenTCIndex")
                       if self._obs is not None else None)
        frozen._tracer = self._tracer
        return frozen

    def _reset_delta(self) -> None:
        self._delta_arcs: List[Tuple[Node, Node]] = []
        self._delta_arc_set: Set[Tuple[Node, Node]] = set()
        self._delta_nodes: Set[Node] = set()
        self._delta_cost = 0
        self._tainted = False
        self._expected_epoch = self._index.epoch
        #: entry -> frozenset of delta-arc targets reachable from it (D).
        self._delta_memo: Dict[Node, FrozenSet[Node]] = {}
        #: query source -> frozenset of delta entry targets (T).
        self._entry_memo: Dict[Node, FrozenSet[Node]] = {}

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    @property
    def delta_size(self) -> int:
        """Number of arcs currently in the overlay."""
        return len(self._delta_arcs)

    @property
    def delta_cost(self) -> int:
        """Accumulated mutation cost since the last compaction."""
        return self._delta_cost

    @property
    def tainted(self) -> bool:
        """Whether a pre-snapshot deletion forced mutable-index routing."""
        return self._tainted

    @property
    def compactions(self) -> int:
        """How many times the delta has been folded into a fresh base."""
        return self._compactions

    @property
    def index(self) -> IntervalTCIndex:
        """The write-through mutable index (always the ground truth)."""
        return self._index

    @property
    def journal(self):
        """The write-ahead journal sink, if any.

        Lives on the write-through index: every hybrid mutation funnels
        through it, so attaching the sink there logs exactly the
        acknowledged Section 4 op stream — overlay bookkeeping never
        reaches the log.
        """
        return self._index.journal

    @journal.setter
    def journal(self, sink) -> None:
        self._index.journal = sink

    @property
    def base(self) -> FrozenTCIndex:
        """The pinned frozen snapshot queries are served from."""
        return self._base

    @property
    def epoch(self) -> int:
        """How many distinct bases this hybrid has pinned.

        Counts publishes (base swaps), not mutations: a burst of writes
        folded by one :meth:`compact` advances the epoch once.  This is
        the number a serving layer can expose as "which snapshot
        answered you".
        """
        return self._compactions

    def snapshot(self) -> FrozenTCIndex:
        """An immutable engine for the *current* exact state.

        Folds any pending delta (one freeze, no closure recomputation)
        and returns the fresh pinned base — detached, so it stays valid
        and internally consistent no matter what is mutated afterwards.
        Callers may hand it to any number of readers without
        coordination; the next ``snapshot()`` after further writes
        returns a different object and never touches this one.
        """
        self.compact()
        return self._base

    @property
    def graph(self) -> DiGraph:
        """The live graph (owned by the write-through index)."""
        return self._index.graph

    @property
    def delta_arcs(self) -> Tuple[Tuple[Node, Node], ...]:
        """The overlay's arc log (insertion order)."""
        return tuple(self._delta_arcs)

    @property
    def delta_nodes(self) -> FrozenSet[Node]:
        """Nodes added since the snapshot."""
        return frozenset(self._delta_nodes)

    def _threshold(self) -> int:
        ratio_cap = int(self._max_ratio * max(len(self._base), 1))
        return max(1, min(self._max_delta, ratio_cap))

    def _over_threshold(self) -> bool:
        return self._delta_cost >= self._threshold()

    def compact(self) -> bool:
        """Fold the delta into a fresh frozen base; queries are unchanged.

        The underlying index already absorbed every mutation through the
        Section 4 gap-based algorithms, so compaction is a single freeze
        of current state — no Alg1 re-run, no from-scratch closure.
        Returns whether any folding happened (``False`` on an empty,
        untainted overlay).
        """
        if (not self._delta_arcs and not self._delta_nodes
                and not self._tainted
                and self._expected_epoch == self._index.epoch):
            return False
        obs = self._obs
        started = _time.perf_counter_ns() if obs is not None else 0
        self._base = self._compile()
        self._reset_delta()
        self._compactions += 1
        if obs is not None:
            obs.counter("tc_hybrid_compaction_total",
                        help="delta folds into a fresh base").inc()
            obs.histogram(
                "tc_hybrid_compaction_seconds",
                help="wall time folding the delta into a fresh base",
            ).observe_ns(_time.perf_counter_ns() - started)
        return True

    def _note_mutation(self, cost: int) -> None:
        self._delta_cost += cost
        self._expected_epoch = self._index.epoch
        self._delta_memo.clear()
        self._entry_memo.clear()
        if not self._auto_compact_on_query and self._over_threshold():
            self.compact()

    # ------------------------------------------------------------------
    # mutations (write-through + delta log)
    # ------------------------------------------------------------------
    @instrumented("add_node")
    def add_node(self, node: Node, parents: Sequence[Node] = ()) -> None:
        """Insert a new node with arcs from each of ``parents``.

        Applied to the mutable index immediately (Section 4 insertion);
        the node and its incoming arcs join the overlay so the frozen
        base keeps serving.
        """
        parent_list = list(parents)
        self._index.add_node(node, parent_list)
        self._delta_nodes.add(node)
        for parent in parent_list:
            self._record_arc(parent, node)
        self._note_mutation(1 + len(parent_list))

    @instrumented("add_arc")
    def add_arc(self, source: Node, destination: Node) -> None:
        """Insert an arc between existing nodes; O(1) amortised overlay append."""
        before = self._index.epoch
        self._index.add_arc(source, destination)
        if self._index.epoch == before:
            return  # arc already present: the index did nothing
        self._record_arc(source, destination)
        self._note_mutation(1)

    def _record_arc(self, source: Node, destination: Node) -> None:
        arc = (source, destination)
        if arc not in self._delta_arc_set:
            self._delta_arc_set.add(arc)
            self._delta_arcs.append(arc)

    @instrumented("remove_arc")
    def remove_arc(self, source: Node, destination: Node) -> None:
        """Delete an arc.

        A delta arc (added since the snapshot) is simply dropped from the
        overlay — the base never knew it.  A pre-snapshot arc taints the
        base: queries route to the mutable index until compaction.
        """
        before = self._index.epoch
        self._index.remove_arc(source, destination)
        if self._index.epoch == before:
            return
        arc = (source, destination)
        if arc in self._delta_arc_set:
            self._delta_arc_set.discard(arc)
            self._delta_arcs.remove(arc)
            self._note_mutation(0)
        else:
            self._tainted = True
            self._note_mutation(self._delete_cost)

    @instrumented("remove_node")
    def remove_node(self, node: Node) -> None:
        """Delete a node and all incident arcs (same taint rule as arcs).

        Every arc incident to a post-snapshot node is itself a delta arc,
        so removing a delta node just edits the overlay.
        """
        self._index.remove_node(node)
        if node in self._delta_nodes:
            self._delta_nodes.discard(node)
            kept = [(source, destination)
                    for source, destination in self._delta_arcs
                    if source != node and destination != node]
            self._delta_arcs = kept
            self._delta_arc_set = set(kept)
            self._note_mutation(0)
        else:
            self._tainted = True
            self._note_mutation(self._delete_cost)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _sync(self) -> bool:
        """Pre-query bookkeeping; returns whether to route to the index.

        Detects out-of-band mutations (someone updated :attr:`index`
        directly: the epoch moved without the overlay seeing it) and
        taints — the delta log no longer tells the whole story, but the
        write-through index is still exact.  Under
        ``auto_compact_on_query`` this is also where deferred folding
        happens.
        """
        if self._index.epoch != self._expected_epoch:
            self._tainted = True
            self._expected_epoch = self._index.epoch
            self._delta_memo.clear()
            self._entry_memo.clear()
        if self._auto_compact_on_query and (self._tainted
                                            or self._over_threshold()):
            self.compact()
        return self._tainted

    def _require(self, node: Node) -> None:
        if node not in self._index.postorder:
            raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # delta correction primitives
    # ------------------------------------------------------------------
    def _base_reach(self, source: Node, destination: Node) -> bool:
        """Reflexive base-only reachability; new nodes reach only themselves."""
        if source == destination:
            return True
        base = self._base
        if source in base and destination in base:
            return base.reachable(source, destination)
        return False

    def _base_succ(self, node: Node) -> Set[Node]:
        base = self._base
        if node in base:
            return base.successors(node)
        return {node}

    def _base_pred(self, node: Node) -> Set[Node]:
        base = self._base
        if node in base:
            return base.predecessors(node)
        return {node}

    def _delta_closure(self, entry: Node) -> FrozenSet[Node]:
        """D(entry): delta-arc targets reachable from ``entry`` (incl. itself)."""
        memo = self._delta_memo
        cached = memo.get(entry)
        if cached is not None:
            return cached
        closure = {entry}
        frontier = [entry]
        arcs = self._delta_arcs
        while frontier:
            node = frontier.pop()
            for arc_source, arc_target in arcs:
                if arc_target not in closure and self._base_reach(node,
                                                                  arc_source):
                    closure.add(arc_target)
                    frontier.append(arc_target)
        result = frozenset(closure)
        memo[entry] = result
        return result

    def _entry_targets(self, source: Node) -> FrozenSet[Node]:
        """T(source): union of D(b) over delta arcs (a, b) with base(source, a).

        Everything ``source`` gained from the overlay is base-reachable
        from some member of this set.  One vectorised batch resolves the
        arc-source tests; the result is memoised until the next mutation.
        """
        memo = self._entry_memo
        cached = memo.get(source)
        if cached is not None:
            return cached
        arcs = self._delta_arcs
        targets: Set[Node] = set()
        if arcs:
            hits = self._base_reach_each(source, [a for a, _ in arcs])
            for (arc_source, arc_target), hit in zip(arcs, hits):
                if hit:
                    targets |= self._delta_closure(arc_target)
        result = frozenset(targets)
        memo[source] = result
        return result

    def _base_reach_each(self, source: Node,
                         nodes: Sequence[Node]) -> List[bool]:
        """base(source, node) for each node, batching the in-base pairs."""
        base = self._base
        hits = [False] * len(nodes)
        source_in_base = source in base
        pairs: List[Tuple[Node, Node]] = []
        slots: List[int] = []
        for position, node in enumerate(nodes):
            if node == source:
                hits[position] = True
            elif source_in_base and node in base:
                pairs.append((source, node))
                slots.append(position)
        if pairs:
            for slot, hit in zip(slots, base.reachable_many(pairs)):
                hits[slot] = hit
        return hits

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        """Whether ``source`` reaches ``destination`` (reflexive).

        Untainted: one flat-array lookup, plus at most |T(source)| more
        when the overlay is non-empty.  Tainted: exact answer from the
        mutable index.
        """
        tracer = self._tracer
        in_span = tracer is not None and tracer.current() is not None
        if self._sync():
            if in_span:
                tracer.annotate("route", "index")
            return self._index.reachable(source, destination)
        if in_span:
            tracer.annotate("route", "base")
        self._require(source)
        self._require(destination)
        if self._base_reach(source, destination):
            return True
        if not self._delta_arcs:
            return False
        if in_span:
            tracer.annotate("overlay", True)
        for target in self._entry_targets(source):
            if self._base_reach(target, destination):
                return True
        return False

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes reachable from ``source``: base slice walk + overlay union."""
        if self._sync():
            return self._index.successors(source, reflexive=reflexive)
        self._require(source)
        result = self._base_succ(source)
        if self._delta_arcs:
            for target in self._entry_targets(source):
                result |= self._base_succ(target)
        if not reflexive:
            result.discard(source)
        return result

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        """Duplicate-free successor iterator (order unspecified)."""
        return iter(self.successors(source, reflexive=reflexive))

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        """Successor count; run-width arithmetic on the clean no-delta path."""
        if self._sync():
            return self._index.count_successors(source, reflexive=reflexive)
        if not self._delta_arcs and source in self._base:
            return self._base.count_successors(source, reflexive=reflexive)
        total = len(self.successors(source))
        return total if reflexive else total - 1

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *,
                     reflexive: bool = True) -> Set[Node]:
        """Every node that reaches ``destination``.

        A delta arc ``(a, b)`` contributes the base predecessors of ``a``
        exactly when some member of D(b) base-reaches the destination —
        the same first-crossed-arc decomposition, read from the far end.
        """
        if self._sync():
            return self._index.predecessors(destination, reflexive=reflexive)
        self._require(destination)
        result = self._base_pred(destination)
        for arc_source, arc_target in self._delta_arcs:
            if any(self._base_reach(target, destination)
                   for target in self._delta_closure(arc_target)):
                result |= self._base_pred(arc_source)
        if not reflexive:
            result.discard(destination)
        return result

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Batch :meth:`reachable`.

        The in-base portion of the batch runs through the frozen engine's
        vectorised path in one call; only pairs it answers ``False`` (or
        that involve post-snapshot nodes) take the pointwise delta
        correction.
        """
        pair_list = pairs if isinstance(pairs, list) else list(pairs)
        if self._sync():
            index = self._index
            return [index.reachable(source, destination)
                    for source, destination in pair_list]
        if not pair_list:
            return []
        base = self._base
        if not self._delta_arcs and not self._delta_nodes:
            return base.reachable_many(pair_list)
        results = [False] * len(pair_list)
        batch: List[Tuple[Node, Node]] = []
        slots: List[int] = []
        for position, (source, destination) in enumerate(pair_list):
            self._require(source)
            self._require(destination)
            if source == destination:
                results[position] = True
            elif source in base and destination in base:
                batch.append((source, destination))
                slots.append(position)
        if batch:
            for slot, hit in zip(slots, base.reachable_many(batch)):
                results[slot] = hit
        if self._delta_arcs:
            for position, (source, destination) in enumerate(pair_list):
                if results[position]:
                    continue
                for target in self._entry_targets(source):
                    if self._base_reach(target, destination):
                        results[position] = True
                        break
        return results

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        """One successor set per source, in input order."""
        return [self.successors(source, reflexive=reflexive)
                for source in sources]

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        """One predecessor set per destination, in input order."""
        return [self.predecessors(destination, reflexive=reflexive)
                for destination in destinations]

    # ------------------------------------------------------------------
    # set semijoins
    # ------------------------------------------------------------------
    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        """Everything reachable from *any* source (reflexive)."""
        source_list = list(sources)
        if self._sync():
            result: Set[Node] = set()
            for source in source_list:
                result |= self._index.successors(source)
            return result
        base = self._base
        if not self._delta_arcs and all(source in base
                                        for source in source_list):
            return base.reachable_from_set(source_list)
        result = set()
        for source in source_list:
            result |= self.successors(source)
        return result

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        """Everything that reaches *any* destination (reflexive)."""
        destination_list = list(destinations)
        if self._sync():
            result: Set[Node] = set()
            for destination in destination_list:
                result |= self._index.predecessors(destination)
            return result
        base = self._base
        if not self._delta_arcs and all(destination in base
                                        for destination in destination_list):
            return base.reaching_set(destination_list)
        result = set()
        for destination in destination_list:
            result |= self.predecessors(destination)
        return result

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        """Does any source reach any destination?  Early-exit semijoin."""
        destination_list = list(destinations)
        if not destination_list:
            return False
        if not self._sync() and not self._delta_arcs:
            base = self._base
            if (all(d in base for d in destination_list)):
                source_list = list(sources)
                if all(s in base for s in source_list):
                    return base.any_reachable(source_list, destination_list)
                sources = source_list
        for destination in destination_list:
            self._require(destination)
        destination_set = set(destination_list)
        for source in sources:
            if self.successors(source) & destination_set:
                return True
        return False

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two nodes share no common descendant (reflexive)."""
        if (not self._sync() and not self._delta_arcs
                and first in self._base and second in self._base):
            return self._base.are_disjoint(first, second)
        return not (self.successors(first) & self.successors(second))

    # ------------------------------------------------------------------
    # membership and introspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._index.postorder

    def __len__(self) -> int:
        return len(self._index.postorder)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes (current state, overlay included)."""
        return self._index.nodes()

    def capabilities(self) -> "EngineCapabilities":
        """Updatable with a vectorised frozen base for clean batches."""
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="hybrid", supports_updates=True, supports_batch=True,
            is_frozen_snapshot=False, durable=False)

    def stats(self) -> dict:
        """Overlay/compaction accounting plus the base engine's report."""
        return {
            "num_nodes": len(self),
            "delta_arcs": len(self._delta_arcs),
            "delta_nodes": len(self._delta_nodes),
            "delta_cost": self._delta_cost,
            "threshold": self._threshold(),
            "tainted": self._tainted,
            "compactions": self._compactions,
            "auto_compact_on_query": self._auto_compact_on_query,
            "base": self._base.stats(),
        }

    def to_state(self) -> dict:
        """The persistent pieces (see :mod:`repro.core.serialize`)."""
        return {
            "delta_arcs": list(self._delta_arcs),
            "delta_nodes": sorted(self._delta_nodes, key=repr),
            "delta_cost": self._delta_cost,
            "tainted": self._tainted,
            "settings": {
                "max_delta": self._max_delta,
                "max_ratio": self._max_ratio,
                "delete_cost": self._delete_cost,
                "auto_compact_on_query": self._auto_compact_on_query,
            },
        }

    # ------------------------------------------------------------------
    # verification (tests and the fuzzer's audits)
    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Check the write-through index against the graph, then the
        overlay-corrected answers against the index.  O(n^2)-ish — for
        tests, not production."""
        self._index.verify()
        if self._sync():
            return  # tainted: queries already come straight from the index
        for node in self._index.nodes():
            expected = self._index.successors(node)
            actual = self.successors(node)
            if actual != expected:
                raise IndexStateError(
                    f"hybrid successors mismatch at {node!r}: "
                    f"missing={sorted(map(repr, expected - actual))} "
                    f"extra={sorted(map(repr, actual - expected))}")
            expected = self._index.predecessors(node)
            actual = self.predecessors(node)
            if actual != expected:
                raise IndexStateError(
                    f"hybrid predecessors mismatch at {node!r}: "
                    f"missing={sorted(map(repr, expected - actual))} "
                    f"extra={sorted(map(repr, actual - expected))}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"HybridTCIndex(nodes={len(self)}, "
                f"delta_arcs={len(self._delta_arcs)}, "
                f"cost={self._delta_cost}/{self._threshold()}, "
                f"compactions={self._compactions}"
                f"{', TAINTED' if self._tainted else ''})")
