"""Chain-decomposition transitive closure — a first-class query engine.

The comparator of Theorem 2 (Jagadish [18], Section 5), promoted from a
baseline to a full :class:`~repro.core.engine.TCEngine`.  Nodes are
partitioned into *chains*; each node stores, per chain, the earliest
chain position it can reach — every later node on that chain is then
reachable by transitivity.  Soundness requires consecutive chain members
to be connected (here: by an arc of the graph, so chains are
vertex-disjoint paths).

This is the parameterized linear-time closure of Kritikakis & Tollis
(arXiv:2404.17954): with ``k`` chains the propagation pass costs
O((n + m) · k) time and every node's label holds at most ``k``
(chain id, min position) entries, so a point ``reachable`` query is one
dict probe — O(1) — and decoding a successor set costs O(answer)
because the per-chain suffixes are disjoint (chains partition the
nodes).

Two decompositions are provided:

* ``"greedy"`` — walk the topological order, appending each node to some
  chain whose current tail has an arc to it (first fit), else start a new
  chain;
* ``"optimal"`` — a minimum path cover over the *closure* (Dilworth's
  minimum chain cover), computed with Hopcroft-Karp bipartite matching.
  Chains are then paths in the closure; consecutive members are connected
  by a path, which is equally sound.

Theorem 2 states that the interval scheme on the optimal tree cover never
needs more intervals than the best chain compression needs chain entries
(without "chain reduction"); ``benchmarks/bench_chain_cover.py`` and the
property tests check that inequality empirically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reverse_topological_order, topological_order
from repro.obs.instrument import instrumented

__all__ = ["METHODS", "ChainCoverIndex", "greedy_chain_decomposition",
           "optimal_chain_decomposition"]

METHODS = ("greedy", "optimal")


def greedy_chain_decomposition(graph: DiGraph) -> List[List[Node]]:
    """First-fit path decomposition along the topological order."""
    chains: List[List[Node]] = []
    tail_chain: Dict[Node, int] = {}
    for node in topological_order(graph):
        placed = False
        for predecessor in graph.predecessors(node):
            chain_id = tail_chain.get(predecessor)
            if chain_id is not None:
                chains[chain_id].append(node)
                del tail_chain[predecessor]
                tail_chain[node] = chain_id
                placed = True
                break
        if not placed:
            tail_chain[node] = len(chains)
            chains.append([node])
    return chains


def _hopcroft_karp(left: List[Node], adjacency: Dict[Node, List[Node]]) -> Dict[Node, Node]:
    """Maximum bipartite matching; returns the left -> right matching map."""
    INFINITY = float("inf")
    match_left: Dict[Node, Optional[Node]] = {u: None for u in left}
    match_right: Dict[Node, Optional[Node]] = {}
    distance: Dict[Node, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = INFINITY
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                mate = match_right.get(v)
                if mate is None:
                    found_free = True
                elif distance[mate] == INFINITY:
                    distance[mate] = distance[u] + 1
                    queue.append(mate)
        return found_free

    def dfs(root: Node) -> bool:
        # Iterative layered DFS (recursion would overflow on long
        # augmenting paths).  Each frame is [left node, successor iterator,
        # right node through which the frame was entered].
        stack: List[list] = [[root, iter(adjacency.get(root, ())), None]]
        while stack:
            frame = stack[-1]
            u, successors = frame[0], frame[1]
            advanced = False
            for v in successors:
                mate = match_right.get(v)
                if mate is None:
                    # Free right node: augment along the whole stack path.
                    match_left[u] = v
                    match_right[v] = u
                    for depth in range(len(stack) - 1, 0, -1):
                        entered_via = stack[depth][2]
                        parent = stack[depth - 1][0]
                        match_left[parent] = entered_via
                        match_right[entered_via] = parent
                    return True
                if distance.get(mate, INFINITY) == distance[u] + 1:
                    stack.append([mate, iter(adjacency.get(mate, ())), v])
                    advanced = True
                    break
            if not advanced:
                distance[u] = INFINITY
                stack.pop()
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def optimal_chain_decomposition(graph: DiGraph,
                                closure=None) -> List[List[Node]]:
    """Dilworth minimum chain cover via matching on the transitive closure.

    The number of chains equals ``n - |maximum matching|``, the minimum
    possible (Dilworth); consecutive chain members are related by
    reachability, not necessarily adjacency.
    """
    if closure is None:
        from repro.baselines.full_closure import FullTCIndex
        closure = FullTCIndex.build(graph)
    order = topological_order(graph)
    adjacency = {node: sorted(closure.successors(node, reflexive=False),
                              key=str) for node in order}
    matching = _hopcroft_karp(order, adjacency)
    matched_right = set(matching.values())
    chains = []
    for node in order:
        if node in matched_right:
            continue
        chain = [node]
        while chain[-1] in matching:
            chain.append(matching[chain[-1]])
        chains.append(chain)
    return chains


class ChainCoverIndex:
    """Reachability engine over a chain decomposition.

    ``reach[u]`` maps a chain id to the smallest position on that chain
    reachable from ``u`` (reflexively: ``u`` reaches its own position).
    Point queries are one dict probe; successor sets decode as disjoint
    chain suffixes; predecessor-flavoured queries scan all nodes, one
    probe each (the labels are successor-directed, like the paper's).
    """

    def __init__(self, chains: List[List[Node]],
                 position_of: Dict[Node, Tuple[int, int]],
                 reach: Dict[Node, Dict[int, int]], method: str) -> None:
        self.chains = chains
        self._position_of = position_of
        self._reach = reach
        self.method = method
        self._obs = None
        self._tracer = None

    @classmethod
    def build(cls, graph: DiGraph, method: str = "greedy") -> "ChainCoverIndex":
        """Decompose ``graph`` into chains and propagate earliest positions.

        One reverse-topological pass; each arc merges at most ``k``
        (chain, position) entries — the O((n + m) · k) parameterized
        bound.
        """
        if method not in METHODS:
            raise GraphError(f"unknown chain method {method!r}; expected one of {METHODS}")
        if method == "greedy":
            chains = greedy_chain_decomposition(graph)
        else:
            chains = optimal_chain_decomposition(graph)
        position_of: Dict[Node, Tuple[int, int]] = {}
        for chain_id, chain in enumerate(chains):
            for sequence, node in enumerate(chain):
                position_of[node] = (chain_id, sequence)

        reach: Dict[Node, Dict[int, int]] = {}
        for node in reverse_topological_order(graph):
            own_chain, own_sequence = position_of[node]
            entries: Dict[int, int] = {own_chain: own_sequence}
            for successor in graph.successors(node):
                for chain_id, sequence in reach[successor].items():
                    current = entries.get(chain_id)
                    if current is None or sequence < current:
                        entries[chain_id] = sequence
            reach[node] = entries
        return cls(chains, position_of, reach, method)

    # ------------------------------------------------------------------
    # membership and introspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._position_of

    def __len__(self) -> int:
        return len(self._position_of)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes."""
        return iter(self._position_of)

    def capabilities(self) -> "EngineCapabilities":
        """An immutable compiled label set — no graph, no updates."""
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="chain", supports_updates=False, supports_batch=False,
            is_frozen_snapshot=True, durable=False)

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability: earliest reached position <= target position."""
        if source not in self._reach:
            raise NodeNotFoundError(source)
        try:
            chain_id, sequence = self._position_of[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        earliest = self._reach[source].get(chain_id)
        return earliest is not None and earliest <= sequence

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """Decode the successor set from the chain suffixes — O(answer)."""
        if source not in self._reach:
            raise NodeNotFoundError(source)
        result: Set[Node] = set()
        for chain_id, sequence in self._reach[source].items():
            result.update(self.chains[chain_id][sequence:])
        if not reflexive:
            result.discard(source)
        return result

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        """Lazily yield successors, chain by chain.

        Duplicate-free by construction — the chains partition the nodes,
        so the suffixes are disjoint; O(1) memory beyond the iterator.
        """
        if source not in self._reach:
            raise NodeNotFoundError(source)
        for chain_id, sequence in self._reach[source].items():
            for node in self.chains[chain_id][sequence:]:
                if not reflexive and node == source:
                    continue
                yield node

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """Every node that can reach ``destination``.

        The labels are successor-directed (like the paper's intervals),
        so this scans all nodes — O(n) dict probes.
        """
        if destination not in self._reach:
            raise NodeNotFoundError(destination)
        chain_id, sequence = self._position_of[destination]
        result = {node for node, entries in self._reach.items()
                  if entries.get(chain_id, len(self.chains[chain_id])) <= sequence}
        if not reflexive:
            result.discard(destination)
        return result

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        """Number of successors without materialising the set.

        Disjoint suffixes make this a pure arithmetic sum — O(k).
        """
        if source not in self._reach:
            raise NodeNotFoundError(source)
        seen = sum(len(self.chains[chain_id]) - sequence
                   for chain_id, sequence in self._reach[source].items())
        return seen if reflexive else seen - 1

    # ------------------------------------------------------------------
    # batch queries and set semijoins
    # ------------------------------------------------------------------
    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Batch :meth:`reachable` over ``(source, destination)`` pairs."""
        return [self.reachable(source, destination)
                for source, destination in pairs]

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        """One successor set per source, in input order."""
        return [self.successors(source, reflexive=reflexive)
                for source in sources]

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        """One predecessor set per destination, in input order."""
        return [self.predecessors(destination, reflexive=reflexive)
                for destination in destinations]

    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        """Everything reachable from *any* source (reflexive)."""
        result: Set[Node] = set()
        for source in sources:
            result |= self.successors(source)
        return result

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        """Everything that reaches *any* destination (reflexive).

        Per chain, only the *largest* destination position matters (a
        node reaching any earlier position reaches the later one too), so
        the scan pays one probe per target chain per node.
        """
        targets = self._target_positions(destinations)
        if not targets:
            return set()
        result: Set[Node] = set()
        for node, entries in self._reach.items():
            for chain_id, sequence in targets.items():
                earliest = entries.get(chain_id)
                if earliest is not None and earliest <= sequence:
                    result.add(node)
                    break
        return result

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        """Does any source reach any destination?  Early-exit semijoin."""
        targets = self._target_positions(destinations)
        if not targets:
            return False
        for source in sources:
            entries = self._reach.get(source)
            if entries is None:
                raise NodeNotFoundError(source)
            for chain_id, sequence in targets.items():
                earliest = entries.get(chain_id)
                if earliest is not None and earliest <= sequence:
                    return True
        return False

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two nodes share no common descendant (reflexive).

        Chain suffixes always contain the chain's last node, so two
        suffixes of the same chain always intersect: the nodes are
        disjoint iff their labels share no chain — O(min(k, k')).
        """
        left = self._reach.get(first)
        if left is None:
            raise NodeNotFoundError(first)
        right = self._reach.get(second)
        if right is None:
            raise NodeNotFoundError(second)
        if len(left) > len(right):
            left, right = right, left
        return not any(chain_id in right for chain_id in left)

    def _target_positions(self, destinations: Iterable[Node]) -> Dict[int, int]:
        """Per chain, the largest (easiest) destination position."""
        targets: Dict[int, int] = {}
        for destination in destinations:
            try:
                chain_id, sequence = self._position_of[destination]
            except KeyError:
                raise NodeNotFoundError(destination) from None
            current = targets.get(chain_id)
            if current is None or sequence > current:
                targets[chain_id] = sequence
        return targets

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    @property
    def num_chains(self) -> int:
        """Number of chains in the decomposition."""
        return len(self.chains)

    @property
    def num_entries(self) -> int:
        """Total (chain, position) entries — the Theorem 2 quantity.

        Each node's entry for its *own* position is charged too, mirroring
        the interval scheme's per-node tree interval.
        """
        return sum(len(entries) for entries in self._reach.values())

    @property
    def storage_units(self) -> int:
        """Two numbers (chain id, position) per entry."""
        return 2 * self.num_entries

    def stats(self) -> dict:
        """A small size/shape report for CLI output and benchmarks."""
        nodes = len(self._position_of)
        return {
            "num_nodes": nodes,
            "num_chains": self.num_chains,
            "num_entries": self.num_entries,
            "entries_per_node": self.num_entries / nodes if nodes else 0.0,
            "storage_units": self.storage_units,
            "method": self.method,
        }

    def _register_gauges(self, registry, label: str) -> None:
        """Health gauges for :func:`repro.obs.instrument.attach`."""
        import weakref

        from repro.obs.instrument import _gauge
        ref = weakref.ref(self)
        _gauge(registry, "tc_nodes", "indexed nodes", label, ref, len)
        _gauge(registry, "tc_chain_count", "chains in the decomposition",
               label, ref, lambda e: e.num_chains)
        _gauge(registry, "tc_chain_entries",
               "total (chain, position) label entries (Theorem 2 quantity)",
               label, ref, lambda e: e.num_entries)
        _gauge(registry, "tc_chain_entries_per_node",
               "mean label entries per node", label, ref,
               lambda e: e.num_entries / max(len(e), 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChainCoverIndex(method={self.method!r}, chains={self.num_chains}, "
                f"entries={self.num_entries})")
