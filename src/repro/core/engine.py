"""The shared query-engine protocol all four engines implement.

Four engines answer the same reachability questions with different
trade-offs — :class:`~repro.core.index.IntervalTCIndex` (updatable,
Section 4 algorithms), :class:`~repro.core.frozen.FrozenTCIndex`
(read-only flat arrays), :class:`~repro.core.hybrid.HybridTCIndex`
(frozen base + delta overlay), and
:class:`~repro.durability.store.DurableTCIndex` (crash-safe facade).
:class:`TCEngine` is the structural type they all satisfy: helper code
(:mod:`repro.core.queries`), the CLI, and the observability layer are
written against it, so instrumentation and routing attach at one seam
instead of four divergent class surfaces.

The protocol is ``runtime_checkable`` — ``isinstance(engine, TCEngine)``
checks method presence (not signatures; the conformance suite in
``tests/core/test_engine_protocol.py`` pins exact signatures with
:func:`inspect.signature`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Iterable, Iterator, List, Protocol, Set, Tuple,
                    runtime_checkable)

from repro.graph.digraph import Node

__all__ = ["EngineCapabilities", "TCEngine"]


@dataclass(frozen=True)
class EngineCapabilities:
    """What an engine can do, for dispatch without ``isinstance``.

    ``kind`` is the engine's :func:`repro.open_index` name ("interval",
    "frozen", "hybrid", "hoplabel", "chain", "durable", ...).
    ``supports_updates`` — accepts add/remove mutations after build.
    ``supports_batch`` — batch calls run a native fast path (vectorised
    or routed), not just a loop over the single-op form.
    ``is_frozen_snapshot`` — an immutable compiled artefact: it carries
    no graph or tree cover, so it can never be coerced into a mutable
    engine.  ``durable`` — mutations are journalled to stable storage.
    """

    kind: str
    supports_updates: bool
    supports_batch: bool
    is_frozen_snapshot: bool
    durable: bool


@runtime_checkable
class TCEngine(Protocol):
    """Anything that answers transitive-closure queries.

    All query semantics are reflexive by the paper's convention (every
    node reaches itself); ``reflexive=False`` opts out per call.  Batch
    forms return answers in input order.  ``stats()`` returns a
    size/health report (an :class:`~repro.core.index.IndexStats` or a
    plain dict, both ``as_dict()``-able or already a dict).
    """

    # -- point queries --------------------------------------------------
    def reachable(self, source: Node, destination: Node) -> bool: ...

    def successors(self, source: Node, *,
                   reflexive: bool = True) -> Set[Node]: ...

    def predecessors(self, destination: Node, *,
                     reflexive: bool = True) -> Set[Node]: ...

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]: ...

    def count_successors(self, source: Node, *,
                         reflexive: bool = True) -> int: ...

    # -- batch queries --------------------------------------------------
    def reachable_many(self,
                       pairs: Iterable[Tuple[Node, Node]]) -> List[bool]: ...

    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]: ...

    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]: ...

    # -- set semijoins --------------------------------------------------
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]: ...

    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]: ...

    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool: ...

    def are_disjoint(self, first: Node, second: Node) -> bool: ...

    # -- membership and introspection -----------------------------------
    def nodes(self) -> Iterator[Node]: ...

    def capabilities(self) -> EngineCapabilities: ...

    def stats(self): ...

    def __contains__(self, node: Node) -> bool: ...

    def __len__(self) -> int: ...
