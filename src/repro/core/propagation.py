"""Vectorized and level-parallel interval propagation.

The Section 3.2 propagation pass in :mod:`repro.core.labeling` visits
nodes in reverse topological order and merges each successor's interval
set into the node's own with per-node Python sorts — correct, but
single-core and interpreter-bound, which is what keeps million-node
builds from being interactive.

This module reformulates the pass over *reverse-topological levels*.
Level 0 holds the sinks; a node's level is one more than the maximum
level of its graph successors, so by the time a level is processed every
successor's final interval set is known.  Nothing inside a level depends
on anything else inside it, which yields both optimisations at once:

* **Vectorized** — concatenate, for every node of the level, its tree
  interval plus all of its successors' final ``(lo, hi)`` runs into
  three flat arrays (``lo``, ``hi``, ``owner``), then resolve the whole
  level with one ``numpy.lexsort`` and one segmented
  maximum-accumulate sweep.  The sweep keeps an interval exactly when
  its upper bound exceeds the running maximum within its owner segment
  — the same "subsumption-maximal elements of the union" fixpoint
  :meth:`IntervalSet.add_all` reaches one merge at a time, so the
  output labeling is *identical*, not merely equivalent (the parity
  test and the differential fuzzer both assert this).
* **Level-parallel** — the per-level arrays split at owner boundaries
  into independent chunks, so wide levels can fan out across a
  ``multiprocessing`` pool, in the spirit of Yang & Zaniolo's multicore
  closure evaluation.  Chunk results are concatenated back in owner
  order, keeping the output deterministic regardless of pool scheduling.

Without numpy the kernel degrades gracefully to the sequential pass, so
``propagation="vectorized"`` is safe to request unconditionally.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.frozen import _numpy
from repro.core.intervals import IntervalSet
from repro.core.labeling import Labeling, propagate_intervals
from repro.core.tree_cover import TreeCover
from repro.errors import ReproError
from repro.graph.digraph import DiGraph, Node

#: Propagation modes accepted by ``IntervalTCIndex.build`` and
#: :func:`repro.core.labeling.label_graph`.
PROPAGATION_MODES = ("python", "vectorized", "parallel")

#: A level fans out to worker processes only past this many flat
#: intervals — below it, pickling costs more than the sweep.
PARALLEL_MIN_ITEMS = 65536


def _sweep_chunk(payload):
    """Resolve one (lo, hi, owner) chunk to its subsumption-maximal runs.

    Module-level so the multiprocessing pool can pickle it.  ``owner``
    must already be grouped (not necessarily sorted *within* — lexsort
    handles that); the returned arrays are ordered by (owner, lo).
    """
    los, his, owners = payload
    np = _numpy()
    # (owner asc, lo asc, hi desc) in ONE argsort when the composite key
    # fits int64 — a single introsort beats lexsort's three stable
    # passes by ~2-3x.  The range guard never fires for realistic
    # numberings (the caller already bounds owner * hi).
    lo_span = int(los.max()) + 1
    hi_span = int(his.max()) + 1
    owner_span = int(owners.max()) + 1
    if owner_span * lo_span * hi_span < 2**62:
        key = (owners * lo_span + los) * hi_span + (hi_span - 1 - his)
        order = np.argsort(key)
    else:  # pragma: no cover - astronomically large gaps only
        order = np.lexsort((-his, los, owners))
    slo = los[order]
    shi = his[order]
    sown = owners[order]
    # One key per interval such that comparing keys within an owner
    # compares hi, and any later owner's key beats any earlier owner's:
    # keep iff the key exceeds the running maximum (the add_all sweep,
    # segmented).
    stride = int(shi.max()) + 1
    keys = sown * stride + shi
    running = np.maximum.accumulate(keys)
    keep = np.empty(len(keys), dtype=bool)
    keep[0] = True
    np.greater(keys[1:], running[:-1], out=keep[1:])
    return slo[keep], shi[keep], sown[keep]


def _levelize(graph: DiGraph, order: List[Node]) -> Dict[Node, int]:
    """Longest distance to a sink for every node (level schedule)."""
    return _levelize_lists(
        order, [graph.successors(node) for node in order])


def _levelize_lists(order: List[Node], succ_lists: List) -> Dict[Node, int]:
    """:func:`_levelize` over pre-fetched successor collections."""
    level: Dict[Node, int] = {}
    for node, succs in zip(reversed(order), reversed(succ_lists)):
        deepest = -1
        for successor in succs:
            if level[successor] > deepest:
                deepest = level[successor]
        level[node] = deepest + 1
    return level


def propagate_intervals_vectorized(graph: DiGraph, cover: TreeCover,
                                   labeling: Labeling, *,
                                   parallel: bool = False,
                                   processes: Optional[int] = None) -> None:
    """Drop-in replacement for :func:`propagate_intervals`.

    Mutates ``labeling.intervals`` in place to the exact sets the
    sequential pass produces.  ``parallel=True`` additionally fans wide
    levels out over a process pool (``processes`` caps the pool size;
    default ``os.cpu_count()``).  Falls back to the sequential pass when
    numpy is unavailable.
    """
    np = _numpy()
    if np is None:  # numpy-free installs: correct, just not vectorized
        propagate_intervals(graph, cover, labeling)
        return

    order = cover.order
    n = len(order)
    if not n:
        return
    successors = graph.successors
    succ_lists = [successors(node) for node in order]
    level_of = _levelize_lists(order, succ_lists)
    tree = labeling.tree_interval

    # One-time move into id space (id = position in `order`): the graph
    # as CSR arrays, the tree intervals as flat arrays.  After this,
    # each level is resolved with a fixed number of numpy calls — no
    # per-node or per-arc Python work inside the level loop.
    id_of = {node: i for i, node in enumerate(order)}
    counts = np.array([len(succs) for succs in succ_lists], dtype=np.int64)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    get_id = id_of.__getitem__
    indices = np.array(
        [identifier for succs in succ_lists
         for identifier in map(get_id, succs)], dtype=np.int64)
    tree_spans = [tree[node] for node in order]
    tree_lo_all = np.array([span.lo for span in tree_spans], dtype=np.int64)
    tree_hi_all = np.array([span.hi for span in tree_spans], dtype=np.int64)

    levels: List[List[int]] = [[] for _ in range(max(level_of.values()) + 1)]
    # Iterate `order`, not the dict, so level membership order is
    # deterministic (insertion order of a dict built from `order` would
    # match, but this makes the invariant explicit).
    for position, node in enumerate(order):
        levels[level_of[node]].append(position)

    # Every node's final (lo, hi) runs live in one flat pool (written
    # exactly once, at the node's own level); gathering a level's input
    # is one fancy-index read instead of per-arc array allocations.
    capacity = max(1024, 2 * n)
    pool_lo = np.empty(capacity, dtype=np.int64)
    pool_hi = np.empty(capacity, dtype=np.int64)
    size = 0
    start_arr = np.zeros(n, dtype=np.int64)
    end_arr = np.zeros(n, dtype=np.int64)

    pool = None
    try:
        if parallel:
            import multiprocessing
            pool = multiprocessing.Pool(processes=processes)
        for ids in levels:
            members = np.asarray(ids, dtype=np.int64)
            count = len(ids)
            tree_lo = tree_lo_all[members]
            tree_hi = tree_hi_all[members]
            row_start = indptr[members]
            succ_counts = indptr[members + 1] - row_start
            total_arcs = int(succ_counts.sum())

            if total_arcs == 0:
                # A pure-sink level: everything keeps its tree interval.
                kept_lo, kept_hi = tree_lo, tree_hi
                bounds = np.arange(count + 1, dtype=np.int64)
            else:
                # Concatenated [start, start+length) ranges — the
                # standard cumsum trick, applied twice: once to walk the
                # CSR successor lists, once to walk each successor's
                # resolved slice of the pool.
                arc_shift = np.cumsum(succ_counts) - succ_counts
                arc_pos = (np.arange(total_arcs, dtype=np.int64)
                           + np.repeat(row_start - arc_shift, succ_counts))
                succ_ids = indices[arc_pos]
                starts = start_arr[succ_ids]
                lengths = end_arr[succ_ids] - starts
                total = int(lengths.sum())
                item_shift = np.cumsum(lengths) - lengths
                gather = (np.arange(total, dtype=np.int64)
                          + np.repeat(starts - item_shift, lengths))
                arc_owner = np.repeat(np.arange(count, dtype=np.int64),
                                      succ_counts)
                los = np.concatenate([tree_lo, pool_lo[gather]])
                his = np.concatenate([tree_hi, pool_hi[gather]])
                owners = np.concatenate([
                    np.arange(count, dtype=np.int64),
                    np.repeat(arc_owner, lengths)])
                if count * (int(his.max()) + 1) >= 2**62:  # pragma: no cover
                    # The segmented sweep keys would overflow int64; such
                    # numberings only arise from astronomically large
                    # gaps — take the slow path for this level.
                    kept_lo, kept_hi, kept_owner = _sweep_python(
                        np, ids, tree_lo_all, tree_hi_all, pool_lo,
                        pool_hi, start_arr, end_arr, indptr, indices)
                elif pool is not None and len(los) >= PARALLEL_MIN_ITEMS:
                    kept_lo, kept_hi, kept_owner = _sweep_parallel(
                        np, pool, los, his, owners, count)
                else:
                    kept_lo, kept_hi, kept_owner = _sweep_chunk(
                        (los, his, owners))
                bounds = np.searchsorted(kept_owner,
                                         np.arange(count + 1))

            needed = size + len(kept_lo)
            if needed > capacity:
                while capacity < needed:
                    capacity *= 2
                grown_lo = np.empty(capacity, dtype=np.int64)
                grown_hi = np.empty(capacity, dtype=np.int64)
                grown_lo[:size] = pool_lo[:size]
                grown_hi[:size] = pool_hi[:size]
                pool_lo, pool_hi = grown_lo, grown_hi
            pool_lo[size:needed] = kept_lo
            pool_hi[size:needed] = kept_hi
            start_arr[members] = size + bounds[:-1]
            end_arr[members] = size + bounds[1:]
            size = needed

        # Write-back: two bulk tolist() calls, then plain list slices —
        # no per-node numpy round trips.
        all_lo = pool_lo[:size].tolist()
        all_hi = pool_hi[:size].tolist()
        intervals = labeling.intervals
        make = IntervalSet.__new__
        for node, begin, end in zip(order, start_arr.tolist(),
                                    end_arr.tolist()):
            fresh = make(IntervalSet)
            fresh._los = all_lo[begin:end]
            fresh._his = all_hi[begin:end]
            intervals[node] = fresh
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()


def _sweep_parallel(np, pool, los, his, owners, num_owners):
    """Fan one wide level out across the pool, split at owner boundaries.

    ``owners`` is grouped but not sorted; group boundaries are found on
    a sorted copy of the owner column only, then each worker lexsorts
    its own slice.  Results concatenate in owner order, so the output is
    byte-identical to the single-chunk sweep.
    """
    workers = pool._processes
    order = np.argsort(owners, kind="stable")
    los, his, owners = los[order], his[order], owners[order]
    # Candidate splits at even item counts, snapped to owner boundaries.
    raw = [(len(los) * step) // workers for step in range(1, workers)]
    cuts = sorted({int(np.searchsorted(owners, owners[point], side="left"))
                   for point in raw if 0 < point < len(los)})
    bounds = [0] + cuts + [len(los)]
    chunks = [(los[a:b], his[a:b], owners[a:b])
              for a, b in zip(bounds, bounds[1:]) if b > a]
    if len(chunks) <= 1:
        return _sweep_chunk((los, his, owners))
    results = pool.map(_sweep_chunk, chunks)
    return (np.concatenate([r[0] for r in results]),
            np.concatenate([r[1] for r in results]),
            np.concatenate([r[2] for r in results]))


def _sweep_python(np, ids, tree_lo_all, tree_hi_all, pool_lo, pool_hi,
                  start_arr, end_arr, indptr, indices):
    """Sequential fallback for one level (sweep-key overflow guard).

    Produces the same (owner, lo)-ordered kept arrays the vectorized
    sweep would: ``add_all``'s survivors are sorted by ``lo`` ascending,
    matching the segmented sweep's output order.
    """
    kept_lo: List[int] = []
    kept_hi: List[int] = []
    kept_owner: List[int] = []
    for position, node_id in enumerate(ids):
        own = IntervalSet([(int(tree_lo_all[node_id]),
                            int(tree_hi_all[node_id]))])
        for successor in indices[indptr[node_id]:indptr[node_id + 1]]:
            begin, end = int(start_arr[successor]), int(end_arr[successor])
            own.add_all(zip(pool_lo[begin:end].tolist(),
                            pool_hi[begin:end].tolist()))
        kept_lo.extend(own._los)
        kept_hi.extend(own._his)
        kept_owner.extend([position] * len(own._los))
    return (np.asarray(kept_lo, dtype=np.int64),
            np.asarray(kept_hi, dtype=np.int64),
            np.asarray(kept_owner, dtype=np.int64))


def run_propagation(graph: DiGraph, cover: TreeCover, labeling: Labeling,
                    propagation: str = "python", *,
                    processes: Optional[int] = None) -> None:
    """Dispatch the propagation pass by mode name.

    ``"python"`` is the sequential reference pass; ``"vectorized"`` the
    numpy level kernel; ``"parallel"`` adds the multiprocessing fan-out
    for wide levels.  All three produce identical labelings.
    """
    if propagation not in PROPAGATION_MODES:
        raise ReproError(
            f"unknown propagation mode {propagation!r}; "
            f"choose from {PROPAGATION_MODES}")
    if propagation == "python":
        propagate_intervals(graph, cover, labeling)
    else:
        propagate_intervals_vectorized(
            graph, cover, labeling,
            parallel=(propagation == "parallel"), processes=processes)
