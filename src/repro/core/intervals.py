"""Interval algebra for the compressed transitive closure.

The compressed closure stores, at every node, a *set of closed integer
intervals* over postorder numbers.  The paper's operations on these sets
are:

* **subsumption elimination** — when an interval is added and one interval
  subsumes another, the subsumed one is discarded (Section 3.2);
* **membership** — a reachability query checks whether a postorder number
  falls inside any stored interval (Lemma 1);
* **adjacent/overlapping merging** — the optional post-optimisation of
  Section 3.2 ("Improvements"), kept out of the optimality argument because
  it is order-dependent (Figure 3.8).

:class:`IntervalSet` keeps its intervals sorted by lower end-point.  In a
subsumption-free set the upper end-points are then sorted too, which gives
O(log k) membership by binary search and O(k) worst-case insertion.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Iterator, List, NamedTuple, Optional, Tuple

from repro.errors import ReproError


class Interval(NamedTuple):
    """A closed integer interval ``[lo, hi]`` over postorder numbers."""

    lo: int
    hi: int

    def __contains__(self, point: object) -> bool:
        return isinstance(point, int) and self.lo <= point <= self.hi

    def subsumes(self, other: "Interval") -> bool:
        """Paper, Section 3.2: ``[i1,i2]`` subsumes ``[j1,j2]`` iff i1<=j1 and i2>=j2."""
        return self.lo <= other.lo and self.hi >= other.hi

    def overlaps(self, other: "Interval") -> bool:
        """Whether the two intervals share at least one integer."""
        return self.lo <= other.hi and other.lo <= self.hi

    def adjacent_to(self, other: "Interval") -> bool:
        """Whether the two intervals abut: ``[1,3]`` and ``[4,7]`` are adjacent."""
        return self.hi + 1 == other.lo or other.hi + 1 == self.lo

    def mergeable_with(self, other: "Interval") -> bool:
        """Whether the union of the two intervals is a single interval."""
        return self.overlaps(other) or self.adjacent_to(other)

    def merge(self, other: "Interval") -> "Interval":
        """The single-interval union; only valid when :meth:`mergeable_with`."""
        if not self.mergeable_with(other):
            raise ReproError(f"cannot merge disjoint intervals {self} and {other}")
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    @property
    def width(self) -> int:
        """Number of integers covered."""
        return self.hi - self.lo + 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.lo},{self.hi}]"


def make_interval(lo: int, hi: int) -> Interval:
    """Validated constructor: requires ``lo <= hi``."""
    if lo > hi:
        raise ReproError(f"invalid interval [{lo},{hi}]: lo > hi")
    return Interval(lo, hi)


class IntervalSet:
    """A subsumption-free set of intervals, the per-node closure record.

    Invariants (checked by :meth:`check_invariants` and the property tests):

    * intervals are sorted by ``lo`` ascending;
    * no interval subsumes another — hence ``hi`` is ascending as well.

    Note that *overlapping but non-subsuming* intervals may coexist; the
    paper only discards subsumed intervals during construction.  Merging is
    a separate explicit step (:meth:`merged`).
    """

    __slots__ = ("_los", "_his")

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._los: List[int] = []
        self._his: List[int] = []
        self.add_all(intervals)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, interval: Interval) -> bool:
        """Insert ``interval`` with subsumption elimination.

        Returns ``True`` when the set changed (the new interval was not
        already subsumed).  This boolean is what the incremental non-tree
        arc addition uses to cut off upward propagation (Section 4.1).
        """
        lo, hi = interval
        if lo > hi:
            raise ReproError(f"invalid interval [{lo},{hi}]: lo > hi")
        los, his = self._los, self._his
        position = bisect_left(los, lo)
        # Is the new interval subsumed?  The only candidates are the last
        # interval with lo' < lo and an existing interval with lo' == lo
        # (upper bounds are ascending, so one comparison each suffices).
        if position > 0 and his[position - 1] >= hi:
            return False
        if position < len(los) and los[position] == lo and his[position] >= hi:
            return False
        # Remove the contiguous run of intervals the new one subsumes: they
        # all have lo' >= lo (so they sit at `position` onward) and hi' <= hi.
        end = position
        while end < len(los) and his[end] <= hi:
            end += 1
        if end > position:
            del los[position:end]
            del his[position:end]
        los.insert(position, lo)
        his.insert(position, hi)
        return True

    def add_all(self, intervals: Iterable[Interval]) -> bool:
        """Insert several intervals; returns whether any insertion changed the set.

        Bulk path: instead of one bisect + list splice per interval
        (O(m·k) for m inserts into a set of k), the combined multiset of
        old and new intervals is sorted by ``(lo asc, hi desc)`` and swept
        once, keeping an interval exactly when its upper bound exceeds the
        running maximum.  The survivors are precisely the subsumption-
        maximal intervals of the union — the same fixpoint the one-by-one
        insertion loop reaches, in O((m+k)·log(m+k)).  Closure
        construction and delta compaction both lean on this.
        """
        fresh: List[Tuple[int, int]] = []
        for lo, hi in intervals:
            if lo > hi:
                raise ReproError(f"invalid interval [{lo},{hi}]: lo > hi")
            fresh.append((lo, hi))
        if not fresh:
            return False
        if len(fresh) == 1:
            return self.add(Interval(*fresh[0]))
        combined = list(zip(self._los, self._his))
        combined.extend(fresh)
        combined.sort(key=lambda pair: (pair[0], -pair[1]))
        new_los: List[int] = []
        new_his: List[int] = []
        top = None
        for lo, hi in combined:
            if top is None or hi > top:
                new_los.append(lo)
                new_his.append(hi)
                top = hi
        changed = new_los != self._los or new_his != self._his
        self._los, self._his = new_los, new_his
        return changed

    def discard_containing(self, point: int) -> List[Interval]:
        """Remove and return every interval that contains ``point``.

        Used by the deletion algorithms when postorder numbers are retired.
        """
        removed = []
        keep_los: List[int] = []
        keep_his: List[int] = []
        for lo, hi in zip(self._los, self._his):
            if lo <= point <= hi:
                removed.append(Interval(lo, hi))
            else:
                keep_los.append(lo)
                keep_his.append(hi)
        self._los, self._his = keep_los, keep_his
        return removed

    def translate(self, mapping: dict) -> "IntervalSet":
        """Rewrite end-points through ``mapping`` (old number -> new number).

        End-points absent from the mapping are kept.  Used by the
        renumbering step of the incremental update algorithms.
        """
        rewritten = IntervalSet()
        for lo, hi in zip(self._los, self._his):
            rewritten.add(make_interval(mapping.get(lo, lo), mapping.get(hi, hi)))
        return rewritten

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def covers(self, point: int) -> bool:
        """Whether ``point`` lies inside some stored interval (O(log k))."""
        position = bisect_right(self._los, point)
        return position > 0 and self._his[position - 1] >= point

    def covering_interval(self, point: int) -> Optional[Interval]:
        """The interval containing ``point``, or ``None``."""
        position = bisect_right(self._los, point)
        if position > 0 and self._his[position - 1] >= point:
            return Interval(self._los[position - 1], self._his[position - 1])
        return None

    def covered_range_bounds(self) -> Optional[Tuple[int, int]]:
        """``(min lo, max hi)`` over all intervals, or ``None`` when empty."""
        if not self._los:
            return None
        return self._los[0], self._his[-1]

    def __len__(self) -> int:
        return len(self._los)

    def __bool__(self) -> bool:
        return bool(self._los)

    def __iter__(self) -> Iterator[Interval]:
        return (Interval(lo, hi) for lo, hi in zip(self._los, self._his))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._los == other._los and self._his == other._his

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ", ".join(f"[{lo},{hi}]" for lo, hi in zip(self._los, self._his))
        return f"IntervalSet({{{body}}})"

    @property
    def storage_units(self) -> int:
        """Paper accounting: two end-points stored per interval."""
        return 2 * len(self._los)

    def copy(self) -> "IntervalSet":
        """An independent copy."""
        clone = IntervalSet()
        clone._los = list(self._los)
        clone._his = list(self._his)
        return clone

    # ------------------------------------------------------------------
    # merging (Section 3.2, "Improvements")
    # ------------------------------------------------------------------
    def merged(self) -> "IntervalSet":
        """A new set with adjacent and overlapping intervals coalesced.

        This is the optional post-optimisation; the paper found it gains
        less than 5 % on random DAGs (Section 3.3) and excludes it from the
        Alg1 optimality statement because the benefit is order-dependent.
        """
        coalesced = IntervalSet()
        current: Optional[Interval] = None
        for interval in self:
            if current is None:
                current = interval
            elif current.mergeable_with(interval):
                current = current.merge(interval)
            else:
                coalesced.add(current)
                current = interval
        if current is not None:
            coalesced.add(current)
        return coalesced

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Raise :class:`ReproError` if a class invariant is violated."""
        los, his = self._los, self._his
        for lo, hi in zip(los, his):
            if lo > hi:
                raise ReproError(f"invalid stored interval [{lo},{hi}]")
        for index in range(1, len(los)):
            if los[index - 1] >= los[index]:
                raise ReproError("interval lower bounds are not strictly ascending")
            if his[index - 1] >= his[index]:
                raise ReproError(
                    "interval upper bounds are not strictly ascending: "
                    "a subsumed interval survived"
                )

    def covered_points(self, universe: Iterable[int]) -> List[int]:
        """The members of ``universe`` covered by the set (test helper)."""
        return [point for point in universe if self.covers(point)]

    def total_covered_span(self) -> int:
        """Number of integers covered, counting overlaps once."""
        covered = 0
        previous_hi: Optional[int] = None
        for lo, hi in zip(self._los, self._his):
            start = lo if previous_hi is None else max(lo, previous_hi + 1)
            if hi >= start:
                covered += hi - start + 1
            previous_hi = hi if previous_hi is None else max(previous_hi, hi)
        return covered


def intervals_from_points(points: Iterable[int]) -> IntervalSet:
    """Build the minimal merged interval set covering exactly ``points``.

    This is "range compression" in its purest form: consecutive runs of
    integers collapse to single intervals.  Used by tests and by the
    Schubert baseline.
    """
    result = IntervalSet()
    run_start: Optional[int] = None
    run_end: Optional[int] = None
    for point in sorted(set(points)):
        if run_start is None:
            run_start = run_end = point
        elif point == run_end + 1:
            run_end = point
        else:
            result.add(Interval(run_start, run_end))
            run_start = run_end = point
    if run_start is not None:
        result.add(Interval(run_start, run_end))
    return result


def bisect_left_lo(interval_set: IntervalSet, value: int) -> int:
    """Index of the first stored interval with ``lo >= value`` (bench helper)."""
    return bisect_left(interval_set._los, value)
