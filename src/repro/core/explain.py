"""Human-readable renderings of a compressed-closure index.

Debugging aid in the spirit of the paper's worked figures (3.1, 3.2, 4.1,
4.2): draw the tree cover with each node's postorder number and interval
set, list the non-tree arcs, and explain *why* a particular reachability
query answers the way it does (which interval covered the number, or why
none did).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.index import IntervalTCIndex
from repro.core.tree_cover import VIRTUAL_ROOT
from repro.errors import NodeNotFoundError
from repro.graph.digraph import Node


def render_tree(index: IntervalTCIndex) -> str:
    """ASCII rendering of the tree cover with labels, Figure 3.2 style.

    Each line shows ``node  #postorder  {intervals}``; indentation follows
    the spanning tree, and forest roots sit at the left margin.
    """
    lines: List[str] = []

    def describe(node: Node) -> str:
        intervals = ", ".join(str(iv) for iv in index.intervals[node])
        return f"{node!r}  #{index.postorder[node]}  {{{intervals}}}"

    stack = [(child, 0) for child
             in reversed(index.cover.tree_children(VIRTUAL_ROOT))]
    while stack:
        node, depth = stack.pop()
        lines.append("    " * depth + describe(node))
        for child in reversed(index.cover.tree_children(node)):
            stack.append((child, depth + 1))
    return "\n".join(lines) if lines else "(empty index)"


def non_tree_arcs(index: IntervalTCIndex) -> List[tuple]:
    """The arcs the tree cover left out — the source of non-tree intervals."""
    return [(source, destination) for source, destination
            in index.graph.arcs()
            if not index.cover.is_tree_arc(source, destination)]


def explain_reachability(index: IntervalTCIndex, source: Node,
                         destination: Node) -> str:
    """A one-paragraph explanation of one reachability answer.

    Names the covering interval and whether it is the source's own tree
    interval (pure spanning-tree path) or an inherited non-tree interval.
    """
    if source not in index.postorder:
        raise NodeNotFoundError(source)
    if destination not in index.postorder:
        raise NodeNotFoundError(destination)
    number = index.postorder[destination]
    covering = index.intervals[source].covering_interval(number)
    if covering is None:
        bounds = ", ".join(str(iv) for iv in index.intervals[source])
        return (f"{source!r} does NOT reach {destination!r}: postorder "
                f"{number} of {destination!r} is outside all intervals "
                f"{{{bounds}}} of {source!r}.")
    own = index.tree_interval[source]
    if covering == own:
        kind = "its own tree interval (a pure spanning-tree path)"
    else:
        kind = "an inherited non-tree interval (a path using a non-tree arc)"
    return (f"{source!r} reaches {destination!r}: postorder {number} of "
            f"{destination!r} lies in {covering} of {source!r} — {kind}.")


def interval_histogram(index: IntervalTCIndex) -> dict:
    """Histogram: intervals-per-node -> node count (skew diagnostics)."""
    histogram: dict = {}
    for interval_set in index.intervals.values():
        count = len(interval_set)
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


def heaviest_nodes(index: IntervalTCIndex, limit: int = 10) -> List[tuple]:
    """The nodes carrying the most intervals, worst first.

    These are the Figure 3.6-shaped hot spots; the paper's remedy is an
    intermediary node (Figure 3.7).
    """
    ranked = sorted(((len(interval_set), node)
                     for node, interval_set in index.intervals.items()),
                    key=lambda pair: (-pair[0], str(pair[1])))
    return [(node, count) for count, node in ranked[:limit]]


def describe(index: IntervalTCIndex, *, tree: bool = True,
             top: Optional[int] = 5) -> str:
    """A full multi-section report for one index."""
    stats = index.stats()
    sections = [
        f"IntervalTCIndex over {stats.num_nodes} nodes / {stats.num_arcs} arcs",
        f"  policy={stats.policy} gap={stats.gap} merged={stats.merged}",
        f"  intervals: {stats.num_intervals} "
        f"({stats.num_tree_intervals} tree + {stats.num_non_tree_intervals} "
        f"non-tree) = {stats.storage_units} units",
        f"  non-tree arcs: {len(non_tree_arcs(index))}",
    ]
    if top:
        heavy = ", ".join(f"{node!r}:{count}"
                          for node, count in heaviest_nodes(index, top))
        sections.append(f"  heaviest nodes: {heavy}")
    if tree:
        sections.append("  tree cover:")
        for line in render_tree(index).splitlines():
            sections.append("    " + line)
    return "\n".join(sections)
