"""Tree covers of a DAG, including the paper's optimal Alg1.

A *tree cover* of a DAG ``G`` is a spanning tree (rooted at a virtual root)
in which every node's tree parent is one of its immediate predecessors in
``G`` (nodes without predecessors hang off the virtual root).  The
compression quality of the interval scheme depends entirely on which
incoming arc each node keeps as its tree arc.

**Alg1** (Section 3.2) makes that choice greedily: scan nodes in
topological order and, for every node, keep the incoming arc from the
predecessor with the *largest predecessor set*, computing predecessor sets
incrementally along the way.  Theorem 1 proves this minimises the total
number of intervals over all tree covers (without adjacent-interval
merging); ``tests/core/test_optimality.py`` re-verifies the theorem by
brute force on small graphs.

Predecessor sets are represented as Python integers used as bit masks:
union is ``|`` and cardinality is ``int.bit_count()``, which keeps Alg1
comfortably fast at the paper's 1000-4000 node scales.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_order


class _VirtualRoot:
    """Singleton label for the virtual root that ties disjoint components together."""

    __slots__ = ()
    _instance: Optional["_VirtualRoot"] = None

    def __new__(cls) -> "_VirtualRoot":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<virtual-root>"


#: The virtual level-0 root node of the paper (Alg1, step 1).  It is never a
#: node of the user's graph and never appears in query answers.
VIRTUAL_ROOT = _VirtualRoot()

#: Tree-cover construction policies.  ``"alg1"`` is the paper's optimum;
#: the others exist for the ablation benchmark.
POLICIES = ("alg1", "first_parent", "last_parent", "random", "min_pred")


@dataclass
class TreeCover:
    """A tree cover: parent/children maps plus bookkeeping.

    ``parent`` maps every graph node to its tree parent (possibly
    :data:`VIRTUAL_ROOT`); ``children`` maps every node *and* the virtual
    root to an ordered list of tree children.  ``order`` is the topological
    order of the underlying graph the cover was built from — the interval
    propagation step reuses it.
    """

    parent: Dict[Node, Node]
    children: Dict[Node, List[Node]]
    order: List[Node]
    policy: str = "alg1"
    _index_in_order: Dict[Node, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not self._index_in_order:
            self._index_in_order = {node: i for i, node in enumerate(self.order)}

    def is_tree_arc(self, source: Node, destination: Node) -> bool:
        """Whether ``(source, destination)`` is an arc of the spanning tree."""
        return self.parent.get(destination) == source

    def tree_arcs(self) -> Iterator[tuple]:
        """All tree arcs whose source is a real graph node."""
        for child, parent in self.parent.items():
            if parent is not VIRTUAL_ROOT:
                yield (parent, child)

    def tree_children(self, node: Node) -> List[Node]:
        """Ordered tree children of ``node`` (or of the virtual root)."""
        return self.children.get(node, [])

    def depth_of(self, node: Node) -> int:
        """Tree depth (virtual root at depth 0)."""
        depth = 0
        current = node
        while current is not VIRTUAL_ROOT:
            current = self.parent[current]
            depth += 1
        return depth

    def check_spanning(self, graph: DiGraph) -> None:
        """Validate that the cover spans ``graph`` with graph-arc parents."""
        for node in graph:
            if node not in self.parent:
                raise GraphError(f"tree cover does not span node {node!r}")
            parent = self.parent[node]
            if parent is not VIRTUAL_ROOT and not graph.has_arc(parent, node):
                raise GraphError(
                    f"tree arc ({parent!r}, {node!r}) is not an arc of the graph"
                )


def _order_children(children: Dict[Node, List[Node]], index_in_order: Dict[Node, int]) -> None:
    """Sort every child list by topological index, for deterministic labeling."""
    for child_list in children.values():
        child_list.sort(key=index_in_order.__getitem__)


def build_tree_cover(
    graph: DiGraph,
    policy: str = "alg1",
    *,
    rng: Union[random.Random, int, None] = None,
) -> TreeCover:
    """Construct a tree cover of ``graph`` under the given ``policy``.

    ``"alg1"`` implements the paper's optimal algorithm.  The alternatives
    (``"first_parent"``, ``"last_parent"``, ``"random"``, ``"min_pred"``)
    pick a different incoming arc per node and exist to quantify how much
    Alg1's choice matters (see ``benchmarks/bench_tree_cover_ablation.py``).
    """
    if policy not in POLICIES:
        raise GraphError(f"unknown tree-cover policy {policy!r}; expected one of {POLICIES}")
    order = topological_order(graph)
    index_in_order = {node: position for position, node in enumerate(order)}
    generator = rng if isinstance(rng, random.Random) else random.Random(rng)

    parent: Dict[Node, Node] = {}
    children: Dict[Node, List[Node]] = {VIRTUAL_ROOT: []}
    pred_mask: Dict[Node, int] = {}
    # Theorem 1 only ever needs |pred(p)| for the arg-max, so the popcount
    # is taken once per node here rather than once per candidate arc: a
    # node with d incoming arcs is consulted d times but counted once.
    pred_size: Dict[Node, int] = {}

    need_masks = policy in ("alg1", "min_pred")
    for node in order:
        predecessors = sorted(graph.predecessors(node), key=index_in_order.__getitem__)
        if not predecessors:
            chosen: Node = VIRTUAL_ROOT
        elif policy == "first_parent":
            chosen = predecessors[0]
        elif policy == "last_parent":
            chosen = predecessors[-1]
        elif policy == "random":
            chosen = generator.choice(predecessors)
        else:
            # alg1 keeps the predecessor with the LARGEST predecessor set;
            # min_pred (ablation) keeps the smallest.  Ties break toward the
            # earliest node in topological order, deterministically.
            sizes = [pred_size[p] for p in predecessors]
            best = max(sizes) if policy == "alg1" else min(sizes)
            chosen = predecessors[sizes.index(best)]
        parent[node] = chosen
        children.setdefault(chosen, []).append(node)
        children.setdefault(node, [])
        if need_masks:
            mask = 0
            for p in predecessors:
                mask |= pred_mask[p] | (1 << index_in_order[p])
            pred_mask[node] = mask
            pred_size[node] = mask.bit_count()

    _order_children(children, index_in_order)
    return TreeCover(parent=parent, children=children, order=order, policy=policy,
                     _index_in_order=index_in_order)


def all_tree_covers(graph: DiGraph) -> Iterator[TreeCover]:
    """Enumerate every possible tree cover of ``graph``.

    A tree cover fixes, independently for every node, which incoming arc is
    the tree arc; the number of covers is the product of the in-degrees.
    Only practical for small graphs — this is the brute-force oracle the
    Theorem 1 tests compare Alg1 against.
    """
    order = topological_order(graph)
    index_in_order = {node: position for position, node in enumerate(order)}
    choice_lists = []
    for node in order:
        predecessors = sorted(graph.predecessors(node), key=index_in_order.__getitem__)
        choice_lists.append(predecessors if predecessors else [VIRTUAL_ROOT])
    for combination in itertools.product(*choice_lists):
        parent = dict(zip(order, combination))
        children: Dict[Node, List[Node]] = {VIRTUAL_ROOT: []}
        for node in order:
            children.setdefault(node, [])
        for node, chosen in parent.items():
            children.setdefault(chosen, []).append(node)
        _order_children(children, index_in_order)
        yield TreeCover(parent=parent, children=children, order=list(order),
                        policy="enumerated", _index_in_order=dict(index_in_order))
