"""Frozen flat-array query engine over a built interval index.

:class:`~repro.core.index.IntervalTCIndex` answers queries out of one
Python ``IntervalSet`` object per node.  That representation is ideal for
the Section 4 incremental updates, but every query pays dict lookups,
attribute access, and per-object method dispatch — and predecessor-style
queries degrade to a scan over *all* nodes' interval sets.

:class:`FrozenTCIndex` is the read-optimised compilation of a built index
into contiguous CSR-style buffers, the layout hop-labeling reachability
oracles use for speed:

* nodes are interned to dense ids: id ``i`` is the node holding the
  ``i``-th smallest live postorder number, so the dense id *is* the rank
  of the node's number and no number array is consulted at query time;
* every interval end-point is rewritten from postorder-number space to
  rank space at freeze time (a number interval ``[lo, hi]`` becomes the
  rank range of the live numbers it contains), after which per-row
  intervals are coalesced into disjoint, sorted runs — ``successors`` is
  a plain slice walk and the covered ranks *are* the successor set;
* all rows live in three flat arrays — ``offsets`` (CSR row starts) plus
  ``lo``/``hi`` rank arrays — so ``reachable(u, v)`` is two array reads
  and one :func:`bisect.bisect_right` on a flat buffer;
* a **reverse interval index** (every interval sorted by ``lo``, with a
  prefix-max-``hi`` sweep array) answers the stabbing query "which rows
  cover rank q" in O(log m + scanned) — ``predecessors``,
  ``reaching_set`` and ``are_disjoint`` no longer scan every node.

When numpy is importable (it is an optional dependency) the buffers are
numpy arrays and the batch APIs (:meth:`reachable_many`,
:meth:`successors_many`, …) run vectorised; otherwise pure-stdlib
``array('q')`` buffers serve the same layout with ``bisect``.

A frozen view is a snapshot: it keeps a reference to its source index and
the index's epoch counter at freeze time, and raises
:class:`~repro.errors.IndexStateError` from every query once the source
has been updated.  Updates go through the mutable index as before; call
:meth:`IntervalTCIndex.freeze` again afterwards (the result is cached
while fresh, so repeated ``freeze()`` calls are free).

Two levels of snapshot bookkeeping exist:

* **strict views** (the default, what :meth:`IntervalTCIndex.freeze`
  hands out) refuse to answer once :meth:`lag` is non-zero — one epoch
  behind is already stale;
* **pinned snapshots** (after :meth:`detach`) drop the source reference
  and keep serving the state they captured forever.  This is what the
  delta-overlay engine (:class:`~repro.core.hybrid.HybridTCIndex`) runs
  on: the base snapshot stays queryable while the source index absorbs
  incremental updates, and the overlay corrects the answers.

Typical use::

    index = IntervalTCIndex.build(graph)
    frozen = index.freeze()                  # numpy-backed when available
    frozen.reachable("a", "c")               # two reads + one bisect
    frozen.reachable_many(pairs)             # vectorised batch
    frozen.predecessors("c")                 # reverse index, no full scan

    index.add_arc("c", "d")                  # mutate through the index...
    frozen = index.freeze()                  # ...then re-freeze
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from itertools import chain
from typing import (TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from repro.errors import IndexStateError, NodeNotFoundError, ReproError
from repro.graph.digraph import Node
from repro.obs.instrument import instrumented

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.index import IntervalTCIndex

#: Buffer backends, best first; ``freeze(backend=...)`` selects explicitly.
BACKENDS = ("numpy", "array")

#: Lazily-probed numpy module (or ``None``); written once by :func:`_numpy`.
_np = None
_NUMPY_PROBED = False


def _numpy():
    """The numpy module, probed at most once per process.

    numpy is an optional dependency (the ``test`` extra installs it) and
    importing it costs ~100ms, so the probe is deferred until a freeze or
    backend resolution actually needs it and the outcome is cached for
    the life of the process — ``import repro`` stays numpy-free.
    """
    global _np, _NUMPY_PROBED
    if not _NUMPY_PROBED:
        try:
            import numpy
            _np = numpy
        except ImportError:  # pragma: no cover - numpy-free installs
            _np = None
        _NUMPY_PROBED = True
    return _np


def default_backend() -> str:
    """``"numpy"`` when importable, else the pure-stdlib ``"array"``."""
    return "numpy" if _numpy() is not None else "array"


def _resolve_backend(backend: Optional[str]) -> str:
    if backend is None:
        return default_backend()
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown frozen backend {backend!r}; choose from {BACKENDS}")
    if backend == "numpy" and _numpy() is None:
        raise ReproError("backend 'numpy' requested but numpy is not installed")
    return backend


class FrozenTCIndex:
    """Read-only flat-array compilation of an :class:`IntervalTCIndex`.

    Construct with :meth:`IntervalTCIndex.freeze` (or :meth:`from_index`);
    reload persisted buffers with :meth:`from_buffers` /
    :func:`repro.open_index`.

    The query surface mirrors the mutable index — :meth:`reachable`,
    :meth:`successors`, :meth:`predecessors`, :meth:`count_successors` —
    plus the batch/set forms :meth:`reachable_many`,
    :meth:`successors_many`, :meth:`predecessors_many`,
    :meth:`reachable_from_set`, :meth:`reaching_set`, :meth:`any_reachable`
    and :meth:`are_disjoint`.
    """

    def __init__(self, *, nodes: Sequence[Node], numbers: Sequence,
                 offsets: Sequence[int], lows: Sequence[int],
                 highs: Sequence[int], backend: Optional[str] = None,
                 source: Optional["IntervalTCIndex"] = None,
                 source_epoch: int = 0) -> None:
        if len(offsets) != len(nodes) + 1:
            raise ReproError("offsets must hold exactly len(nodes) + 1 entries")
        if len(lows) != len(highs) or (offsets and offsets[-1] != len(lows)):
            raise ReproError("interval buffers are inconsistent with offsets")
        self._backend = _resolve_backend(backend)
        #: rank -> node; the dense interning order (ascending postorder number).
        self._nodes: List[Node] = list(nodes)
        #: rank -> postorder number (ints, or Fractions under fractional
        #: numbering); queries never touch this, (de)serialisation does.
        self._numbers: List = list(numbers)
        self._id_of: Dict[Node, int] = {
            node: rank for rank, node in enumerate(self._nodes)}
        if len(self._id_of) != len(self._nodes):
            raise ReproError("duplicate node labels in frozen buffers")
        self._source = source
        self._source_epoch = source_epoch
        self._obs = None
        self._tracer = None
        if self._backend == "numpy":
            self._materialize_numpy(offsets, lows, highs)
        else:
            self._materialize_array(offsets, lows, highs)

    # ------------------------------------------------------------------
    # compilation
    # ------------------------------------------------------------------
    @classmethod
    def from_index(cls, index: "IntervalTCIndex", *,
                   backend: Optional[str] = None) -> "FrozenTCIndex":
        """Compile ``index`` into flat buffers (prefer ``index.freeze()``).

        End-points move from number space to rank space here: each stored
        interval ``[lo, hi]`` becomes the range of ranks of the live
        numbers it contains (dropped when it contains none — gap-only
        intervals cover no node), and per-row ranges are coalesced.
        """
        used = index.used_numbers
        nodes = [index.node_of_number[number] for number in used]
        offsets: List[int] = [0]
        lows: List[int] = []
        highs: List[int] = []
        for node in nodes:
            row_top = -1  # hi of the last emitted run for this row
            for lo, hi in index.intervals[node]:
                first = bisect_left(used, lo)
                last = bisect_right(used, hi) - 1
                if first > last:
                    continue  # interval spans only numbering gaps
                if lows and len(lows) > offsets[-1] and first <= row_top + 1:
                    row_top = max(row_top, last)
                    highs[-1] = row_top
                else:
                    lows.append(first)
                    highs.append(last)
                    row_top = last
            offsets.append(len(lows))
        return cls(nodes=nodes, numbers=list(used), offsets=offsets,
                   lows=lows, highs=highs, backend=backend,
                   source=index, source_epoch=index.epoch)

    @classmethod
    def from_buffers(cls, *, nodes: Sequence[Node], numbers: Sequence,
                     offsets: Sequence[int], lows: Sequence[int],
                     highs: Sequence[int], backend: Optional[str] = None,
                     epoch: int = 0) -> "FrozenTCIndex":
        """Rehydrate from persisted buffers — no source index, never stale.

        ``epoch`` restores the source-index epoch captured when the view
        was originally compiled, so a reloaded snapshot reports the same
        :attr:`epoch` it was saved with while behaving exactly like a
        :meth:`detach`-ed view (``lag() == 0``, ``is_stale()`` false).
        """
        return cls(nodes=nodes, numbers=numbers, offsets=offsets, lows=lows,
                   highs=highs, backend=backend, source_epoch=epoch)

    def _materialize_numpy(self, offsets, lows, highs) -> None:
        np = _numpy()
        n = len(self._nodes)
        # Rank-space keys fit int32 for every graph below ~46k nodes; the
        # keyed array is what searchsorted walks, so the narrower the better.
        dtype = np.int32 if n * n <= np.iinfo(np.int32).max else np.int64
        self._dtype = dtype
        self._off = np.asarray(offsets, dtype=np.int64)
        self._lo = np.asarray(lows, dtype=dtype)
        self._hi = np.asarray(highs, dtype=dtype)
        row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(self._off))
        self._lo_keyed = (row_of * n + self._lo).astype(dtype)
        order = np.argsort(self._lo, kind="stable")
        self._rev_lo = self._lo[order]
        self._rev_hi = self._hi[order]
        self._rev_owner = row_of[order].astype(dtype)
        self._rev_maxhi = (np.maximum.accumulate(self._rev_hi)
                           if len(order) else self._rev_hi)
        self._lut = self._build_lut()

    def _materialize_array(self, offsets, lows, highs) -> None:
        self._off = array("q", offsets)
        self._lo = array("q", lows)
        self._hi = array("q", highs)
        order = sorted(range(len(self._lo)), key=self._lo.__getitem__)
        row_of = array("q")
        for rank in range(len(self._nodes)):
            row_of.extend([rank] * (self._off[rank + 1] - self._off[rank]))
        self._rev_lo = array("q", (self._lo[j] for j in order))
        self._rev_hi = array("q", (self._hi[j] for j in order))
        self._rev_owner = array("q", (row_of[j] for j in order))
        maxhi = array("q")
        top = -1
        for value in self._rev_hi:
            top = value if value > top else top
            maxhi.append(top)
        self._rev_maxhi = maxhi
        self._lut = None

    def _build_lut(self):
        """A label -> id lookup table when labels are small non-negative ints.

        Integer labels are the common case for generated and condensed
        graphs; the table lets batch translation run as one vectorised
        gather instead of a Python dict lookup per element.
        """
        np = _numpy()
        n = len(self._nodes)
        if n == 0:
            return None
        top = 0
        for node in self._nodes:
            if type(node) is not int or node < 0:
                return None
            if node > top:
                top = node
        if top > max(65536, 4 * n):  # sparse labels: table not worth the RAM
            return None
        table = np.full(top + 1, -1, dtype=np.int64)
        for node, rank in self._id_of.items():
            table[node] = rank
        return table

    # ------------------------------------------------------------------
    # snapshot bookkeeping
    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Source-index epoch captured when this view was compiled."""
        return self._source_epoch

    def lag(self) -> int:
        """How many epochs the source index has advanced since freeze().

        ``0`` means the view is exactly the source's current state.  A
        detached (pinned) snapshot always reports ``0`` — it has no source
        to lag behind.
        """
        if self._source is None:
            return 0
        return self._source.epoch - self._source_epoch

    def detach(self) -> "FrozenTCIndex":
        """Pin this snapshot: drop the source reference and never go stale.

        After ``detach()`` the view keeps answering queries for the state
        it captured, regardless of what happens to the source index.  The
        delta-overlay engine uses this to keep a queryable base while the
        source absorbs incremental updates.  Returns ``self``.
        """
        self._source = None
        return self

    def is_stale(self) -> bool:
        """Whether the source index changed since this view was frozen."""
        return self.lag() != 0

    def _check_fresh(self) -> None:
        if self.is_stale():
            raise IndexStateError(
                "frozen view is stale: the source index was updated after "
                "freeze(); call freeze() again for a fresh view")

    @property
    def backend(self) -> str:
        """``"numpy"`` or ``"array"``."""
        return self._backend

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _id(self, node: Node) -> int:
        try:
            return self._id_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def __contains__(self, node: Node) -> bool:
        return node in self._id_of

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> Iterator[Node]:
        """All indexed nodes, in ascending postorder-number order."""
        return iter(self._nodes)

    # ------------------------------------------------------------------
    # point queries
    # ------------------------------------------------------------------
    def _covers(self, sid: int, rank: int) -> bool:
        start = int(self._off[sid])
        stop = int(self._off[sid + 1])
        position = bisect_right(self._lo, rank, start, stop)
        return position > start and self._hi[position - 1] >= rank

    @instrumented("reachable")
    def reachable(self, source: Node, destination: Node) -> bool:
        """Whether ``source`` reaches ``destination`` (reflexive).

        Two array reads (the CSR row bounds) plus one ``bisect`` on the
        flat ``lo`` buffer.
        """
        self._check_fresh()
        sid = self._id(source)
        covered = self._covers(sid, self._id(destination))
        tracer = self._tracer
        if tracer is not None and tracer.current() is not None:
            tracer.annotate("hit", "interval" if covered else "miss")
        return covered

    @instrumented("successors")
    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """All nodes reachable from ``source`` — a walk over rank slices."""
        self._check_fresh()
        sid = self._id(source)
        result: Set[Node] = set()
        nodes = self._nodes
        for position in range(int(self._off[sid]), int(self._off[sid + 1])):
            result.update(nodes[int(self._lo[position]):
                                int(self._hi[position]) + 1])
        if not reflexive:
            result.discard(source)
        return result

    def iter_successors(self, source: Node, *,
                        reflexive: bool = True) -> Iterator[Node]:
        """Lazily yield successors in postorder-number order (rows are
        disjoint sorted runs, so the walk is duplicate-free by layout)."""
        self._check_fresh()
        sid = self._id(source)
        nodes = self._nodes
        for position in range(int(self._off[sid]), int(self._off[sid + 1])):
            for rank in range(int(self._lo[position]),
                              int(self._hi[position]) + 1):
                node = nodes[rank]
                if not reflexive and node == source:
                    continue
                yield node

    @instrumented("count_successors")
    def count_successors(self, source: Node, *, reflexive: bool = True) -> int:
        """Successor count straight off the run widths — no set built."""
        self._check_fresh()
        sid = self._id(source)
        start, stop = int(self._off[sid]), int(self._off[sid + 1])
        total = sum(int(self._hi[position]) - int(self._lo[position]) + 1
                    for position in range(start, stop))
        return total if reflexive else total - 1

    @instrumented("predecessors")
    def predecessors(self, destination: Node, *,
                     reflexive: bool = True) -> Set[Node]:
        """Every node that reaches ``destination``, via the reverse index.

        A stabbing query at the destination's rank: binary search bounds
        the candidate window (intervals with ``lo <= q`` and prefix-max
        ``hi >= q``), then only that window is scanned — no full-index
        sweep like the mutable engine's O(n log k) fallback.
        """
        self._check_fresh()
        rank = self._id(destination)
        result = {self._nodes[owner] for owner in self._stab(rank)}
        if not reflexive:
            result.discard(destination)
        return result

    def _stab(self, rank: int):
        """Owner ids of every interval containing ``rank``."""
        if self._backend == "numpy":
            np = _numpy()
            stop = int(np.searchsorted(self._rev_lo, rank, side="right"))
            start = int(np.searchsorted(self._rev_maxhi[:stop], rank,
                                        side="left"))
            window = self._rev_hi[start:stop]
            return self._rev_owner[start:stop][window >= rank].tolist()
        stop = bisect_right(self._rev_lo, rank)
        start = bisect_left(self._rev_maxhi, rank, 0, stop)
        return [self._rev_owner[position] for position in range(start, stop)
                if self._rev_hi[position] >= rank]

    # ------------------------------------------------------------------
    # batch queries
    # ------------------------------------------------------------------
    @instrumented("reachable_many")
    def reachable_many(self, pairs: Iterable[Tuple[Node, Node]]) -> List[bool]:
        """Vectorised :meth:`reachable` over ``(source, destination)`` pairs.

        Under the numpy backend every pair becomes one key ``sid * n +
        dest_rank`` and a single ``searchsorted`` over the row-keyed ``lo``
        buffer answers the whole batch.
        """
        self._check_fresh()
        pair_list = pairs if isinstance(pairs, list) else list(pairs)
        if not pair_list:
            return []
        if self._backend == "numpy":
            return self._reachable_many_numpy(pair_list)
        covers = self._covers
        intern = self._id
        return [covers(intern(source), intern(destination))
                for source, destination in pair_list]

    def _reachable_many_numpy(self, pair_list: List[Tuple[Node, Node]]) -> List[bool]:
        np = _numpy()
        if self._lo_keyed.size == 0:  # hand-built buffers with empty rows
            return [self._covers(self._id(source), self._id(destination))
                    for source, destination in pair_list]
        count = len(pair_list)
        ids = self._ids_table(pair_list, count)
        if ids is None:
            intern = self._id
            ids = np.fromiter(
                (intern(node) for node in chain.from_iterable(pair_list)),
                dtype=np.int64, count=2 * count).reshape(count, 2)
        source_ids = ids[:, 0]
        dest_ranks = ids[:, 1]
        keys = (source_ids.astype(np.int64) * len(self._nodes) + dest_ranks)
        positions = np.searchsorted(self._lo_keyed, keys.astype(self._dtype),
                                    side="right")
        inside_row = positions > self._off[source_ids]
        hits = inside_row & (self._hi[np.where(inside_row, positions - 1, 0)]
                             >= dest_ranks)
        return hits.tolist()

    def _ids_table(self, pair_list, count: int):
        """LUT translation of a pair batch, or ``None`` to use the dict path
        (non-integer labels, out-of-table labels, or unknown nodes)."""
        table = self._lut
        if table is None:
            return None
        np = _numpy()
        try:
            flat = np.fromiter(chain.from_iterable(pair_list),
                               dtype=np.int64, count=2 * count)
        except (TypeError, ValueError):
            return None
        if flat.size == 0 or flat.min() < 0 or flat.max() >= table.size:
            return None
        ids = table[flat]
        if (ids < 0).any():
            return None
        return ids.reshape(count, 2)

    @instrumented("successors_many")
    def successors_many(self, sources: Iterable[Node], *,
                        reflexive: bool = True) -> List[Set[Node]]:
        """One successor set per source, in input order."""
        return [self.successors(source, reflexive=reflexive)
                for source in sources]

    @instrumented("predecessors_many")
    def predecessors_many(self, destinations: Iterable[Node], *,
                          reflexive: bool = True) -> List[Set[Node]]:
        """One predecessor set per destination, in input order."""
        return [self.predecessors(destination, reflexive=reflexive)
                for destination in destinations]

    # ------------------------------------------------------------------
    # set semijoins (the building blocks of recursive query evaluation)
    # ------------------------------------------------------------------
    @instrumented("reachable_from_set")
    def reachable_from_set(self, sources: Iterable[Node]) -> Set[Node]:
        """Everything reachable from *any* source (reflexive) — the
        forward semijoin, one union of rank slices."""
        self._check_fresh()
        result: Set[Node] = set()
        nodes = self._nodes
        for source in sources:
            sid = self._id(source)
            for position in range(int(self._off[sid]),
                                  int(self._off[sid + 1])):
                result.update(nodes[int(self._lo[position]):
                                    int(self._hi[position]) + 1])
        return result

    @instrumented("reaching_set")
    def reaching_set(self, destinations: Iterable[Node]) -> Set[Node]:
        """Everything that reaches *any* destination (reflexive) — one
        reverse-index stab per distinct destination."""
        self._check_fresh()
        ranks = {self._id(destination) for destination in destinations}
        result: Set[Node] = set()
        for rank in ranks:
            result.update(self._nodes[owner] for owner in self._stab(rank))
        return result

    @instrumented("any_reachable")
    def any_reachable(self, sources: Iterable[Node],
                      destinations: Iterable[Node]) -> bool:
        """Does any source reach any destination?  Early-exit semijoin:
        destination ranks are sorted once, then each source row needs one
        bisect per run."""
        self._check_fresh()
        targets = sorted({self._id(destination)
                          for destination in destinations})
        if not targets:
            return False
        for source in sources:
            sid = self._id(source)
            for position in range(int(self._off[sid]),
                                  int(self._off[sid + 1])):
                slot = bisect_left(targets, int(self._lo[position]))
                if slot < len(targets) and targets[slot] <= self._hi[position]:
                    return True
        return False

    @instrumented("are_disjoint")
    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two nodes share no common descendant (reflexive).

        Rank coverage *is* the successor set, so this is a two-pointer
        walk over two sorted disjoint run lists — O(k1 + k2), no
        successor sets materialised.  (Comparable nodes always overlap:
        each node's row covers its own rank.)
        """
        self._check_fresh()
        first_id = self._id(first)
        second_id = self._id(second)
        i, i_stop = int(self._off[first_id]), int(self._off[first_id + 1])
        j, j_stop = int(self._off[second_id]), int(self._off[second_id + 1])
        while i < i_stop and j < j_stop:
            if self._hi[i] < self._lo[j]:
                i += 1
            elif self._hi[j] < self._lo[i]:
                j += 1
            else:
                return False
        return True

    # ------------------------------------------------------------------
    # introspection and persistence
    # ------------------------------------------------------------------
    @property
    def num_intervals(self) -> int:
        """Stored rank runs (after per-row coalescing at freeze time)."""
        return len(self._lo)

    @property
    def nbytes(self) -> int:
        """Approximate buffer footprint (CSR + reverse index), in bytes."""
        buffers = (self._off, self._lo, self._hi,
                   self._rev_lo, self._rev_hi, self._rev_owner,
                   self._rev_maxhi)
        if self._backend == "numpy":
            total = sum(buffer.nbytes for buffer in buffers)
            total += self._lo_keyed.nbytes
            if self._lut is not None:
                total += self._lut.nbytes
            return total
        return sum(buffer.itemsize * len(buffer) for buffer in buffers)

    def to_buffers(self) -> dict:
        """Plain-list view of the persistent buffers (see
        :func:`repro.core.serialize.save_frozen_index`).

        The reverse index and keyed arrays are derived, not stored: a load
        re-sorts ``lo`` once (O(m log m)) instead of shipping them.
        ``epoch`` rides along so staleness metadata survives the
        round-trip (see :meth:`from_buffers`).
        """
        return {
            "nodes": list(self._nodes),
            "numbers": list(self._numbers),
            "offsets": [int(value) for value in self._off],
            "lows": [int(value) for value in self._lo],
            "highs": [int(value) for value in self._hi],
            "epoch": self._source_epoch,
        }

    def capabilities(self) -> "EngineCapabilities":
        """Immutable compiled buffers with vectorised batch queries."""
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="frozen", supports_updates=False, supports_batch=True,
            is_frozen_snapshot=True, durable=False)

    def stats(self) -> dict:
        """A small size/shape report for CLI output and benchmarks."""
        return {
            "num_nodes": len(self._nodes),
            "num_intervals": self.num_intervals,
            "backend": self._backend,
            "nbytes": self.nbytes,
            "stale": self.is_stale(),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"FrozenTCIndex(nodes={len(self._nodes)}, "
                f"intervals={self.num_intervals}, backend={self._backend!r}"
                f"{', STALE' if self.is_stale() else ''})")
