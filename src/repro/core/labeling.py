"""Postorder numbering and interval propagation (Sections 3.1-3.2).

Given a tree cover, the compressed closure is produced in two passes:

1. **Numbering** — walk the spanning tree in postorder.  The ``k``-th node
   visited receives the postorder number ``k * gap``; its *tree interval*
   is ``[(k_first - 1) * gap + 1, k * gap]`` where ``k_first`` is the visit
   counter of the first node visited inside its subtree.  With ``gap = 1``
   this is exactly the paper's ``[lowest descendant postorder, own
   postorder]``; with a larger gap every leaf reserves the ``gap - 1``
   numbers directly below its own, which is the Section 4 trick that makes
   node insertion O(1) until the gaps fill up.

2. **Propagation** — visit the nodes of the *graph* in reverse topological
   order; at each node, add the interval sets of all its successors to its
   own, discarding subsumed intervals (Section 3.2).  The surviving
   non-tree intervals are characterised by Lemma 4.

Tree intervals form a laminar family (child intervals nest strictly inside
parent intervals, siblings are disjoint); the incremental update algorithms
rely on this, and the property tests assert it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import GraphError
from repro.core.intervals import Interval, IntervalSet
from repro.core.tree_cover import VIRTUAL_ROOT, TreeCover
from repro.graph.digraph import DiGraph, Node


@dataclass
class Labeling:
    """The complete label assignment of a compressed closure.

    ``postorder`` maps each node to its postorder number, ``tree_interval``
    to its tree interval, and ``intervals`` to its full interval set (tree
    interval plus surviving non-tree intervals).  ``gap`` records the
    numbering stride used.
    """

    postorder: Dict[Node, int]
    tree_interval: Dict[Node, Interval]
    intervals: Dict[Node, IntervalSet]
    gap: int = 1
    node_of_number: Dict[int, Node] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.node_of_number:
            self.node_of_number = {number: node for node, number in self.postorder.items()}

    @property
    def total_intervals(self) -> int:
        """Sum of interval-set cardinalities — the quantity Alg1 minimises."""
        return sum(len(interval_set) for interval_set in self.intervals.values())

    @property
    def storage_units(self) -> int:
        """Paper accounting: two end-points per interval (Section 3.3)."""
        return 2 * self.total_intervals


def assign_postorder(cover: TreeCover, gap: int = 1) -> Labeling:
    """Number the tree cover in postorder and compute tree intervals.

    The virtual root itself receives no number (the paper pins it at
    "+infinity"); its children are the roots of the forest and are numbered
    left to right in the deterministic child order of the cover.

    The returned :class:`Labeling` has interval sets holding only the tree
    intervals; run :func:`propagate_intervals` to add the non-tree ones.
    """
    if gap < 1:
        raise GraphError(f"gap must be >= 1, got {gap}")
    postorder: Dict[Node, int] = {}
    tree_interval: Dict[Node, Interval] = {}
    counter = 0

    # Iterative postorder over the spanning tree, tracking for every node
    # the counter value *before* its subtree was entered: the first node
    # visited in the subtree gets counter+1, which fixes the interval lo.
    stack: List[tuple] = [(VIRTUAL_ROOT, iter(cover.tree_children(VIRTUAL_ROOT)), counter)]
    while stack:
        node, kids, counter_at_entry = stack[-1]
        advanced = False
        for child in kids:
            stack.append((child, iter(cover.tree_children(child)), counter))
            advanced = True
            break
        if advanced:
            continue
        stack.pop()
        if node is VIRTUAL_ROOT:
            continue
        counter += 1
        number = counter * gap
        lo = counter_at_entry * gap + 1
        postorder[node] = number
        tree_interval[node] = Interval(lo, number)

    intervals = {node: IntervalSet([tree_interval[node]]) for node in postorder}
    return Labeling(postorder=postorder, tree_interval=tree_interval,
                    intervals=intervals, gap=gap)


def propagate_intervals(graph: DiGraph, cover: TreeCover, labeling: Labeling) -> None:
    """Second pass of Section 3.2: propagate intervals along all arcs.

    Visits the nodes of ``graph`` in reverse topological order (the
    cover retains the order it was built from) and, for every arc
    ``(p, q)``, adds all of ``q``'s intervals to ``p``'s set with
    subsumption elimination.  Tree children contribute nothing new — their
    tree intervals nest inside ``p``'s — so only non-tree arcs generate
    surviving intervals, exactly as Lemma 4 describes.

    Mutates ``labeling.intervals`` in place.
    """
    intervals = labeling.intervals
    for p in reversed(cover.order):
        own = intervals[p]
        for q in graph.successors(p):
            own.add_all(intervals[q])


def label_graph(graph: DiGraph, cover: TreeCover, gap: int = 1, *,
                merge: bool = False, propagation: str = "python") -> Labeling:
    """Produce the full compressed-closure labeling for ``graph``.

    Convenience wrapper: postorder numbering, interval propagation, and
    (optionally) the adjacent/overlapping interval merging post-pass.
    ``propagation`` picks the propagation kernel (``"python"``,
    ``"vectorized"``, or ``"parallel"`` — see
    :mod:`repro.core.propagation`); every mode yields the identical
    labeling.
    """
    labeling = assign_postorder(cover, gap)
    if propagation == "python":
        propagate_intervals(graph, cover, labeling)
    else:
        from repro.core.propagation import run_propagation
        run_propagation(graph, cover, labeling, propagation)
    if merge:
        merge_all(labeling)
    return labeling


def merge_all(labeling: Labeling) -> int:
    """Apply interval merging to every node's set; return intervals saved."""
    saved = 0
    for node, interval_set in labeling.intervals.items():
        merged = interval_set.merged()
        saved += len(interval_set) - len(merged)
        labeling.intervals[node] = merged
    return saved


def check_laminar(labeling: Labeling) -> None:
    """Assert the laminar-family property of tree intervals (test helper).

    Any two tree intervals are either disjoint or strictly nested.  The
    incremental insertion algorithm assumes this when carving free number
    ranges out of a parent's interval.
    """
    spans = sorted(labeling.tree_interval.values(), key=lambda iv: (iv.lo, -iv.hi))
    enclosing: List[Interval] = []
    for interval in spans:
        while enclosing and enclosing[-1].hi < interval.lo:
            enclosing.pop()
        if enclosing and interval.hi > enclosing[-1].hi:
            raise GraphError(
                f"tree intervals {enclosing[-1]} and {interval} overlap without nesting"
            )
        enclosing.append(interval)
