"""`open_index` — the front door to every query engine.

One call replaces the four historical loaders: it dispatches on what
``source`` *is* (a graph, an edge-list file, a saved index document, a
durable store directory) and on which ``engine`` the caller wants, then
wires observability into whatever it built.

Dispatch matrix (rows: what ``source`` holds; columns: ``engine=``):

===============  ==========  ==========  ==========  ==========  =====================
source           ``auto``    ``interval``  ``frozen``  ``hybrid``  ``hoplabel``/``chain``
===============  ==========  ==========  ==========  ==========  =====================
graph/edge list  *stats* [1] build       build+freeze  build+wrap  label build
mutable doc      interval    load        load+freeze   load+wrap   build from graph
frozen doc       frozen      error       load          error       error
hybrid doc       hybrid      inner idx   inner+freeze  load        build from graph
hoplabel doc     hoplabel    error       error         error       load / error
chain doc        chain       error       error         error       error / load
store directory  durable (inner engine per the store's config)
===============  ==========  ==========  ==========  ==========  =====================

[1] For graph and edge-list sources ``engine="auto"`` consults
:func:`repro.recommend_engine` over :func:`repro.graph_stats` — the
measured decision rule from ``BENCH_engines.json`` — unless build
keyword arguments (``policy=``, ``numbering=``, ...) are present, which
pin the interval family.  Saved documents always follow their own kind.

Coercion is capability-driven (:meth:`TCEngine.capabilities`), not
``isinstance``: compiled snapshots (``is_frozen_snapshot``) carry no
graph or tree cover, so asking them for any other engine raises
:class:`~repro.errors.ReproError` rather than silently rebuilding;
members of the mutable family re-derive anything from their graph.

Typical use::

    from repro import open_index
    from repro.obs import MetricsRegistry

    engine = open_index("closure.json")                  # follows the file
    frozen = open_index(graph, engine="frozen")          # build + compile
    oracle = open_index(graph, engine="hoplabel")        # 2-hop labels
    store = open_index("store/", durable=True)           # crash-safe
    registry = MetricsRegistry()
    engine = open_index("closure.json", metrics=registry)
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.core.hybrid import HybridTCIndex
from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph

__all__ = ["open_index", "ENGINES", "GRAPH_ENGINE_BUILDERS"]

#: Accepted ``engine=`` values (``"dict"`` is the CLI's historical alias
#: for ``"interval"``).
ENGINES = ("auto", "interval", "dict", "frozen", "hybrid", "hoplabel",
           "chain")

#: The config file that marks a directory as a durable store.
_STORE_CONFIG = "store.json"

#: How a compiled snapshot describes its payload in coercion errors.
_SNAPSHOT_PAYLOAD = {
    "frozen": "frozen buffers",
    "hoplabel": "2-hop labels",
    "chain": "chain-cover labels",
}


def _build_interval(graph, *, backend, gap, **kwargs):
    return IntervalTCIndex.build(graph, gap=gap, **kwargs)


def _build_frozen(graph, *, backend, gap, **kwargs):
    return IntervalTCIndex.build(graph, gap=gap, **kwargs).freeze(
        backend=backend)


def _build_hybrid(graph, *, backend, gap, **kwargs):
    return HybridTCIndex.from_index(
        IntervalTCIndex.build(graph, gap=gap, **kwargs), backend=backend)


def _build_hoplabel(graph, *, backend, gap, **kwargs):
    if kwargs:
        raise ReproError(
            f"engine='hoplabel' accepts no build options; got "
            f"{sorted(kwargs)}")
    from repro.core.hoplabel import HopLabelIndex
    return HopLabelIndex.build(graph)


def _build_chain(graph, *, backend, gap, **kwargs):
    from repro.core.chain_cover import ChainCoverIndex
    return ChainCoverIndex.build(graph, **kwargs)


#: Engine-name -> from-graph builder.  The conformance suite
#: parameterizes over this registry, so registering an engine here is
#: what enlists it in the protocol battery — and *not* registering a
#: name listed in :data:`ENGINES` fails the registry-coverage test.
GRAPH_ENGINE_BUILDERS = {
    "interval": _build_interval,
    "frozen": _build_frozen,
    "hybrid": _build_hybrid,
    "hoplabel": _build_hoplabel,
    "chain": _build_chain,
}


def _normalise_engine(engine: str) -> str:
    if engine == "dict":
        return "interval"
    if engine is None:
        return "auto"
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def _choose_engine(graph, kwargs) -> str:
    """Resolve ``engine="auto"`` for a graph source via cheap statistics.

    Build keyword arguments (``policy=``, ``numbering=``, ...) only make
    sense for the interval family, so their presence pins it.
    """
    if kwargs:
        return "interval"
    from repro.core.select import graph_stats, recommend_engine
    return recommend_engine(graph_stats(graph))


def _build_from_graph(graph, engine: str, *, backend, gap, **kwargs):
    if engine == "auto":
        engine = _choose_engine(graph, kwargs)
    return GRAPH_ENGINE_BUILDERS[engine](
        graph, backend=backend, gap=gap, **kwargs)


def _coerce(loaded, engine: str, *, backend: Optional[str],
            origin: str):
    """Turn whatever was loaded into the requested engine.

    Dispatch is on :meth:`TCEngine.capabilities`: an engine whose
    ``kind`` already matches (or ``engine="auto"``) passes through; a
    compiled snapshot refuses every other coercion; the mutable family
    (an interval index, or a hybrid wrapping one) freezes, wraps, or
    compiles labels from the graph it carries.
    """
    caps = loaded.capabilities()
    if engine == "auto" or engine == caps.kind:
        return loaded
    if caps.is_frozen_snapshot:
        payload = _SNAPSHOT_PAYLOAD.get(caps.kind, f"{caps.kind} artefacts")
        raise ReproError(
            f"{origin} holds {payload} and cannot serve the "
            f"{engine!r} engine; rebuild from the graph or a saved "
            f"mutable index")
    # The mutable family always carries the exact graph: a hybrid's
    # write-through index is the delta-corrected truth.
    index = loaded.index if hasattr(loaded, "index") else loaded
    if engine == "interval":
        return index
    if engine == "frozen":
        return index.freeze(backend=backend)
    if engine == "hybrid":
        return HybridTCIndex.from_index(index, backend=backend)
    return _build_from_graph(index.graph, engine, backend=backend,
                             gap=DEFAULT_GAP)


def _is_store_directory(path: str) -> bool:
    return os.path.isdir(path) and os.path.exists(
        os.path.join(path, _STORE_CONFIG))


def open_index(source, *, engine: str = "auto",
               durable: Optional[bool] = None, metrics=None, tracer=None,
               backend: Optional[str] = None, gap: int = DEFAULT_GAP,
               **kwargs):
    """Open, load, or build a transitive-closure query engine.

    ``source`` may be a :class:`~repro.graph.digraph.DiGraph`, an
    already-constructed engine (coerced per the dispatch matrix), a path
    to a saved index document (``.json``, or a binary ``.rtcf`` frozen
    container — recognised by extension or magic and opened through
    ``mmap``), a path to an edge-list file, or a durable store
    directory.

    ``engine`` selects the representation: ``"interval"`` (updatable),
    ``"frozen"`` (compiled flat arrays), ``"hybrid"`` (frozen base +
    delta overlay), ``"hoplabel"`` (2-hop hub labels) or ``"chain"``
    (chain-cover labels).  ``"auto"`` follows a saved document's kind;
    for graph and edge-list sources it picks from cheap graph statistics
    (:func:`repro.recommend_engine`).  ``durable=True`` forces the
    crash-safe store (``None`` auto-detects a store directory, ``False``
    forbids one).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) and ``tracer`` (a
    :class:`~repro.obs.tracing.QueryTracer`) attach observability to the
    returned engine and everything nested inside it.

    Extra keyword arguments flow to the underlying constructor:
    :meth:`IntervalTCIndex.build` for graph/edge-list sources (e.g.
    ``policy``, ``numbering``), :meth:`ChainCoverIndex.build` for
    ``engine="chain"`` (``method="greedy"|"optimal"``),
    :meth:`DurableTCIndex.open` for durable stores (e.g.
    ``fsync_every``, ``create``).
    """
    from repro.obs.instrument import attach

    engine = _normalise_engine(engine)

    if isinstance(source, (str, Path)):
        path = str(source)
        if durable is None:
            durable = _is_store_directory(path)
        if durable:
            from repro.durability.store import DurableTCIndex
            if engine in ("frozen", "hoplabel", "chain"):
                raise ReproError(
                    "durable stores persist a mutable op-log; "
                    f"engine={engine!r} cannot be journalled — choose "
                    "'interval' or 'hybrid'")
            store_engine = "hybrid" if engine == "hybrid" else "interval"
            kwargs.setdefault("create", not os.path.exists(
                os.path.join(path, _STORE_CONFIG)))
            return DurableTCIndex.open(
                path, engine=store_engine, gap=gap, backend=backend,
                metrics=metrics, tracer=tracer, **kwargs)
        from repro.core.rtcf import sniff_rtcf
        if path.endswith((".json", ".rtcf")) or sniff_rtcf(path):
            from repro.core.serialize import _load_any
            loaded = _load_any(path, backend=backend)
            result = _coerce(loaded, engine, backend=backend, origin=path)
        else:
            from repro.graph.io import load_edge_list
            result = _build_from_graph(load_edge_list(path), engine,
                                       backend=backend, gap=gap, **kwargs)
        return attach(result, metrics=metrics, tracer=tracer)

    if durable:
        raise ReproError(
            "durable=True needs a store directory path, not "
            f"{type(source).__name__}")

    if isinstance(source, DiGraph):
        result = _build_from_graph(source, engine, backend=backend,
                                   gap=gap, **kwargs)
        return attach(result, metrics=metrics, tracer=tracer)

    if hasattr(source, "capabilities") and hasattr(source, "reachable"):
        result = _coerce(source, engine, backend=backend,
                         origin=type(source).__name__)
        return attach(result, metrics=metrics, tracer=tracer)

    raise ReproError(
        f"cannot open {type(source).__name__!r}: expected a graph, an "
        "engine, an index/edge-list path, or a durable store directory")
