"""`open_index` — the front door to every query engine.

One call replaces the four historical loaders (``load_index``,
``load_frozen_index``, ``load_hybrid_index``, ``load_any``, all now
deprecated shims): it dispatches on what ``source`` *is* (a graph, an
edge-list file, a saved index document, a durable store directory) and
on which ``engine`` the caller wants, then wires observability into
whatever it built.

Dispatch matrix (rows: what ``source`` holds; columns: ``engine=``):

===============  =========  ==========  ==========  ==========
source           ``auto``   ``interval``  ``frozen``  ``hybrid``
===============  =========  ==========  ==========  ==========
graph/edge list  interval   build       build+freeze  build+wrap
mutable doc      interval   load        load+freeze   load+wrap
frozen doc       frozen     error       load          error
hybrid doc       hybrid     inner idx   inner+freeze  load
store directory  durable (inner engine per the store's config)
===============  =========  ==========  ==========  ==========

Frozen buffers cannot serve a mutable engine — they hold no tree cover
to update — so that coercion raises :class:`~repro.errors.ReproError`
rather than silently rebuilding.

Typical use::

    from repro import open_index
    from repro.obs import MetricsRegistry

    engine = open_index("closure.json")                  # follows the file
    frozen = open_index(graph, engine="frozen")          # build + compile
    store = open_index("store/", durable=True)           # crash-safe
    registry = MetricsRegistry()
    engine = open_index("closure.json", metrics=registry)
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph

__all__ = ["open_index", "ENGINES"]

#: Accepted ``engine=`` values (``"dict"`` is the CLI's historical alias
#: for ``"interval"``).
ENGINES = ("auto", "interval", "dict", "frozen", "hybrid")

#: The config file that marks a directory as a durable store.
_STORE_CONFIG = "store.json"


def _normalise_engine(engine: str) -> str:
    if engine == "dict":
        return "interval"
    if engine is None:
        return "auto"
    if engine not in ENGINES:
        raise ReproError(
            f"unknown engine {engine!r}; choose from {ENGINES}")
    return engine


def _coerce(loaded, engine: str, *, backend: Optional[str],
            origin: str):
    """Turn whatever was loaded/built into the requested engine."""
    if isinstance(loaded, FrozenTCIndex):
        if engine in ("interval", "hybrid"):
            raise ReproError(
                f"{origin} holds frozen buffers and cannot serve the "
                f"{engine!r} engine; rebuild from the graph or a saved "
                f"mutable index")
        return loaded
    if isinstance(loaded, HybridTCIndex):
        if engine == "interval":
            return loaded.index
        if engine == "frozen":
            return loaded.index.freeze(backend=backend)
        return loaded
    # a mutable IntervalTCIndex
    if engine == "frozen":
        return loaded.freeze(backend=backend)
    if engine == "hybrid":
        return HybridTCIndex.from_index(loaded, backend=backend)
    return loaded


def _is_store_directory(path: str) -> bool:
    return os.path.isdir(path) and os.path.exists(
        os.path.join(path, _STORE_CONFIG))


def open_index(source, *, engine: str = "auto",
               durable: Optional[bool] = None, metrics=None, tracer=None,
               backend: Optional[str] = None, gap: int = DEFAULT_GAP,
               **kwargs):
    """Open, load, or build a transitive-closure query engine.

    ``source`` may be a :class:`~repro.graph.digraph.DiGraph`, an
    already-constructed engine (coerced per the dispatch matrix), a path
    to a saved index document (``.json``, or a binary ``.rtcf`` frozen
    container — recognised by extension or magic and opened through
    ``mmap``), a path to an edge-list file, or a durable store
    directory.

    ``engine`` selects the representation (``"auto"`` follows the
    source); ``durable=True`` forces the crash-safe store (``None``
    auto-detects a store directory, ``False`` forbids one).  ``metrics``
    (a :class:`~repro.obs.metrics.MetricsRegistry`) and ``tracer`` (a
    :class:`~repro.obs.tracing.QueryTracer`) attach observability to the
    returned engine and everything nested inside it.

    Extra keyword arguments flow to the underlying constructor:
    :meth:`IntervalTCIndex.build` for graph/edge-list sources (e.g.
    ``policy``, ``numbering``), :meth:`DurableTCIndex.open` for durable
    stores (e.g. ``fsync_every``, ``create``).
    """
    from repro.obs.instrument import attach

    engine = _normalise_engine(engine)

    if isinstance(source, (str, Path)):
        path = str(source)
        if durable is None:
            durable = _is_store_directory(path)
        if durable:
            from repro.durability.store import DurableTCIndex
            if engine == "frozen":
                raise ReproError(
                    "durable stores persist a mutable op-log; "
                    "engine='frozen' cannot be journalled — choose "
                    "'interval' or 'hybrid'")
            store_engine = "hybrid" if engine == "hybrid" else "interval"
            kwargs.setdefault("create", not os.path.exists(
                os.path.join(path, _STORE_CONFIG)))
            return DurableTCIndex.open(
                path, engine=store_engine, gap=gap, backend=backend,
                metrics=metrics, tracer=tracer, **kwargs)
        from repro.core.rtcf import sniff_rtcf
        if path.endswith((".json", ".rtcf")) or sniff_rtcf(path):
            from repro.core.serialize import _load_any
            loaded = _load_any(path, backend=backend)
        else:
            from repro.graph.io import load_edge_list
            loaded = IntervalTCIndex.build(load_edge_list(path), gap=gap,
                                           **kwargs)
        result = _coerce(loaded, engine, backend=backend, origin=path)
        return attach(result, metrics=metrics, tracer=tracer)

    if durable:
        raise ReproError(
            "durable=True needs a store directory path, not "
            f"{type(source).__name__}")

    if isinstance(source, DiGraph):
        built = IntervalTCIndex.build(source, gap=gap, **kwargs)
        result = _coerce(built, engine, backend=backend, origin="graph")
        return attach(result, metrics=metrics, tracer=tracer)

    if isinstance(source, (IntervalTCIndex, FrozenTCIndex, HybridTCIndex)):
        result = _coerce(source, engine, backend=backend,
                         origin=type(source).__name__)
        return attach(result, metrics=metrics, tracer=tracer)

    raise ReproError(
        f"cannot open {type(source).__name__!r}: expected a graph, an "
        "engine, an index/edge-list path, or a durable store directory")
