"""Command-line interface: build, persist, and query compressed closures.

Installed as ``repro-tc``.  Typical session::

    $ repro-tc build edges.txt -o closure.json
    $ repro-tc query closure.json alice bob
    $ repro-tc successors closure.json alice
    $ repro-tc stats edges.txt
    $ repro-tc bench fig3.9 --nodes 500

Crash-safe sessions go through a durable store directory instead::

    $ repro-tc build edges.txt --durable store.d
    $ repro-tc query --durable store.d alice bob
    $ repro-tc checkpoint store.d
    $ repro-tc log-stats store.d

Edge lists are whitespace-separated ``source destination`` lines with
``#`` comments (see :mod:`repro.graph.io`).
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.bench import (
    chain_comparison,
    compression_by_workload,
    format_histogram,
    format_table,
    interval_census,
    io_traffic,
    merging_benefit,
    query_effort,
    storage_vs_degree,
    storage_vs_size,
    tree_cover_ablation,
    update_cost,
    worst_case_bipartite,
)
from repro.core import explain
from repro.core.batch import apply_diff
from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.core.serialize import (save_frozen_index, save_hybrid_index,
                                  save_index)
from repro.core.tree_cover import POLICIES
from repro.errors import ReproError
from repro.factory import open_index
from repro.graph.io import load_edge_list
from repro.graph.metrics import profile
from repro.storage.model import compare_storage
from repro.testing.fuzzer import DEFAULT_ENGINES


def _load_index_or_build(path: str, *, gap: int = DEFAULT_GAP) -> IntervalTCIndex:
    """Accept either a saved index (.json) or a raw edge list."""
    return open_index(path, engine="interval", gap=gap, durable=False)


def _load_engine(path: str, engine: Optional[str]):
    """Resolve a query engine: a saved index (mutable, frozen buffers, or
    hybrid), or an edge list built on the fly; ``--engine frozen`` /
    ``--engine hybrid`` compiles.  Thin wrapper over
    :func:`repro.open_index`."""
    return open_index(path, engine=engine or "auto", durable=False)


def _add_engine_option(command) -> None:
    command.add_argument(
        "--engine",
        choices=("dict", "frozen", "hybrid", "hoplabel", "chain"),
        default=None,
        help="query engine: 'dict' (the updatable interval-set index), "
             "'frozen' (flat-array snapshot), 'hybrid' (frozen base + "
             "delta overlay), 'hoplabel' (2-hop hub labels), or 'chain' "
             "(chain-cover labels; default follows the file)")


def _add_durable_option(command) -> None:
    command.add_argument(
        "--durable", metavar="PATH", default=None,
        help="operate on a crash-safe durable store directory (write-ahead "
             "logged; see the checkpoint/recover/log-stats commands) "
             "instead of an index file")


def _open_durable(path: str, *, create: bool = False, **kwargs):
    from repro.durability import DurableTCIndex
    return DurableTCIndex.open(path, create=create, **kwargs)


@contextmanager
def _engine_for(args: argparse.Namespace) -> Iterator[object]:
    """A query engine from ``--durable PATH`` or the index positional.

    Durable stores hold an open log handle, so they are closed when the
    command finishes; file-based engines need no teardown.
    """
    if getattr(args, "durable", None):
        store = _open_durable(args.durable)
        try:
            yield store
        finally:
            store.close()
        return
    if not args.index:
        raise ReproError("provide an index/edge-list path or --durable PATH")
    yield _load_engine(args.index, args.engine)


def _cmd_build(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    if args.durable:
        # A durable store is built incrementally so every node insertion
        # is journalled; the tree cover is whatever the Section 4 update
        # algorithms produce (--policy applies only to file output).
        from repro.graph.traversal import topological_order
        with _open_durable(args.durable, create=True, gap=args.gap) as store:
            for node in topological_order(graph):
                store.add_node(node,
                               sorted(graph.predecessors(node), key=repr))
            if args.merge:
                store.merge_intervals()
            checkpoint_path = store.checkpoint()
            stats = store.index.stats()
        print(format_table([stats.as_dict()], title="durable store built"))
        print(f"durable store at {args.durable} "
              f"(checkpoint {checkpoint_path})")
        return 0
    index = IntervalTCIndex.build(graph, policy=args.policy, gap=args.gap,
                                  merge=args.merge,
                                  propagation=args.propagation)
    if args.output:
        save_index(index, args.output)
    stats = index.stats()
    print(format_table([stats.as_dict()], title="index built"))
    if args.output:
        print(f"index written to {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    with _engine_for(args) as engine:
        answer = engine.reachable(args.source, args.destination)
    print("reachable" if answer else "not-reachable")
    return 0 if answer else 1


def _cmd_successors(args: argparse.Namespace) -> int:
    with _engine_for(args) as engine:
        nodes = sorted(engine.successors(args.node, reflexive=False), key=str)
    for node in nodes:
        print(node)
    return 0


def _cmd_predecessors(args: argparse.Namespace) -> int:
    with _engine_for(args) as engine:
        nodes = sorted(engine.predecessors(args.node, reflexive=False),
                       key=str)
    for node in nodes:
        print(node)
    return 0


def _cmd_freeze(args: argparse.Namespace) -> int:
    index = _load_index_or_build(args.index)
    frozen = index.freeze(backend=args.backend)
    format = args.format or ("rtcf" if args.output.endswith(".rtcf")
                             else "json")
    save_frozen_index(frozen, args.output, format=format)
    print(format_table([frozen.stats()], title="frozen index"))
    print(f"frozen buffers written to {args.output} ({format})")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    """Migrate a JSON frozen document to the RTCF zero-copy container."""
    import os
    import time

    from repro.core.rtcf import load_rtcf, save_rtcf, sniff_rtcf
    from repro.core.serialize import _load_frozen_index

    if sniff_rtcf(args.index):
        raise ReproError(f"{args.index} is already an RTCF file")
    loaded = open_index(args.index, durable=False)
    if not isinstance(loaded, FrozenTCIndex):
        raise ReproError(
            f"{args.index} holds a {loaded.capabilities().kind!r} engine; "
            "convert migrates frozen documents — freeze first "
            "(repro-tc freeze INDEX -o OUT.rtcf)")
    output = args.output or (
        args.index[:-len(".json")] + ".rtcf"
        if args.index.endswith(".json") else args.index + ".rtcf")
    written = save_rtcf(loaded, output)

    json_bytes = os.path.getsize(args.index)
    started = time.perf_counter()
    _load_frozen_index(args.index)
    json_load_s = time.perf_counter() - started
    started = time.perf_counter()
    load_rtcf(output, verify=args.verify)
    rtcf_load_s = time.perf_counter() - started
    print(format_table([{
        "json_bytes": json_bytes,
        "rtcf_bytes": written,
        "size_ratio": round(written / json_bytes, 3) if json_bytes else None,
        "json_load_s": round(json_load_s, 6),
        "rtcf_load_s": round(rtcf_load_s, 6),
        "load_speedup": (round(json_load_s / rtcf_load_s, 1)
                         if rtcf_load_s else None),
    }], title=f"converted {args.index} -> {output}"))
    print(f"rtcf index written to {output}")
    return 0


def _cmd_compact(args: argparse.Namespace) -> int:
    loaded = open_index(args.index, durable=False)
    caps = loaded.capabilities()
    if caps.is_frozen_snapshot:
        raise ReproError(
            f"{args.index} holds an immutable {caps.kind!r} snapshot; a "
            f"hybrid engine needs the mutable index — compact a saved "
            f"index or hybrid file instead")
    if caps.kind == "interval":
        # converting an index file IS the initial compaction: snapshot now
        hybrid = HybridTCIndex.from_index(loaded)
        folded = True
    else:
        hybrid = loaded
        folded = hybrid.compact()
    output = args.output or (args.index if args.index.endswith(".json")
                             else None)
    if output:
        save_hybrid_index(hybrid, output)
    row = {key: value for key, value in hybrid.stats().items()
           if key != "base"}
    row["base_nbytes"] = hybrid.base.stats()["nbytes"]
    row["folded"] = folded
    print(format_table([row], title="hybrid engine"))
    if output:
        print(f"hybrid index written to {output}")
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from pathlib import Path
    diff_text = Path(args.diff).read_text()
    if args.durable:
        with _open_durable(args.durable) as store:
            applied = store.apply_diff(diff_text)
            store.index.check_invariants()
            stats = store.index.stats().as_dict()
            last_seq = store.last_seq
        print(format_table(
            [stats], title=f"applied {args.diff} ({applied} ops journalled)"))
        print(f"durable store {args.durable} at sequence {last_seq}")
        return 0
    if not args.index:
        raise ReproError("provide an index/edge-list path or --durable PATH")
    index = _load_index_or_build(args.index)
    passes = apply_diff(index, diff_text)
    index.check_invariants()
    output = args.output or (args.index if args.index.endswith(".json") else None)
    if output:
        save_index(index, output)
    print(format_table([index.stats().as_dict()],
                       title=f"applied {args.diff} ({passes} maintenance passes)"))
    if output:
        print(f"index written to {output}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    index = _load_index_or_build(args.index)
    print(explain.explain_reachability(index, args.source, args.destination))
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    index = _load_index_or_build(args.index)
    print(explain.describe(index, tree=not args.no_tree))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    graph = load_edge_list(args.edges)
    print(format_table([profile(graph).as_dict()],
                       title=f"structural profile of {args.edges}"))
    return 0


def _exercise_metrics(graph):
    """Run a mixed workload over all four engines under one registry.

    Powers ``repro-tc stats --stats-json`` / ``--prom``: every engine
    answers the same query mix (point, batch, semijoin), the hybrid
    absorbs mutations and compacts, and a throwaway durable store
    journals, checkpoints and recovers — so the export shows the full
    metric surface, not just whichever engine the caller happens to use.
    Returns ``(registry, engines)``; keep ``engines`` alive until after
    the snapshot, the health gauges hold weak references.
    """
    import itertools
    import tempfile

    from repro.durability.store import DurableTCIndex
    from repro.graph.traversal import topological_order
    from repro.obs import MetricsRegistry, attach

    registry = MetricsRegistry()
    index = IntervalTCIndex.build(graph)
    frozen = attach(index.freeze().detach(), metrics=registry)
    hybrid = attach(HybridTCIndex.from_index(
        IntervalTCIndex.build(graph)), metrics=registry)
    attach(index, metrics=registry)

    nodes = sorted(graph.nodes(), key=repr)
    pairs = list(itertools.islice(itertools.product(nodes, nodes), 64))
    sample = nodes[:8]
    engines = [index, frozen, hybrid]
    for engine in engines:
        engine.reachable_many(pairs)
        for node in sample:
            engine.reachable(node, nodes[-1])
            engine.successors(node)
            engine.predecessors(node)
        engine.reachable_from_set(sample)
        engine.reaching_set(sample)
        engine.any_reachable(sample, nodes[-1:])

    # exercise the update path + compaction on the hybrid
    fresh = "__stats_probe__"
    hybrid.add_node(fresh, nodes[:1])
    hybrid.reachable(nodes[0], fresh)
    hybrid.remove_node(fresh)
    hybrid.compact()

    with tempfile.TemporaryDirectory() as scratch:
        store = DurableTCIndex.open(scratch, metrics=registry)
        for node in topological_order(graph):
            store.add_node(node, sorted(graph.predecessors(node), key=repr))
        store.reachable_many(pairs)
        store.checkpoint()
        store.close()
        # re-open so recovery metrics are reported too
        store = DurableTCIndex.open(scratch, metrics=registry)
        store.reachable(nodes[0], nodes[-1])
        engines.append(store)
        snapshot = registry.snapshot()
        store.close()
    return registry, engines, snapshot


def _graph_for_stats(path: str):
    """Accept an edge list or a saved index document (.json)."""
    if not str(path).endswith(".json"):
        return load_edge_list(path)
    loaded = open_index(path, durable=False)
    if hasattr(loaded, "graph"):
        return loaded.graph
    if hasattr(loaded, "index"):  # hybrid: delta-corrected truth
        return loaded.index.graph
    raise ReproError(
        f"{path} holds frozen buffers with no graph; pass the edge list "
        "or the saved mutable index instead")


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.core.rtcf import sniff_rtcf, verify_rtcf
    if sniff_rtcf(args.edges):
        # Binary frozen container: verify checksums end to end and
        # report the layout instead of the storage comparison (which
        # needs the graph, and frozen buffers carry none).
        report = verify_rtcf(args.edges)
        sections = report.pop("sections")
        print(format_table([report], title=f"rtcf container {args.edges}"))
        print(format_table(
            [dict(section=name, **row) for name, row in sections.items()],
            title="sections (all CRCs verified)"))
        return 0
    graph = _graph_for_stats(args.edges)
    if args.stats_json or args.prom:
        from repro.obs import render_json, render_prometheus
        registry, engines, snapshot = _exercise_metrics(graph)
        if args.stats_json:
            print(render_json(snapshot))
        else:
            print(render_prometheus(registry), end="")
        del engines
        return 0
    comparison = compare_storage(graph, include_inverse=args.inverse)
    print(format_table([comparison.as_dict()], title=f"storage for {args.edges}"))
    from repro.core.select import graph_stats, recommend_engine
    stats = graph_stats(graph)
    row = stats.as_dict()
    row["recommended_engine"] = recommend_engine(stats)
    print(format_table(
        [row], title="graph statistics (what engine='auto' consults)"))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import QueryTracer, format_trace

    tracer = QueryTracer(capacity=args.last)
    engine = open_index(args.index, engine=args.engine or "auto",
                        durable=False, tracer=tracer)
    answer = engine.reachable(args.source, args.destination)
    engine.successors(args.source)
    if args.json:
        # stdout stays pure JSON; the verdict rides on stderr + exit code
        print(json.dumps(tracer.as_dicts(), indent=2))
        print("reachable" if answer else "not-reachable", file=sys.stderr)
    else:
        for root in tracer.traces():
            print(format_trace(root))
        print("reachable" if answer else "not-reachable")
    return 0 if answer else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    name = args.figure
    if name in ("fig3.9", "fig3.10"):
        rows = storage_vs_degree(args.nodes, range(1, args.max_degree + 1),
                                 seed=args.seed,
                                 include_inverse=(name == "fig3.10"))
        print(format_table(rows, title=f"{name}: storage vs degree, n={args.nodes}"))
    elif name == "fig3.11":
        sizes = [args.nodes // 8, args.nodes // 4, args.nodes // 2, args.nodes]
        print(format_table(storage_vs_size(sizes, seed=args.seed),
                           title="fig3.11: storage vs size, degree 2"))
    elif name == "fig3.12":
        histogram = interval_census(8, sample=args.sample, seed=args.seed)
        print(format_histogram(histogram,
                               title=f"fig3.12: interval census, {args.sample} samples"))
    elif name == "merging":
        print(format_table(merging_benefit(seed=args.seed), title="interval merging"))
    elif name == "worst-case":
        print(format_table(worst_case_bipartite(), title="fig3.6/3.7"))
    elif name == "chains":
        print(format_table(chain_comparison(seed=args.seed), title="Theorem 2"))
    elif name == "ablation":
        print(format_table(tree_cover_ablation(seed=args.seed),
                           title="tree-cover policies"))
    elif name == "updates":
        print(format_table(update_cost(seed=args.seed), title="update costs"))
    elif name == "queries":
        print(format_table(query_effort(args.nodes, seed=args.seed),
                           title="query effort"))
    elif name == "io":
        print(format_table(io_traffic(seed=args.seed), title="I/O traffic"))
    elif name == "workloads":
        print(format_table(
            compression_by_workload(min(args.nodes, 400), seed=args.seed),
            title="compression across graph families"))
    else:  # pragma: no cover - argparse choices prevent this
        raise ReproError(f"unknown figure {name!r}")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    with _open_durable(args.store) as store:
        path = store.checkpoint()
        stats = store.log_stats()
    print(f"checkpoint written to {path}")
    print(json.dumps(stats, indent=2))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    with _open_durable(args.store) as store:
        report = store.recovery_report
        payload = (report.as_dict() if report is not None
                   else {"directory": store.directory})
        payload["nodes"] = len(store)
        payload["resumed_at_seq"] = store.last_seq + 1
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_log_stats(args: argparse.Namespace) -> int:
    from repro.durability import log_stats
    print(json.dumps(log_stats(args.store), indent=2))
    return 0


def _cmd_crash_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.testing.crashfuzz import CrashFuzzFailure, crash_sweep

    started = time.perf_counter()
    try:
        report = crash_sweep(ops=args.ops, seed=args.seed,
                             engine=args.engine,
                             fsync_every=args.fsync_every,
                             occurrences_per_point=args.occurrences,
                             bit_flips=not args.no_bit_flips)
    except CrashFuzzFailure as failure:
        print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    payload = report.as_dict()
    payload["elapsed_s"] = round(elapsed, 2)
    print(json.dumps(payload, indent=2))
    print(f"survived {report.crashes} simulated crashes across "
          f"{len(report.crashed_at)} crash points; recovery matched the "
          f"oracle every time")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.testing.crash import save_crash
    from repro.testing.fuzzer import TraceFailure, fuzz
    from repro.testing.shrink import shrink_trace

    engines = tuple(name.strip() for name in args.engines.split(",")
                    if name.strip())
    started = time.perf_counter()
    try:
        _, report = fuzz(
            num_ops=args.ops, seed=args.seed, num_nodes=args.nodes,
            degree=args.degree, gap=args.gap, numbering=args.numbering,
            workload=args.workload, engines=engines,
            audit_every=args.audit_every, check_every=args.check_every,
            fault=args.inject_fault)
    except TraceFailure as failure:
        elapsed = time.perf_counter() - started
        print(f"FAIL after {elapsed:.2f}s: {failure}", file=sys.stderr)
        if args.no_shrink:
            shrunk = None
        else:
            print("shrinking ...", file=sys.stderr)
            shrunk = shrink_trace(failure, engines=engines,
                                  audit_every=args.audit_every,
                                  check_every=args.check_every)
            failure = shrunk.failure
            print(f"shrunk to {shrunk.ops_after} ops / "
                  f"{shrunk.arcs_after} seed arcs "
                  f"({shrunk.replays} replays): {failure}", file=sys.stderr)
        path = save_crash(failure, args.crash_dir, engines=engines,
                          audit_every=args.audit_every,
                          check_every=args.check_every, shrink=shrunk)
        print(f"crash file written to {path}", file=sys.stderr)
        print("replay with: repro-tc fuzz-replay " + path, file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started
    row = report.as_dict()
    row["elapsed_s"] = round(elapsed, 2)
    print(format_table([row], title=f"fuzz ops={args.ops} seed={args.seed} "
                                    f"workload={args.workload}"))
    print("zero invariant violations, zero differential mismatches")
    return 0


def _cmd_fuzz_replay(args: argparse.Namespace) -> int:
    from repro.testing.crash import replay_crash

    failure, report = replay_crash(args.crash)
    if failure is not None:
        print(f"still fails: {failure}", file=sys.stderr)
        return 1
    print(format_table([report.as_dict()],
                       title=f"replay of {args.crash}: passes"))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import MetricsRegistry, QueryTracer
    from repro.server.app import ReachabilityServer

    async def _run(engine) -> None:
        tracer = QueryTracer(capacity=args.trace_last) if args.trace else None
        server = ReachabilityServer(
            engine,
            metrics=MetricsRegistry(),
            tracer=tracer,
            coalesce=not args.no_coalesce,
            window=args.window_us / 1_000_000.0,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            max_pending_writes=args.max_pending_writes,
            shed_retry_after_ms=args.shed_retry_ms,
            write_high_water=args.write_high_water,
            write_grace=args.write_grace,
        )
        host, port = await server.start(args.host, args.port)
        server.install_signal_handlers()
        mode = "read-only" if server.state.read_only else "read-write"
        coalescing = "off" if args.no_coalesce else "on"
        print(f"serving on {host}:{port} ({mode}, coalescing {coalescing}, "
              f"epoch {server.state.epoch})", flush=True)
        try:
            await server.serve_until_shutdown()
        finally:
            await server.stop()
        print("shut down cleanly", flush=True)

    def _run_cluster(engine) -> None:
        from repro.server.cluster import ClusterServer
        cluster = ClusterServer(
            engine,
            workers=args.workers,
            snapshot_dir=args.snapshot_dir,
            host=args.host,
            port=args.port,
            admin_port=args.metrics_port,
            coalesce=not args.no_coalesce,
            window=args.window_us / 1_000_000.0,
            max_batch=args.max_batch,
            poll_interval=max(args.poll_ms, 0.1) / 1_000.0,
            keep_generations=args.keep_generations,
            max_inflight=args.max_inflight,
            max_pending_writes=args.max_pending_writes,
            shed_retry_after_ms=args.shed_retry_ms,
            write_high_water=args.write_high_water,
            write_grace=args.write_grace,
            ack_timeout=args.ack_timeout,
            ready_timeout=args.ready_timeout,
            join_timeout=args.join_timeout,
        )
        # Fork before any event loop exists in this process.
        host, port = cluster.start()
        mode = "read-only" if cluster.state.read_only else "read-write"
        coalescing = "off" if args.no_coalesce else "on"

        async def _serve() -> None:
            admin_host, admin_port = await cluster.start_parent()
            cluster.install_signal_handlers()
            print(f"serving on {host}:{port} "
                  f"(cluster of {args.workers} workers, {mode}, "
                  f"coalescing {coalescing}, epoch {cluster.state.epoch})",
                  flush=True)
            print(f"cluster admin on {admin_host}:{admin_port} "
                  f"(snapshots in {cluster.store.root})", flush=True)
            await cluster.serve_until_shutdown()

        asyncio.run(_serve())
        print("shut down cleanly", flush=True)

    with _engine_for(args) as engine:
        if args.read_only and not engine.capabilities().is_frozen_snapshot:
            # Pin an immutable snapshot of whatever was loaded; the
            # server then refuses every write with a read-only error.
            if hasattr(engine, "snapshot"):
                engine = engine.snapshot()
            elif hasattr(engine, "freeze"):
                engine = engine.freeze()
            else:
                raise ReproError(
                    f"--read-only cannot snapshot a "
                    f"{type(engine).__name__}")
        try:
            if args.workers > 0:
                _run_cluster(engine)
            else:
                asyncio.run(_run(engine))
        except KeyboardInterrupt:
            print("interrupted; shut down", flush=True)
    return 0


BENCH_CHOICES = ("fig3.9", "fig3.10", "fig3.11", "fig3.12", "merging",
                 "worst-case", "chains", "ablation", "updates", "queries",
                 "io", "workloads")


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-tc`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-tc",
        description="Interval-compressed transitive closure (SIGMOD 1989 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build (and optionally save) an index")
    build.add_argument("edges", help="edge-list file")
    build.add_argument("-o", "--output", help="write the index as JSON")
    build.add_argument("--policy", choices=POLICIES, default="alg1")
    build.add_argument("--gap", type=int, default=DEFAULT_GAP)
    build.add_argument("--merge", action="store_true",
                       help="apply adjacent-interval merging")
    build.add_argument("--propagation",
                       choices=("python", "vectorized", "parallel"),
                       default="python",
                       help="interval-propagation kernel: the sequential "
                            "reference pass, the numpy level kernel, or "
                            "the multiprocessing level-parallel mode "
                            "(identical output; file output only)")
    build.add_argument(
        "--durable", metavar="PATH", default=None,
        help="instead of a JSON file, create a crash-safe durable store "
             "directory at PATH (write-ahead logged + checkpointed)")
    build.set_defaults(handler=_cmd_build)

    query = commands.add_parser("query", help="test reachability between two nodes")
    query.add_argument("index", nargs="?", default=None,
                       help="saved index (.json) or edge-list file "
                            "(omit with --durable)")
    query.add_argument("source")
    query.add_argument("destination")
    _add_engine_option(query)
    _add_durable_option(query)
    query.set_defaults(handler=_cmd_query)

    successors = commands.add_parser("successors", help="list all strict successors")
    successors.add_argument("index", nargs="?", default=None)
    successors.add_argument("node")
    _add_engine_option(successors)
    _add_durable_option(successors)
    successors.set_defaults(handler=_cmd_successors)

    predecessors = commands.add_parser("predecessors",
                                       help="list all strict predecessors")
    predecessors.add_argument("index", nargs="?", default=None)
    predecessors.add_argument("node")
    _add_engine_option(predecessors)
    _add_durable_option(predecessors)
    predecessors.set_defaults(handler=_cmd_predecessors)

    freeze = commands.add_parser(
        "freeze", help="compile an index into frozen flat-array buffers")
    freeze.add_argument("index", help="saved index (.json) or edge-list file")
    freeze.add_argument("-o", "--output", required=True,
                        help="write the frozen buffers (JSON or RTCF)")
    freeze.add_argument("--backend", choices=("numpy", "array"), default=None,
                        help="buffer backend (default: numpy when installed)")
    freeze.add_argument("--format", choices=("json", "rtcf"), default=None,
                        help="output format (default: rtcf when the output "
                             "ends in .rtcf, else json)")
    freeze.set_defaults(handler=_cmd_freeze)

    convert = commands.add_parser(
        "convert",
        help="migrate a JSON frozen index to the RTCF zero-copy binary "
             "container (atomic; prints the size and load-time delta)")
    convert.add_argument("index", help="saved frozen index (.json)")
    convert.add_argument("-o", "--output",
                         help="output path (default: input with .rtcf)")
    convert.add_argument("--verify", action="store_true",
                         help="CRC-check every section of the written file "
                              "during the load-time measurement")
    convert.set_defaults(handler=_cmd_convert)

    compact = commands.add_parser(
        "compact",
        help="fold a hybrid engine's delta into a fresh frozen base "
             "(converts a saved mutable index into a hybrid file)")
    compact.add_argument("index",
                         help="saved hybrid/mutable index (.json) or "
                              "edge-list file")
    compact.add_argument("-o", "--output",
                         help="write the hybrid index (defaults to the "
                              "input when it is a .json file)")
    compact.set_defaults(handler=_cmd_compact)

    update = commands.add_parser(
        "update", help="apply a +/- diff file to an index incrementally")
    update.add_argument("index", nargs="?", default=None,
                        help="saved index (.json) or edge-list file "
                             "(omit with --durable)")
    update.add_argument("diff", help="diff file: '+ a b' adds, '- a b' removes")
    update.add_argument("-o", "--output",
                        help="write the updated index (defaults to the input "
                             "when it is a .json index)")
    _add_durable_option(update)
    update.set_defaults(handler=_cmd_update)

    explain_cmd = commands.add_parser(
        "explain", help="explain one reachability answer")
    explain_cmd.add_argument("index")
    explain_cmd.add_argument("source")
    explain_cmd.add_argument("destination")
    explain_cmd.set_defaults(handler=_cmd_explain)

    describe_cmd = commands.add_parser(
        "describe", help="render the tree cover and interval labels")
    describe_cmd.add_argument("index")
    describe_cmd.add_argument("--no-tree", action="store_true",
                              help="omit the tree rendering")
    describe_cmd.set_defaults(handler=_cmd_describe)

    profile_cmd = commands.add_parser(
        "profile", help="structural metrics of an edge list")
    profile_cmd.add_argument("edges")
    profile_cmd.set_defaults(handler=_cmd_profile)

    stats = commands.add_parser(
        "stats",
        help="storage comparison for an edge list; --stats-json/--prom "
             "instead export engine metrics from a mixed workload")
    stats.add_argument("edges",
                       help="edge-list file or saved index (.json)")
    stats.add_argument("--inverse", action="store_true",
                       help="also measure the inverse closure (O(n^2))")
    stats.add_argument("--stats-json", action="store_true",
                       help="run a mixed workload over all four engines "
                            "and print the metrics snapshot as JSON")
    stats.add_argument("--prom", action="store_true",
                       help="like --stats-json but Prometheus text format")
    stats.set_defaults(handler=_cmd_stats)

    trace = commands.add_parser(
        "trace", help="run a query with tracing on and print the span tree")
    trace.add_argument("index", help="saved index (.json) or edge-list file")
    trace.add_argument("source")
    trace.add_argument("destination")
    _add_engine_option(trace)
    trace.add_argument("--last", type=int, default=16,
                       help="trace ring-buffer capacity (default 16)")
    trace.add_argument("--json", action="store_true",
                       help="print span trees as JSON instead of text")
    trace.set_defaults(handler=_cmd_trace)

    bench = commands.add_parser("bench", help="regenerate a paper figure")
    bench.add_argument("figure", choices=BENCH_CHOICES)
    bench.add_argument("--nodes", type=int, default=1000)
    bench.add_argument("--max-degree", type=int, default=10)
    bench.add_argument("--sample", type=int, default=20000)
    bench.add_argument("--seed", type=int, default=1989)
    bench.set_defaults(handler=_cmd_bench)

    fuzz_cmd = commands.add_parser(
        "fuzz",
        help="differential-fuzz the update algorithms against every engine")
    fuzz_cmd.add_argument("--ops", type=int, default=500,
                          help="number of operations to generate")
    fuzz_cmd.add_argument("--seed", type=int, default=None,
                          help="RNG seed; traces replay from this alone")
    fuzz_cmd.add_argument("--nodes", type=int, default=24,
                          help="seed-graph size")
    fuzz_cmd.add_argument("--degree", type=float, default=1.8,
                          help="seed-graph average out-degree")
    fuzz_cmd.add_argument("--gap", type=int, default=8,
                          help="numbering stride of the index under test")
    fuzz_cmd.add_argument("--numbering", choices=("integer", "fractional"),
                          default="integer")
    fuzz_cmd.add_argument("--workload", default="uniform",
                          help="seed-graph family (see `repro-tc bench "
                               "workloads`)")
    fuzz_cmd.add_argument("--engines",
                          default=",".join(DEFAULT_ENGINES),
                          help="comma-separated differential matrix "
                               "(interval is always implied; also: all)")
    fuzz_cmd.add_argument("--audit-every", type=int, default=1,
                          help="invariant-audit period in applied ops "
                               "(0 disables)")
    fuzz_cmd.add_argument("--check-every", type=int, default=50,
                          help="full differential-check period (0: only at "
                               "the end)")
    fuzz_cmd.add_argument("--crash-dir", default="tests/crashes",
                          help="where to write the crash file on failure")
    fuzz_cmd.add_argument("--no-shrink", action="store_true",
                          help="write the raw failing trace without "
                               "minimisation")
    fuzz_cmd.add_argument("--inject-fault", default=None,
                          help="install a named bug from "
                               "repro.testing.faults (harness self-test)")
    fuzz_cmd.set_defaults(handler=_cmd_fuzz)

    replay_cmd = commands.add_parser(
        "fuzz-replay", help="replay a fuzz crash file")
    replay_cmd.add_argument("crash", help="path to a crash .json")
    replay_cmd.set_defaults(handler=_cmd_fuzz_replay)

    checkpoint_cmd = commands.add_parser(
        "checkpoint",
        help="snapshot a durable store atomically and rotate its op log")
    checkpoint_cmd.add_argument("store", help="durable store directory")
    checkpoint_cmd.set_defaults(handler=_cmd_checkpoint)

    recover_cmd = commands.add_parser(
        "recover",
        help="open a durable store and report what recovery repaired")
    recover_cmd.add_argument("store", help="durable store directory")
    recover_cmd.set_defaults(handler=_cmd_recover)

    log_stats_cmd = commands.add_parser(
        "log-stats",
        help="read-only WAL and checkpoint accounting for a durable store")
    log_stats_cmd.add_argument("store", help="durable store directory")
    log_stats_cmd.set_defaults(handler=_cmd_log_stats)

    crash_cmd = commands.add_parser(
        "crash-fuzz",
        help="kill a durable store at every registered crash point and "
             "verify recovery against the set-closure oracle")
    crash_cmd.add_argument("--ops", type=int, default=500,
                           help="length of the randomized op stream")
    crash_cmd.add_argument("--seed", type=int, default=7,
                           help="RNG seed for the op stream and torn tails")
    crash_cmd.add_argument("--engine", choices=("interval", "hybrid"),
                           default="interval")
    crash_cmd.add_argument("--fsync-every", type=int, default=1,
                           help="WAL fsync batch size under test (loss "
                                "bound is fsync_every - 1 acknowledged ops)")
    crash_cmd.add_argument("--occurrences", type=int, default=2,
                           help="crash occurrences exercised per point")
    crash_cmd.add_argument("--no-bit-flips", action="store_true",
                           help="skip the bit-rot (flip one byte) phase")
    crash_cmd.set_defaults(handler=_cmd_crash_fuzz)

    serve = commands.add_parser(
        "serve",
        help="serve reachability over TCP (framed JSON + minimal HTTP)")
    serve.add_argument("index", nargs="?", default=None,
                       help="saved index (.json/.rtcf) or edge-list file")
    _add_engine_option(serve)
    _add_durable_option(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7411,
                       help="listening port (0 picks a free one)")
    serve.add_argument("--read-only", action="store_true",
                       help="serve a pinned immutable snapshot; refuse "
                            "all writes")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="answer each check individually instead of "
                            "batching concurrent checks through one "
                            "reachable_many call")
    serve.add_argument("--window-us", type=float, default=0.0,
                       help="coalescing gather window, microseconds; 0 "
                            "(the default) gathers for one scheduler "
                            "pass, right for request-response clients — "
                            "set a few hundred for open-loop traffic")
    serve.add_argument("--max-batch", type=int, default=512,
                       help="drain a batch early past this many pending "
                            "checks (default 512)")
    serve.add_argument("--trace", action="store_true",
                       help="record per-request span trees (see the "
                            "'trace' command)")
    serve.add_argument("--trace-last", type=int, default=64,
                       help="trace ring-buffer capacity (default 64)")
    serve.add_argument("--workers", type=int, default=0,
                       help="preforked read-worker count; 0 (default) "
                            "serves single-process, N>=1 runs a cluster "
                            "of N workers sharing the port plus one "
                            "writer process publishing RTCF snapshot "
                            "generations")
    serve.add_argument("--snapshot-dir", default=None,
                       help="directory for cluster snapshot generations "
                            "(gen-<epoch>.rtcf + CURRENT); a private "
                            "tempdir when omitted")
    serve.add_argument("--metrics-port", type=int, default=0,
                       help="cluster admin/metrics port (merged "
                            "Prometheus view + /healthz); 0 picks a "
                            "free one")
    serve.add_argument("--poll-ms", type=float, default=20.0,
                       help="worker CURRENT-pointer poll interval, "
                            "milliseconds (default 20)")
    serve.add_argument("--keep-generations", type=int, default=2,
                       help="snapshot generations retained after "
                            "garbage collection (default 2)")
    serve.add_argument("--max-inflight", type=int, default=0,
                       help="admission cap on concurrently admitted "
                            "requests; excess is shed with an "
                            "'overloaded' error carrying retry_after_ms "
                            "(0 = unlimited, the default)")
    serve.add_argument("--max-pending-writes", type=int, default=0,
                       help="cap on queued-but-unapplied writes; a full "
                            "queue sheds new writes with 'overloaded' "
                            "(0 = unlimited, the default)")
    serve.add_argument("--shed-retry-ms", type=int, default=50,
                       help="retry_after_ms hint carried by shed "
                            "responses (default 50)")
    serve.add_argument("--write-high-water", type=int, default=0,
                       help="per-connection send-buffer high-water "
                            "mark, bytes; connections whose buffer "
                            "will not drain within --write-grace are "
                            "aborted (0 = disabled, the default)")
    serve.add_argument("--write-grace", type=float, default=10.0,
                       help="seconds a full send buffer may take to "
                            "drain before the connection is aborted "
                            "(default 10)")
    serve.add_argument("--ack-timeout", type=float, default=30.0,
                       help="cluster: seconds a worker waits for an "
                            "acked generation to become visible in its "
                            "mmap (default 30)")
    serve.add_argument("--ready-timeout", type=float, default=30.0,
                       help="cluster: seconds to wait for a forked "
                            "worker to start accepting (default 30)")
    serve.add_argument("--join-timeout", type=float, default=10.0,
                       help="cluster: seconds to wait for terminated "
                            "workers to exit before SIGKILL "
                            "(default 10)")
    serve.set_defaults(handler=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
