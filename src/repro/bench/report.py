"""Plain-text tables for experiment output.

The paper's figures are line plots; a terminal reproduction prints the
underlying series as aligned tables so the trends (who wins, where the
crossovers fall) are readable in CI logs and ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict rows as an aligned, pipe-separated text table."""
    rows = list(rows)
    if columns is None:
        columns = list(rows[0]) if rows else []
    headers = [str(column) for column in columns]
    body = [[_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [max(len(headers[i]), *(len(line[i]) for line in body))
              if body else len(headers[i]) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(header.ljust(width) for header, width in zip(headers, widths)))
    lines.append("-+-".join("-" * width for width in widths))
    for line in body:
        lines.append(" | ".join(cell.rjust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_histogram(histogram: Dict[int, int], *, bar_width: int = 50,
                     title: Optional[str] = None) -> str:
    """Render an integer histogram as an ASCII bar chart (Figure 3.12)."""
    lines = []
    if title:
        lines.append(title)
    if not histogram:
        lines.append("(empty)")
        return "\n".join(lines)
    peak = max(histogram.values())
    label_width = max(len(str(key)) for key in histogram)
    count_width = max(len(str(value)) for value in histogram.values())
    for key in sorted(histogram):
        count = histogram[key]
        bar = "#" * max(1, round(bar_width * count / peak)) if count else ""
        lines.append(f"{str(key).rjust(label_width)} | {str(count).rjust(count_width)} | {bar}")
    return "\n".join(lines)


def ascii_chart(rows: Sequence[Dict[str, object]], x: str,
                series: Sequence[str], *, width: int = 64, height: int = 16,
                title: Optional[str] = None,
                log_y: bool = False) -> str:
    """Render numeric series as an ASCII line chart (the figures are plots).

    Each series gets its own marker; points are placed on a
    ``width x height`` grid scaled to the data range (optionally log-scaled
    on y, which matches how the paper's storage figures are usually read).
    """
    markers = "*o+x#@%&"
    points: Dict[str, list] = {name: [] for name in series}
    xs: List[float] = []
    for row in rows:
        x_value = row.get(x)
        if not isinstance(x_value, (int, float)):
            continue
        xs.append(float(x_value))
        for name in series:
            value = row.get(name)
            points[name].append(float(value)
                                if isinstance(value, (int, float)) else None)
    if not xs:
        return "(no numeric data)"

    import math

    def squash(value: float) -> float:
        return math.log10(value) if log_y and value > 0 else value

    y_values = [squash(v) for values in points.values()
                for v in values if v is not None and (not log_y or v > 0)]
    if not y_values:
        return "(no numeric data)"
    y_lo, y_hi = min(y_values), max(y_values)
    x_lo, x_hi = min(xs), max(xs)
    y_span = (y_hi - y_lo) or 1.0
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for name, marker in zip(series, markers):
        for x_value, y_value in zip(xs, points[name]):
            if y_value is None or (log_y and y_value <= 0):
                continue
            column = round((x_value - x_lo) / x_span * (width - 1))
            row_position = round((squash(y_value) - y_lo) / y_span * (height - 1))
            grid[height - 1 - row_position][column] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_hi if log_y else y_hi:.3g}"
    bottom_label = f"{10 ** y_lo if log_y else y_lo:.3g}"
    label_width = max(len(top_label), len(bottom_label))
    for position, row_cells in enumerate(grid):
        if position == 0:
            label = top_label.rjust(label_width)
        elif position == height - 1:
            label = bottom_label.rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |{''.join(row_cells)}")
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(" " * label_width + f"  {x_lo:g}".ljust(width // 2)
                 + f"{x} ->".center(width // 4)
                 + f"{x_hi:g}".rjust(width // 4))
    legend = "   ".join(f"{marker} {name}"
                        for name, marker in zip(series, markers))
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def print_report(rows: Iterable[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> None:
    """Print a table (convenience wrapper used by benches and examples)."""
    print(format_table(list(rows), columns, title))


def summarize_series(rows: Sequence[Dict[str, object]], x: str,
                     series: Sequence[str]) -> List[str]:
    """One-line trend summaries ("compressed_multiple: 2.1 -> 0.6 (falling)")."""
    summaries = []
    for name in series:
        values = [row[name] for row in rows if isinstance(row.get(name), (int, float))]
        if len(values) < 2:
            continue
        direction = "rising" if values[-1] > values[0] else (
            "falling" if values[-1] < values[0] else "flat")
        summaries.append(
            f"{name}: {values[0]:.3f} @ {x}={rows[0][x]} -> "
            f"{values[-1]:.3f} @ {x}={rows[-1][x]} ({direction})"
        )
    return summaries
