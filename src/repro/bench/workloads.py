"""A named registry of the synthetic workloads used across experiments.

Benchmarks, tests, the CLI, and the fuzz harness all need "give me graph
family X at size n, degree d".  Registering the families by name keeps
those call sites consistent and lets new experiments sweep *across*
families (the per-family compression profile is itself informative:
deep/narrow graphs sit near the tree bound, wide/shallow ones drift
toward Figure 3.6).

Every factory is deterministic given its ``seed`` argument, which may be
an ``int`` *or* an explicit :class:`random.Random` instance — the fuzz
harness threads one shared generator through seed-graph construction so
whole traces replay from a single integer.  No module-global randomness
is consulted anywhere.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Union

from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bipartite_worst_case,
    grid_dag,
    layered_dag,
    random_dag,
    random_dag_local,
    random_hierarchy,
    random_tree,
)

#: Seeds accepted everywhere: a generator, an int, or None (fresh entropy).
RandomLike = Union[random.Random, int, None]


@dataclass(frozen=True)
class Workload:
    """A named graph family: ``make(num_nodes, degree, seed) -> DiGraph``."""

    name: str
    description: str
    make: Callable[[int, float, RandomLike], DiGraph]


def _uniform(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    return random_dag(num_nodes, degree, seed)


def _uniform_connected(num_nodes: int, degree: float,
                       seed: RandomLike) -> DiGraph:
    return random_dag(num_nodes, degree, seed, connect=True)


def _local(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    return random_dag_local(num_nodes, degree, seed, window=20)


def _tree(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    max_children = max(2, round(degree)) if degree else None
    return random_tree(num_nodes, seed, max_children=max_children)


def _hierarchy(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    probability = min(0.9, max(0.0, degree - 1.0))
    return random_hierarchy(num_nodes, seed,
                            multi_parent_probability=probability)


def _layered(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    tiers = max(2, num_nodes // 25)
    per_tier = max(1, num_nodes // tiers)
    sizes = [per_tier] * tiers
    sizes[-1] += num_nodes - per_tier * tiers
    return layered_dag(sizes, degree, seed)


def _bipartite(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    half = max(1, num_nodes // 2)
    return bipartite_worst_case(half, num_nodes - half)


def _grid(num_nodes: int, degree: float, seed: RandomLike) -> DiGraph:
    side = max(1, round(num_nodes ** 0.5))
    return grid_dag(side, side)


WORKLOADS: Dict[str, Workload] = {
    workload.name: workload for workload in (
        Workload("uniform", "arcs uniform over all forward pairs "
                            "(the Figure 3.9-3.11 model)", _uniform),
        Workload("uniform-connected", "uniform arcs, single weak component",
                 _uniform_connected),
        Workload("local", "arcs bounded to a topological window of 20 "
                          "(hierarchy-shaped; the strong Figure 3.11 regime)",
                 _local),
        Workload("tree", "random rooted tree (the Section 3.1 best case)",
                 _tree),
        Workload("hierarchy", "IS-A-style multiple-inheritance hierarchy "
                              "(Section 2.1)", _hierarchy),
        Workload("layered", "layer-to-layer bundles (Lassie-shaped)",
                 _layered),
        Workload("bipartite", "complete bipartite worst case (Figure 3.6)",
                 _bipartite),
        Workload("grid", "2-D grid with right/down arcs (dense closure)",
                 _grid),
    )
}


def make_workload(name: str, num_nodes: int, degree: float = 2.0,
                  seed: RandomLike = 1989) -> DiGraph:
    """Instantiate a registered workload by name.

    ``seed`` may be an integer (the historical interface) or a live
    :class:`random.Random`, in which case the family draws from it
    directly and the caller's stream advances deterministically.
    """
    try:
        workload = WORKLOADS[name]
    except KeyError:
        raise ReproError(
            f"unknown workload {name!r}; known: {sorted(WORKLOADS)}") from None
    return workload.make(num_nodes, degree, seed)


def workload_names() -> List[str]:
    """All registered workload names, sorted."""
    return sorted(WORKLOADS)
