"""Experiment drivers regenerating every figure of the paper's evaluation.

Each function returns plain data (lists of dict rows or histograms) so it
can be unit-tested, pretty-printed by the ``benchmarks/`` harness, and
recorded in ``EXPERIMENTS.md``.  The mapping to the paper:

========================  ====================================================
Function                  Paper artifact
========================  ====================================================
``storage_vs_degree``     Figures 3.9 and 3.10 (with ``include_inverse``)
``storage_vs_size``       Figure 3.11
``interval_census``       Figure 3.12 (exhaustive <= 5 nodes, sampled above)
``merging_benefit``       Section 3.3, "interval merging gains < 5 %"
``worst_case_bipartite``  Figures 3.6 / 3.7
``chain_comparison``      Theorem 2 (tree cover vs. chain cover)
``tree_cover_ablation``   Design ablation: Alg1 vs. naive covers
``update_cost``           Section 4 (incremental vs. rebuild)
``query_effort``          Section 2.1/6 (lookup vs. pointer chasing)
``io_traffic``            Section 2.2 (page faults, paged stores)
========================  ====================================================
"""

from __future__ import annotations

import random
import time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines import (
    ChainTCIndex,
    FullTCIndex,
    InverseTCIndex,
    PointerChasingIndex,
    SchubertIndex,
)
from repro.core.index import IntervalTCIndex
from repro.core.tree_cover import POLICIES
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    bipartite_with_intermediary,
    bipartite_worst_case,
    enumerate_dags,
    random_dag,
    random_dag_local,
    sample_dags,
)
from repro.storage.pager import BufferPool, PagedIntervalStore, PagedSuccessorStore

Row = Dict[str, object]


# ----------------------------------------------------------------------
# Figures 3.9 / 3.10 — storage vs. average degree
# ----------------------------------------------------------------------
def storage_vs_degree(num_nodes: int = 1000,
                      degrees: Sequence[float] = tuple(range(1, 11)),
                      *, seed: int = 1989, trials: int = 1,
                      include_inverse: bool = False) -> List[Row]:
    """Storage (as a multiple of the original relation) per average degree.

    The paper's observations this should reproduce: the full closure
    explodes between degree 1 and ~3 and then flattens; the compressed
    closure rises less, peaks, then *decreases* with degree, eventually
    dropping below the original relation itself; the inverse closure
    starts huge and falls fast but stays above the compressed closure.
    """
    rows: List[Row] = []
    for degree in degrees:
        accumulator = {"relation": 0, "full": 0, "compressed": 0, "inverse": 0}
        for trial in range(trials):
            graph = random_dag(num_nodes, degree, seed + 7919 * trial + round(97 * degree))
            accumulator["relation"] += graph.num_arcs
            accumulator["full"] += FullTCIndex.build(graph).storage_units
            accumulator["compressed"] += IntervalTCIndex.build(graph, gap=1).storage_units
            if include_inverse:
                accumulator["inverse"] += InverseTCIndex.build(graph).storage_units
        relation = accumulator["relation"] / trials
        row: Row = {
            "degree": degree,
            "relation": round(relation),
            "full_closure": round(accumulator["full"] / trials),
            "compressed": round(accumulator["compressed"] / trials),
            "full_multiple": accumulator["full"] / accumulator["relation"],
            "compressed_multiple": accumulator["compressed"] / accumulator["relation"],
        }
        if include_inverse:
            row["inverse"] = round(accumulator["inverse"] / trials)
            row["inverse_multiple"] = accumulator["inverse"] / accumulator["relation"]
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figure 3.11 — storage vs. number of nodes at fixed degree
# ----------------------------------------------------------------------
def storage_vs_size(sizes: Sequence[int] = (125, 250, 500, 1000, 2000),
                    degree: float = 2.0, *, seed: int = 1989,
                    trials: int = 1, workload: str = "uniform") -> List[Row]:
    """Storage multiples per graph size at fixed average degree.

    Expected shape (Figure 3.11): the full-closure multiple grows with
    graph size while the compressed multiple grows far slower — better
    compression for larger graphs.

    ``workload`` selects the random-DAG model: ``"uniform"`` places arcs
    uniformly over all forward pairs (both curves then grow roughly in
    parallel); ``"local"`` bounds arcs to a topological window of 20,
    the regime where the paper's better-compression-at-scale claim shows
    up strongly (see EXPERIMENTS.md, E-3.11, for the calibration notes).
    """
    if workload not in ("uniform", "local"):
        raise ValueError(f"unknown workload {workload!r}")
    rows: List[Row] = []
    for size in sizes:
        accumulator = {"relation": 0, "full": 0, "compressed": 0}
        for trial in range(trials):
            trial_seed = seed + 104729 * trial + size
            if workload == "uniform":
                graph = random_dag(size, degree, trial_seed)
            else:
                graph = random_dag_local(size, degree, trial_seed, window=20)
            accumulator["relation"] += graph.num_arcs
            accumulator["full"] += FullTCIndex.build(graph).storage_units
            accumulator["compressed"] += IntervalTCIndex.build(graph, gap=1).storage_units
        rows.append({
            "nodes": size,
            "relation": round(accumulator["relation"] / trials),
            "full_closure": round(accumulator["full"] / trials),
            "compressed": round(accumulator["compressed"] / trials),
            "full_multiple": accumulator["full"] / accumulator["relation"],
            "compressed_multiple": accumulator["compressed"] / accumulator["relation"],
        })
    return rows


# ----------------------------------------------------------------------
# Figure 3.12 — interval-count census over small DAGs
# ----------------------------------------------------------------------
def interval_census(num_nodes: int = 8, *, sample: Optional[int] = 20000,
                    seed: int = 1989) -> Dict[int, int]:
    """Histogram: total interval count -> number of DAGs.

    The paper enumerates all 8-node DAGs; that is 2^28 fixed-order graphs,
    so for ``num_nodes > 5`` we draw ``sample`` graphs uniformly instead
    (see DESIGN.md, "Substitutions").  Pass ``sample=None`` to force
    exhaustive enumeration (practical only for ``num_nodes <= 5``).

    The expected shape: sharply concentrated just above ``n`` intervals,
    with the quadratic worst cases (Figure 3.6) vanishingly rare.
    """
    histogram: Dict[int, int] = {}
    if sample is None:
        graphs: Iterable[DiGraph] = enumerate_dags(num_nodes)
    else:
        graphs = sample_dags(num_nodes, sample, seed)
    for graph in graphs:
        index = IntervalTCIndex.build(graph, gap=1)
        count = index.num_intervals
        histogram[count] = histogram.get(count, 0) + 1
    return histogram


# ----------------------------------------------------------------------
# Section 3.3 — benefit of adjacent-interval merging
# ----------------------------------------------------------------------
def merging_benefit(sizes: Sequence[int] = (100, 200, 400),
                    degrees: Sequence[float] = (1, 2, 3, 5),
                    *, seed: int = 1989) -> List[Row]:
    """Interval counts with and without merging, per (size, degree) cell.

    The paper: "the additional compression obtained was rather small,
    usually less than 5%".
    """
    rows: List[Row] = []
    for size in sizes:
        for degree in degrees:
            graph = random_dag(size, degree, seed + size * 31 + round(degree * 7))
            index = IntervalTCIndex.build(graph, gap=1)
            before = index.num_intervals
            merged_total = sum(len(interval_set.merged())
                               for interval_set in index.intervals.values())
            ordered_total = IntervalTCIndex.build(
                graph, gap=1, merge=True, merge_ordering=True).num_intervals
            saving = 0.0 if before == 0 else 100.0 * (before - merged_total) / before
            ordered_saving = 0.0 if before == 0 else \
                100.0 * (before - ordered_total) / before
            rows.append({
                "nodes": size,
                "degree": degree,
                "intervals": before,
                "merged_intervals": merged_total,
                "saving_percent": saving,
                "ordered_merged": ordered_total,
                "ordered_saving_percent": ordered_saving,
            })
    return rows


# ----------------------------------------------------------------------
# Figures 3.6 / 3.7 — the bipartite worst case and its fix
# ----------------------------------------------------------------------
def worst_case_bipartite(num_sources: int = 15, num_sinks: int = 16) -> List[Row]:
    """Interval counts for K(m, k) with and without the intermediary node.

    K(m, k) forces about ``(m-1)(k-1) + extras`` intervals (Theta(n^2/4)
    at the balanced point); inserting one hub node (Figure 3.7) restores
    O(n).
    """
    direct = IntervalTCIndex.build(bipartite_worst_case(num_sources, num_sinks), gap=1)
    hubbed = IntervalTCIndex.build(
        bipartite_with_intermediary(num_sources, num_sinks), gap=1)
    total_nodes = num_sources + num_sinks
    return [
        {"graph": f"K({num_sources},{num_sinks}) direct", "nodes": total_nodes,
         "intervals": direct.num_intervals, "storage_units": direct.storage_units},
        {"graph": f"K({num_sources},{num_sinks}) + hub", "nodes": total_nodes + 1,
         "intervals": hubbed.num_intervals, "storage_units": hubbed.storage_units},
    ]


# ----------------------------------------------------------------------
# Theorem 2 — tree cover vs. chain cover
# ----------------------------------------------------------------------
def chain_comparison(sizes: Sequence[int] = (50, 100, 200),
                     degrees: Sequence[float] = (1.5, 2, 3),
                     *, seed: int = 1989,
                     include_schubert: bool = True) -> List[Row]:
    """Interval count vs. chain-entry count (greedy and optimal chains).

    Theorem 2 predicts ``intervals <= optimal chain entries`` on every
    graph; the Schubert multi-hierarchy storage is reported alongside as
    the second related-work comparator.
    """
    rows: List[Row] = []
    for size in sizes:
        for degree in degrees:
            graph = random_dag(size, degree, seed + size * 13 + round(degree * 11))
            index = IntervalTCIndex.build(graph, gap=1)
            greedy = ChainTCIndex.build(graph, "greedy")
            optimal = ChainTCIndex.build(graph, "optimal")
            row: Row = {
                "nodes": size,
                "degree": degree,
                "intervals": index.num_intervals,
                "chain_entries_greedy": greedy.num_entries,
                "chain_entries_optimal": optimal.num_entries,
                "chains_optimal": optimal.num_chains,
            }
            if include_schubert:
                schubert = SchubertIndex.build(graph)
                row["schubert_intervals"] = (
                    schubert.num_hierarchies * graph.num_nodes)
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Ablation — does the Alg1 cover choice matter?
# ----------------------------------------------------------------------
def tree_cover_ablation(sizes: Sequence[int] = (100, 300),
                        degrees: Sequence[float] = (2, 4),
                        *, seed: int = 1989) -> List[Row]:
    """Interval counts under every tree-cover policy; Alg1 must be minimal."""
    rows: List[Row] = []
    for size in sizes:
        for degree in degrees:
            graph = random_dag(size, degree, seed + size * 17 + round(degree * 3))
            row: Row = {"nodes": size, "degree": degree}
            for policy in POLICIES:
                index = IntervalTCIndex.build(graph, policy=policy, gap=1, rng=seed)
                row[policy] = index.num_intervals
            rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Section 4 — incremental update cost vs. rebuild
# ----------------------------------------------------------------------
def update_cost(num_nodes: int = 500, degree: float = 2.0, *,
                batch: int = 100, seed: int = 1989,
                gap: int = 32) -> List[Row]:
    """Wall-clock cost of incremental maintenance vs. rebuild-per-update.

    Three write workloads from Section 4: new-node insertion (tree arc),
    hierarchy refinement (node + non-tree arcs), and non-tree arc
    insertion between existing nodes.
    """
    rng = random.Random(seed)
    rows: List[Row] = []

    def timed(function) -> float:
        start = time.perf_counter()
        function()
        return time.perf_counter() - start

    # -- incremental: one index absorbs the whole batch ---------------
    base = random_dag(num_nodes, degree, seed)
    index = IntervalTCIndex.build(base, gap=gap)
    nodes = list(base.nodes())

    def incremental_inserts() -> None:
        for step in range(batch):
            index.add_node(("new", step), parents=[rng.choice(nodes)])

    incremental_seconds = timed(incremental_inserts)

    def incremental_arcs() -> None:
        added = 0
        while added < batch:
            source, destination = rng.choice(nodes), rng.choice(nodes)
            if source == destination or index.reachable(destination, source) \
                    or index.graph.has_arc(source, destination):
                continue
            index.add_arc(source, destination)
            added += 1

    incremental_arc_seconds = timed(incremental_arcs)

    # -- rebuild: recompute from scratch after every update ------------
    rebuild_graph = random_dag(num_nodes, degree, seed)
    rebuild_nodes = list(rebuild_graph.nodes())
    rebuild_rng = random.Random(seed)

    def rebuild_inserts() -> None:
        for step in range(batch):
            parent = rebuild_rng.choice(rebuild_nodes)
            rebuild_graph.add_node(("new", step))
            rebuild_graph.add_arc(parent, ("new", step))
            IntervalTCIndex.build(rebuild_graph, gap=gap)

    rebuild_seconds = timed(rebuild_inserts)

    rows.append({"workload": f"insert {batch} new nodes",
                 "incremental_s": incremental_seconds,
                 "rebuild_s": rebuild_seconds,
                 "speedup": rebuild_seconds / incremental_seconds
                 if incremental_seconds else float("inf")})
    rows.append({"workload": f"insert {batch} non-tree arcs",
                 "incremental_s": incremental_arc_seconds,
                 "rebuild_s": rebuild_seconds,
                 "speedup": rebuild_seconds / incremental_arc_seconds
                 if incremental_arc_seconds else float("inf")})
    return rows


# ----------------------------------------------------------------------
# Sections 2.1 / 6 — query effort: lookup vs. pointer chasing
# ----------------------------------------------------------------------
def query_effort(num_nodes: int = 1000, degree: float = 3.0, *,
                 queries: int = 2000, seed: int = 1989) -> List[Row]:
    """Per-query work: index range comparisons vs. DFS nodes visited."""
    graph = random_dag(num_nodes, degree, seed)
    index = IntervalTCIndex.build(graph, gap=1)
    chaser = PointerChasingIndex.build(graph)
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    pairs = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(queries)]

    start = time.perf_counter()
    index_answers = [index.reachable(u, v) for u, v in pairs]
    index_seconds = time.perf_counter() - start

    chaser.stats.reset()
    start = time.perf_counter()
    chase_answers = [chaser.reachable(u, v) for u, v in pairs]
    chase_seconds = time.perf_counter() - start
    assert index_answers == chase_answers

    return [{
        "queries": queries,
        "index_s": index_seconds,
        "pointer_chasing_s": chase_seconds,
        "speedup": chase_seconds / index_seconds if index_seconds else float("inf"),
        "dfs_nodes_visited": chaser.stats.nodes_visited,
        "dfs_nodes_per_query": chaser.stats.nodes_visited / queries,
        "positive_fraction": sum(index_answers) / queries,
    }]


# ----------------------------------------------------------------------
# Extension — compression profile across graph families
# ----------------------------------------------------------------------
def compression_by_workload(num_nodes: int = 300, degree: float = 2.0, *,
                            seed: int = 1989,
                            names: Optional[Sequence[str]] = None) -> List[Row]:
    """Structural profile + compression for every registered workload.

    Shows *why* graphs compress: deep/narrow families sit near the
    2-units-per-node tree bound, wide/shallow ones drift toward the
    Figure 3.6 worst case.
    """
    from repro.bench.workloads import make_workload, workload_names
    from repro.graph.metrics import profile

    rows: List[Row] = []
    for name in (names if names is not None else workload_names()):
        graph = make_workload(name, num_nodes, degree, seed)
        shape = profile(graph)
        index = IntervalTCIndex.build(graph, gap=1)
        closure_pairs = shape.reachable_pairs
        rows.append({
            "workload": name,
            "nodes": shape.num_nodes,
            "arcs": shape.num_arcs,
            "depth": shape.depth,
            "width": shape.level_width,
            "closure_pairs": closure_pairs,
            "intervals": index.num_intervals,
            "units": index.storage_units,
            "units_per_node": index.storage_units / max(1, shape.num_nodes),
            "compression": closure_pairs / index.storage_units
            if index.storage_units else float("inf"),
        })
    return rows


# ----------------------------------------------------------------------
# Section 2.2 — I/O traffic through the simulated buffer pool
# ----------------------------------------------------------------------
def io_traffic(num_nodes: int = 500, degree: float = 3.0, *,
               queries: int = 2000, pool_pages: int = 8,
               page_capacity: int = 128, seed: int = 1989) -> List[Row]:
    """Page faults answering the same query load from both paged layouts."""
    graph = random_dag(num_nodes, degree, seed)
    closure = FullTCIndex.build(graph)
    index = IntervalTCIndex.build(graph, gap=1)
    full_pool = BufferPool(pool_pages)
    interval_pool = BufferPool(pool_pages)
    full_store = PagedSuccessorStore(closure, list(graph.nodes()),
                                     pool=full_pool, page_capacity=page_capacity)
    interval_store = PagedIntervalStore(index, pool=interval_pool,
                                        page_capacity=page_capacity)
    rng = random.Random(seed)
    nodes = list(graph.nodes())
    for _ in range(queries):
        source, destination = rng.choice(nodes), rng.choice(nodes)
        assert full_store.reachable(source, destination) == \
            interval_store.reachable(source, destination)
    return [
        {"layout": "full closure", "pages": full_store.num_pages,
         "units": full_store.total_units,
         "page_faults": full_pool.counters.page_faults,
         "hit_ratio": full_pool.counters.hit_ratio},
        {"layout": "compressed closure", "pages": interval_store.num_pages,
         "units": interval_store.total_units,
         "page_faults": interval_pool.counters.page_faults,
         "hit_ratio": interval_pool.counters.hit_ratio},
    ]
