"""Experiment drivers and reporting for the paper's evaluation section."""

from repro.bench.experiments import (
    chain_comparison,
    compression_by_workload,
    interval_census,
    io_traffic,
    merging_benefit,
    query_effort,
    storage_vs_degree,
    storage_vs_size,
    tree_cover_ablation,
    update_cost,
    worst_case_bipartite,
)
from repro.bench.report import (
    ascii_chart,
    format_histogram,
    format_table,
    print_report,
    summarize_series,
)
from repro.bench.workloads import WORKLOADS, make_workload, workload_names

__all__ = [
    "WORKLOADS",
    "ascii_chart",
    "chain_comparison",
    "compression_by_workload",
    "format_histogram",
    "make_workload",
    "workload_names",
    "format_table",
    "interval_census",
    "io_traffic",
    "merging_benefit",
    "print_report",
    "query_effort",
    "storage_vs_degree",
    "storage_vs_size",
    "summarize_series",
    "tree_cover_ablation",
    "update_cost",
    "worst_case_bipartite",
]
