"""Chain-decomposition closure compression (Jagadish [18], Section 5).

The comparator of Theorem 2.  Nodes are partitioned into *chains*; each
node stores, per chain, the earliest chain position it can reach — every
later node on that chain is then reachable by transitivity.  Soundness
requires consecutive chain members to be connected (here: by an arc of the
graph, so chains are vertex-disjoint paths).

Two decompositions are provided:

* ``"greedy"`` — walk the topological order, appending each node to some
  chain whose current tail has an arc to it (first fit), else start a new
  chain;
* ``"optimal"`` — a minimum path cover over the *closure* (Dilworth's
  minimum chain cover), computed with Hopcroft-Karp bipartite matching.
  Chains are then paths in the closure; consecutive members are connected
  by a path, which is equally sound.

Theorem 2 states that the interval scheme on the optimal tree cover never
needs more intervals than the best chain compression needs chain entries
(without "chain reduction"); ``benchmarks/bench_chain_cover.py`` and the
property tests check that inequality empirically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.baselines.full_closure import FullTCIndex
from repro.errors import GraphError, NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reverse_topological_order, topological_order

METHODS = ("greedy", "optimal")


def greedy_chain_decomposition(graph: DiGraph) -> List[List[Node]]:
    """First-fit path decomposition along the topological order."""
    chains: List[List[Node]] = []
    tail_chain: Dict[Node, int] = {}
    for node in topological_order(graph):
        placed = False
        for predecessor in graph.predecessors(node):
            chain_id = tail_chain.get(predecessor)
            if chain_id is not None:
                chains[chain_id].append(node)
                del tail_chain[predecessor]
                tail_chain[node] = chain_id
                placed = True
                break
        if not placed:
            tail_chain[node] = len(chains)
            chains.append([node])
    return chains


def _hopcroft_karp(left: List[Node], adjacency: Dict[Node, List[Node]]) -> Dict[Node, Node]:
    """Maximum bipartite matching; returns the left -> right matching map."""
    INFINITY = float("inf")
    match_left: Dict[Node, Optional[Node]] = {u: None for u in left}
    match_right: Dict[Node, Optional[Node]] = {}
    distance: Dict[Node, float] = {}

    def bfs() -> bool:
        queue = deque()
        for u in left:
            if match_left[u] is None:
                distance[u] = 0
                queue.append(u)
            else:
                distance[u] = INFINITY
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency.get(u, ()):
                mate = match_right.get(v)
                if mate is None:
                    found_free = True
                elif distance[mate] == INFINITY:
                    distance[mate] = distance[u] + 1
                    queue.append(mate)
        return found_free

    def dfs(root: Node) -> bool:
        # Iterative layered DFS (recursion would overflow on long
        # augmenting paths).  Each frame is [left node, successor iterator,
        # right node through which the frame was entered].
        stack: List[list] = [[root, iter(adjacency.get(root, ())), None]]
        while stack:
            frame = stack[-1]
            u, successors = frame[0], frame[1]
            advanced = False
            for v in successors:
                mate = match_right.get(v)
                if mate is None:
                    # Free right node: augment along the whole stack path.
                    match_left[u] = v
                    match_right[v] = u
                    for depth in range(len(stack) - 1, 0, -1):
                        entered_via = stack[depth][2]
                        parent = stack[depth - 1][0]
                        match_left[parent] = entered_via
                        match_right[entered_via] = parent
                    return True
                if distance.get(mate, INFINITY) == distance[u] + 1:
                    stack.append([mate, iter(adjacency.get(mate, ())), v])
                    advanced = True
                    break
            if not advanced:
                distance[u] = INFINITY
                stack.pop()
        return False

    while bfs():
        for u in left:
            if match_left[u] is None:
                dfs(u)
    return {u: v for u, v in match_left.items() if v is not None}


def optimal_chain_decomposition(graph: DiGraph,
                                closure: Optional[FullTCIndex] = None) -> List[List[Node]]:
    """Dilworth minimum chain cover via matching on the transitive closure.

    The number of chains equals ``n - |maximum matching|``, the minimum
    possible (Dilworth); consecutive chain members are related by
    reachability, not necessarily adjacency.
    """
    if closure is None:
        closure = FullTCIndex.build(graph)
    order = topological_order(graph)
    adjacency = {node: sorted(closure.successors(node, reflexive=False),
                              key=str) for node in order}
    matching = _hopcroft_karp(order, adjacency)
    matched_right = set(matching.values())
    chains = []
    for node in order:
        if node in matched_right:
            continue
        chain = [node]
        while chain[-1] in matching:
            chain.append(matching[chain[-1]])
        chains.append(chain)
    return chains


class ChainTCIndex:
    """Reachability index over a chain decomposition.

    ``reach[u]`` maps a chain id to the smallest position on that chain
    reachable from ``u`` (reflexively: ``u`` reaches its own position).
    """

    def __init__(self, chains: List[List[Node]],
                 position_of: Dict[Node, Tuple[int, int]],
                 reach: Dict[Node, Dict[int, int]], method: str) -> None:
        self.chains = chains
        self._position_of = position_of
        self._reach = reach
        self.method = method

    @classmethod
    def build(cls, graph: DiGraph, method: str = "greedy") -> "ChainTCIndex":
        """Decompose ``graph`` into chains and propagate earliest positions."""
        if method not in METHODS:
            raise GraphError(f"unknown chain method {method!r}; expected one of {METHODS}")
        if method == "greedy":
            chains = greedy_chain_decomposition(graph)
        else:
            chains = optimal_chain_decomposition(graph)
        position_of: Dict[Node, Tuple[int, int]] = {}
        for chain_id, chain in enumerate(chains):
            for sequence, node in enumerate(chain):
                position_of[node] = (chain_id, sequence)

        reach: Dict[Node, Dict[int, int]] = {}
        for node in reverse_topological_order(graph):
            own_chain, own_sequence = position_of[node]
            entries: Dict[int, int] = {own_chain: own_sequence}
            for successor in graph.successors(node):
                for chain_id, sequence in reach[successor].items():
                    current = entries.get(chain_id)
                    if current is None or sequence < current:
                        entries[chain_id] = sequence
            reach[node] = entries
        return cls(chains, position_of, reach, method)

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability: earliest reached position <= target position."""
        if source not in self._reach:
            raise NodeNotFoundError(source)
        try:
            chain_id, sequence = self._position_of[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        earliest = self._reach[source].get(chain_id)
        return earliest is not None and earliest <= sequence

    def successors(self, source: Node, *, reflexive: bool = True) -> set:
        """Decode the successor list from the chain suffixes."""
        if source not in self._reach:
            raise NodeNotFoundError(source)
        result = set()
        for chain_id, sequence in self._reach[source].items():
            result.update(self.chains[chain_id][sequence:])
        if not reflexive:
            result.discard(source)
        return result

    @property
    def num_chains(self) -> int:
        """Number of chains in the decomposition."""
        return len(self.chains)

    @property
    def num_entries(self) -> int:
        """Total (chain, position) entries — the Theorem 2 quantity.

        Each node's entry for its *own* position is charged too, mirroring
        the interval scheme's per-node tree interval.
        """
        return sum(len(entries) for entries in self._reach.values())

    @property
    def storage_units(self) -> int:
        """Two numbers (chain id, position) per entry."""
        return 2 * self.num_entries

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ChainTCIndex(method={self.method!r}, chains={self.num_chains}, "
                f"entries={self.num_entries})")
