"""Chain-decomposition closure compression (Jagadish [18], Section 5).

Promoted to a first-class engine in :mod:`repro.core.chain_cover`; this
module keeps the historical baseline names importable.
:class:`ChainTCIndex` *is* :class:`~repro.core.chain_cover.ChainCoverIndex`
— the promotion grew the query surface (the full
:class:`~repro.core.engine.TCEngine` protocol) without changing the
labels, so every baseline comparison and Theorem 2 measurement reads
exactly as before.
"""

from __future__ import annotations

from repro.core.chain_cover import (
    METHODS,
    ChainCoverIndex,
    greedy_chain_decomposition,
    optimal_chain_decomposition,
)

__all__ = ["METHODS", "ChainTCIndex", "greedy_chain_decomposition",
           "optimal_chain_decomposition"]

#: Historical baseline name for the promoted engine.
ChainTCIndex = ChainCoverIndex
