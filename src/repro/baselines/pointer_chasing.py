"""On-the-fly reachability by pointer chasing — no materialisation at all.

"Questions about the transitive closure of the IS-A relationship ... must
be answered by a technique more efficient than simple pointer chasing in
the underlying data structure, the current approach" (Section 2.1).  This
baseline *is* that current approach: every query runs a DFS.  It keeps
per-query work counters so the query-speed benchmark can report traversal
effort next to the index's O(log k) lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node


@dataclass
class TraversalStats:
    """Cumulative work counters across all queries served."""

    queries: int = 0
    nodes_visited: int = 0
    arcs_followed: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.queries = 0
        self.nodes_visited = 0
        self.arcs_followed = 0


@dataclass
class PointerChasingIndex:
    """Query-time DFS over the base relation (zero storage overhead)."""

    graph: DiGraph
    stats: TraversalStats = field(default_factory=TraversalStats)

    @classmethod
    def build(cls, graph: DiGraph) -> "PointerChasingIndex":
        """No-op "build" — provided for interface symmetry with real indexes."""
        return cls(graph)

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability by depth-first search with early exit."""
        if source not in self.graph:
            raise NodeNotFoundError(source)
        if destination not in self.graph:
            raise NodeNotFoundError(destination)
        self.stats.queries += 1
        if source == destination:
            return True
        seen: Set[Node] = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            for successor in self.graph.successors(node):
                self.stats.arcs_followed += 1
                if successor == destination:
                    return True
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        return False

    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """Full DFS from ``source``."""
        if source not in self.graph:
            raise NodeNotFoundError(source)
        self.stats.queries += 1
        seen: Set[Node] = {source}
        stack = [source]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            for successor in self.graph.successors(node):
                self.stats.arcs_followed += 1
                if successor not in seen:
                    seen.add(successor)
                    stack.append(successor)
        if not reflexive:
            seen.discard(source)
        return seen

    @property
    def storage_units(self) -> int:
        """Nothing is materialised beyond the base relation itself."""
        return 0
