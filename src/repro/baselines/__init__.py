"""Every technique the paper compares the interval index against."""

from repro.baselines.boolean_matrix import BitMatrixTCIndex
from repro.baselines.chain_cover import (
    ChainTCIndex,
    greedy_chain_decomposition,
    optimal_chain_decomposition,
)
from repro.baselines.full_closure import FullTCIndex
from repro.baselines.inverse_closure import InverseTCIndex
from repro.baselines.pointer_chasing import PointerChasingIndex, TraversalStats
from repro.baselines.schubert import SchubertIndex, peel_forests

__all__ = [
    "BitMatrixTCIndex",
    "ChainTCIndex",
    "FullTCIndex",
    "InverseTCIndex",
    "PointerChasingIndex",
    "SchubertIndex",
    "TraversalStats",
    "greedy_chain_decomposition",
    "optimal_chain_decomposition",
    "peel_forests",
]
