"""Reachability as a packed Boolean matrix.

The "2-dimensional Boolean array" representation Section 2.2 dismisses for
large relations: O(n^2) bits regardless of graph shape.  Rows are Python
integers used as bit sets, so the reverse-topological closure pass is a
sequence of big-int ORs — compact and fast, which also makes this the
reference oracle several tests compare the interval index against.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reverse_topological_order


class BitMatrixTCIndex:
    """Transitive closure stored as one bit row per node."""

    def __init__(self, node_bit: Dict[Node, int], nodes: List[Node],
                 rows: Dict[Node, int]) -> None:
        self._node_bit = node_bit
        self._nodes = nodes
        self._rows = rows

    @classmethod
    def build(cls, graph: DiGraph) -> "BitMatrixTCIndex":
        """Compute the closure with one OR per arc, in reverse topo order."""
        nodes = list(graph.nodes())
        node_bit = {node: position for position, node in enumerate(nodes)}
        rows: Dict[Node, int] = {}
        for node in reverse_topological_order(graph):
            row = 1 << node_bit[node]  # reflexive bit
            for successor in graph.successors(node):
                row |= rows[successor]
            rows[node] = row
        return cls(node_bit, nodes, rows)

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability by bit test."""
        try:
            row = self._rows[source]
        except KeyError:
            raise NodeNotFoundError(source) from None
        try:
            bit = self._node_bit[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        return bool(row >> bit & 1)

    def successors(self, source: Node, *, reflexive: bool = True) -> set:
        """Decode the successor set from the bit row."""
        try:
            row = self._rows[source]
        except KeyError:
            raise NodeNotFoundError(source) from None
        result = set()
        position = 0
        while row:
            if row & 1:
                result.add(self._nodes[position])
            row >>= 1
            position += 1
        if not reflexive:
            result.discard(source)
        return result

    @property
    def num_nodes(self) -> int:
        """Number of indexed nodes."""
        return len(self._nodes)

    @property
    def storage_bits(self) -> int:
        """n^2 bits, independent of content — the structure's defining cost."""
        return len(self._nodes) ** 2

    @property
    def storage_units(self) -> int:
        """Paper-comparable units: bits / word, with the 32-bit words of 1989."""
        word_bits = 32
        return (self.storage_bits + word_bits - 1) // word_bits

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BitMatrixTCIndex(nodes={len(self._nodes)})"
