"""Schubert-style multi-hierarchy interval labeling (related work, Section 5).

Schubert, Papalaskaris & Taugher (1983) — and independently O'Keefe (1984)
— label a *tree* with ``[preorder number, highest descendant preorder]``
intervals.  For "overlapping hierarchies" (general DAGs) their
generalisation treats each hierarchy independently: every node carries one
tagged interval *per hierarchy*, and how a graph should be decomposed into
hierarchies "is not addressed" (paper, Section 5).

This baseline supplies the missing decomposition in the most natural way:
repeatedly peel a spanning forest off the remaining arcs until every arc
belongs to some forest, then label each forest separately.  The resulting
index is:

* **sound** — a hit in any single hierarchy corresponds to a real path;
* **incomplete** — a path alternating between hierarchies is invisible,
  which is exactly the weakness the paper's single-tree-cover-plus-
  propagation design removes.

``reachable`` therefore answers possibly-false negatives; tests assert
soundness and quantify incompleteness, and the comparison benchmark
reports its storage (``2 * n * num_hierarchies`` end-points) against the
interval index.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.core.intervals import Interval
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_order


def peel_forests(graph: DiGraph) -> List[Dict[Node, Node]]:
    """Decompose the arc set into spanning forests (parent maps).

    Round ``k`` gives every node at most one parent chosen among its
    not-yet-used incoming arcs; the number of rounds equals the maximum
    in-degree.  Each round is a forest because the graph is acyclic.
    """
    remaining: Dict[Node, List[Node]] = {
        node: sorted(graph.predecessors(node), key=str) for node in graph
    }
    forests: List[Dict[Node, Node]] = []
    while any(remaining.values()):
        forest: Dict[Node, Node] = {}
        for node, parents in remaining.items():
            if parents:
                forest[node] = parents.pop(0)
        forests.append(forest)
    return forests


def _label_forest(graph: DiGraph, forest: Dict[Node, Node]) -> Tuple[Dict[Node, int], Dict[Node, Interval]]:
    """Preorder-number one forest and compute Schubert intervals."""
    children: Dict[Node, List[Node]] = {node: [] for node in graph}
    roots = []
    order_position = {node: i for i, node in enumerate(topological_order(graph))}
    for node in graph:
        parent = forest.get(node)
        if parent is None:
            roots.append(node)
        else:
            children[parent].append(node)
    for child_list in children.values():
        child_list.sort(key=order_position.__getitem__)
    roots.sort(key=order_position.__getitem__)

    preorder: Dict[Node, int] = {}
    interval: Dict[Node, Interval] = {}
    counter = 0
    for root in roots:
        stack = [(root, False)]
        while stack:
            node, done = stack.pop()
            if done:
                # Highest preorder in the subtree is the current counter.
                interval[node] = Interval(preorder[node], counter)
                continue
            counter += 1
            preorder[node] = counter
            stack.append((node, True))
            for child in reversed(children[node]):
                stack.append((child, False))
    return preorder, interval


class SchubertIndex:
    """Per-hierarchy preorder interval labels for a DAG."""

    def __init__(self, preorders: List[Dict[Node, int]],
                 intervals: List[Dict[Node, Interval]], num_nodes: int) -> None:
        self._preorders = preorders
        self._intervals = intervals
        self._num_nodes = num_nodes

    @classmethod
    def build(cls, graph: DiGraph) -> "SchubertIndex":
        """Peel forests and label each one."""
        forests = peel_forests(graph)
        if not forests:
            forests = [{}]
        preorders = []
        intervals = []
        for forest in forests:
            preorder, interval = _label_forest(graph, forest)
            preorders.append(preorder)
            intervals.append(interval)
        return cls(preorders, intervals, graph.num_nodes)

    @property
    def num_hierarchies(self) -> int:
        """Number of peeled forests (max in-degree of the graph)."""
        return len(self._intervals)

    def reachable(self, source: Node, destination: Node) -> bool:
        """Sound but incomplete: true iff some single hierarchy shows a path."""
        if source not in self._preorders[0]:
            raise NodeNotFoundError(source)
        if destination not in self._preorders[0]:
            raise NodeNotFoundError(destination)
        if source == destination:
            return True
        for preorder, interval in zip(self._preorders, self._intervals):
            if preorder[destination] in interval[source]:
                return True
        return False

    def successors_within_hierarchies(self, source: Node) -> Set[Node]:
        """Nodes visibly reachable (per-hierarchy paths only)."""
        if source not in self._preorders[0]:
            raise NodeNotFoundError(source)
        result = {source}
        for preorder, interval in zip(self._preorders, self._intervals):
            span = interval[source]
            for node, number in preorder.items():
                if number in span:
                    result.add(node)
        return result

    @property
    def storage_units(self) -> int:
        """Two end-points per node per hierarchy (tags charged separately)."""
        return 2 * self._num_nodes * self.num_hierarchies

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SchubertIndex(nodes={self._num_nodes}, "
                f"hierarchies={self.num_hierarchies})")
