"""The uncompressed materialised transitive closure.

This is the structure the paper's Section 2.2 rejects for large relations
("linked lists or arrays of descendants ... can increase the number of
edges in the graph from O(n) to O(n^2)") and the yard-stick every figure
measures compression against: its storage is the total number of
(source, destination) pairs in the closure.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import reverse_topological_order


class FullTCIndex:
    """Materialised successor sets for every node of a DAG.

    Built with one reverse-topological dynamic-programming pass: a node's
    successor set is the union of its immediate successors' sets.  Queries
    are O(1) set membership; storage is O(closure size).
    """

    def __init__(self, successors: Dict[Node, Set[Node]]) -> None:
        self._successors = successors

    @classmethod
    def build(cls, graph: DiGraph) -> "FullTCIndex":
        """Materialise the closure of an acyclic ``graph``."""
        closure: Dict[Node, Set[Node]] = {}
        for node in reverse_topological_order(graph):
            reached: Set[Node] = set()
            for successor in graph.successors(node):
                reached.add(successor)
                reached |= closure[successor]
            closure[node] = reached
        return cls(closure)

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability test (paper convention)."""
        if source not in self._successors:
            raise NodeNotFoundError(source)
        if destination not in self._successors:
            raise NodeNotFoundError(destination)
        return source == destination or destination in self._successors[source]

    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """The stored successor list of ``source``."""
        try:
            stored = self._successors[source]
        except KeyError:
            raise NodeNotFoundError(source) from None
        return stored | {source} if reflexive else set(stored)

    def predecessors(self, destination: Node, *, reflexive: bool = True) -> Set[Node]:
        """Every node whose successor set contains ``destination`` (scan)."""
        if destination not in self._successors:
            raise NodeNotFoundError(destination)
        result = {node for node, reached in self._successors.items()
                  if destination in reached}
        if reflexive:
            result.add(destination)
        else:
            result.discard(destination)
        return result

    @property
    def num_pairs(self) -> int:
        """Number of closure tuples, excluding the implicit reflexive ones."""
        return sum(len(reached) for reached in self._successors.values())

    @property
    def storage_units(self) -> int:
        """Paper accounting (Section 3.3): one unit per stored successor."""
        return self.num_pairs

    def __len__(self) -> int:
        return len(self._successors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FullTCIndex(nodes={len(self._successors)}, pairs={self.num_pairs})"
