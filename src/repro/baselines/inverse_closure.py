"""The inverse (complement) closure of Figure 3.10.

When the closure of a dense DAG approaches the maximum ``n(n-1)/2`` pairs,
Section 3.3 considers storing the *complement*: the pairs ``(u, v)`` that
are admissible under a stored topological ordering (``u`` before ``v``)
but **not** connected by a path.  A query then answers "reachable" when
the ordering admits the pair and the pair is absent from the stored set.

The paper notes the practical drawback — the topological ordering itself
must be maintained under updates — and shows (Figure 3.10) that the
compressed closure stays below the inverse closure anyway.  This module
exists to regenerate that comparison.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.baselines.full_closure import FullTCIndex
from repro.errors import NodeNotFoundError
from repro.graph.digraph import DiGraph, Node
from repro.graph.traversal import topological_order


class InverseTCIndex:
    """Complement-of-closure reachability index for a DAG."""

    def __init__(self, order_position: Dict[Node, int],
                 non_reachable: FrozenSet[Tuple[Node, Node]]) -> None:
        self._position = order_position
        self._non_reachable = non_reachable

    @classmethod
    def build(cls, graph: DiGraph, order: List[Node] = None) -> "InverseTCIndex":
        """Store the non-reachable pairs w.r.t. ``order`` (default: computed).

        O(n^2) time and up to O(n^2) storage by construction — the paper
        measures exactly this structure for a *particular* topological sort.
        """
        if order is None:
            order = topological_order(graph)
        position = {node: index for index, node in enumerate(order)}
        closure = FullTCIndex.build(graph)
        missing = set()
        for source in graph:
            reached = closure.successors(source, reflexive=True)
            source_position = position[source]
            for destination in graph:
                if position[destination] > source_position and destination not in reached:
                    missing.add((source, destination))
        return cls(position, frozenset(missing))

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability: ordered-and-not-excluded."""
        if source not in self._position:
            raise NodeNotFoundError(source)
        if destination not in self._position:
            raise NodeNotFoundError(destination)
        if source == destination:
            return True
        if self._position[source] > self._position[destination]:
            return False
        return (source, destination) not in self._non_reachable

    @property
    def num_pairs(self) -> int:
        """Number of stored (non-reachable) pairs."""
        return len(self._non_reachable)

    @property
    def storage_units(self) -> int:
        """Paper accounting: one unit per stored pair.

        The topological ordering itself (n positions) is *not* charged,
        matching the paper's measurement of "the size of the inverse
        closure with respect to a particular topological sort".
        """
        return len(self._non_reachable)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"InverseTCIndex(nodes={len(self._position)}, "
                f"non_reachable_pairs={len(self._non_reachable)})")
