"""Property inheritance along the compressed closure.

Section 6: "These techniques are also useful for efficient propagation of
inherited values and properties."  :class:`InheritanceEngine` attaches
property/value pairs to taxonomy concepts and resolves a concept's
*effective* properties by walking its superconcepts, with the standard
most-specific-wins override rule and explicit conflict reporting when two
incomparable ancestors disagree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.errors import TaxonomyError
from repro.kb.taxonomy import Taxonomy
from repro.graph.digraph import Node

PropertyName = Hashable


@dataclass(frozen=True)
class PropertyConflict:
    """Two incomparable superconcepts supplying different values."""

    property_name: PropertyName
    contenders: Tuple[Tuple[Node, object], ...]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{concept!r}={value!r}" for concept, value in self.contenders)
        return f"conflict on {self.property_name!r}: {parts}"


class InheritanceEngine:
    """Most-specific-wins property inheritance over a :class:`Taxonomy`."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        self._local: Dict[Node, Dict[PropertyName, object]] = {}

    def set_property(self, concept: Node, name: PropertyName, value: object) -> None:
        """Attach a local (non-inherited) property to ``concept``."""
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        self._local.setdefault(concept, {})[name] = value

    def local_properties(self, concept: Node) -> Dict[PropertyName, object]:
        """Properties declared directly on ``concept``."""
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        return dict(self._local.get(concept, {}))

    def providers(self, concept: Node, name: PropertyName) -> List[Node]:
        """Superconcepts (reflexive) declaring ``name``, most specific first.

        "Most specific" = fewest strict superconcepts; ties keep stable
        name order for determinism.
        """
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        holders = [ancestor
                   for ancestor in self.taxonomy.index.predecessors(concept)
                   if name in self._local.get(ancestor, {})]
        index = self.taxonomy.index

        def specificity(holder: Node) -> Tuple[int, str]:
            return (len(index.predecessors(holder)), str(holder))

        return sorted(holders, key=specificity, reverse=True)

    def effective_property(self, concept: Node, name: PropertyName) -> Optional[object]:
        """The inherited value of ``name`` at ``concept``.

        The most specific provider wins; when several *incomparable*
        providers remain and their values differ, :class:`TaxonomyError`
        is raised carrying a :class:`PropertyConflict`.
        """
        ranked = self.providers(concept, name)
        if not ranked:
            return None
        index = self.taxonomy.index
        # Keep only providers not overridden by a more specific provider.
        minimal = [holder for holder in ranked
                   if not any(other != holder and index.reachable(holder, other)
                              for other in ranked)]
        values = {self._local[holder][name] for holder in minimal}
        if len(values) > 1:
            conflict = PropertyConflict(
                property_name=name,
                contenders=tuple((holder, self._local[holder][name])
                                 for holder in minimal),
            )
            raise TaxonomyError(str(conflict))
        return values.pop()

    def effective_properties(self, concept: Node) -> Dict[PropertyName, object]:
        """All inherited properties of ``concept`` (conflicts raise)."""
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        names: Set[PropertyName] = set()
        for ancestor in self.taxonomy.index.predecessors(concept):
            names.update(self._local.get(ancestor, {}))
        return {name: self.effective_property(concept, name) for name in sorted(names, key=str)}

    def concepts_with_property(self, name: PropertyName) -> Set[Node]:
        """Every concept that inherits ``name`` from somewhere.

        One successor-set expansion per declaring concept — the "efficient
        propagation of inherited values" use case of Section 6.
        """
        result: Set[Node] = set()
        for declarer, properties in self._local.items():
            if name in properties:
                result |= self.taxonomy.index.successors(declarer)
        return result
