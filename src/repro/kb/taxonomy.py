"""An IS-A taxonomy abstract data type backed by the compressed closure.

Section 6 of the paper: "CLASSIC ... has separated the maintenance of
subclass relationships into an abstract data type that maintains the IS-A
graph and encapsulates the technique for managing this data structure
efficiently.  We plan to use the techniques presented in this paper for
this purpose."  :class:`Taxonomy` is that abstract data type.

Arcs run *downward*: ``concept -> subconcept``, so "``a`` subsumes ``b``"
is reachability ``a ->* b``.  Adding a concept under its parents is the
paper's cheap tree-arc + cut-off-propagation path, which is what makes
interactive classification loads tractable (Section 4.1's "hierarchy
refinement").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core import queries
from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import TaxonomyError
from repro.graph.digraph import DiGraph, Node


class Taxonomy:
    """A dynamically growing concept hierarchy with O(log) subsumption tests."""

    def __init__(self, root: Node = "THING", *, gap: int = DEFAULT_GAP) -> None:
        graph = DiGraph(nodes=[root])
        self.root = root
        self._index = IntervalTCIndex.build(graph, gap=gap)
        self._ignored: Set[Node] = set()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(cls, edges: Iterable[tuple], *, root: Node = "THING",
                   gap: int = DEFAULT_GAP) -> "Taxonomy":
        """Bulk-load a taxonomy from ``(parent, child)`` pairs.

        Parents must be defined before their children appear as parents
        (any topological input order works); unseen parents raise
        :class:`TaxonomyError`.
        """
        taxonomy = cls(root=root, gap=gap)
        pending: Dict[Node, List[Node]] = {}
        for parent, child in edges:
            pending.setdefault(child, []).append(parent)
        resolved: Set[Node] = {root}
        progress = True
        remaining = dict(pending)
        while remaining and progress:
            progress = False
            for child in list(remaining):
                parents = remaining[child]
                if all(parent in resolved for parent in parents):
                    taxonomy.define(child, parents)
                    resolved.add(child)
                    del remaining[child]
                    progress = True
        if remaining:
            raise TaxonomyError(
                f"undefined or cyclic parents for concepts: {sorted(map(str, remaining))}"
            )
        return taxonomy

    def define(self, concept: Node, parents: Sequence[Node] = ()) -> None:
        """Introduce ``concept`` below ``parents`` (default: below the root).

        This is the classification write path: one tree arc plus non-tree
        arcs with subsumption cut-off — no closure recomputation.
        """
        if concept in self._index:
            raise TaxonomyError(f"concept {concept!r} is already defined")
        parent_list = list(parents) if parents else [self.root]
        for parent in parent_list:
            self._require(parent)
        self._index.add_node(concept, parents=parent_list)

    def add_subsumption(self, parent: Node, child: Node) -> None:
        """Assert that ``parent`` subsumes ``child`` (adds an IS-A arc)."""
        self._require(parent)
        self._require(child)
        if parent == child:
            raise TaxonomyError("a concept cannot subsume itself explicitly")
        self._index.add_arc(parent, child)

    def forget(self, concept: Node) -> None:
        """Remove a concept entirely.

        The paper notes AI deletions are often logical ("nodes are
        'deleted' to be ignored"); this is the physical removal for when
        the logical trick is not enough.  Children keep their other
        parents; orphans re-hang under the taxonomy root in the cover.
        """
        if concept not in self._index:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        if concept == self.root:
            raise TaxonomyError("cannot forget the taxonomy root")
        self._ignored.discard(concept)
        self._index.remove_node(concept)

    def ignore(self, concept: Node) -> None:
        """Logically delete ``concept`` — the paper's AI-hierarchy trick.

        "Nodes are 'deleted' to be ignored, but the subset relationships
        between remaining nodes [are] unchanged, and no update is required
        to the compressed closure" (Section 4.2).  The concept vanishes
        from every query answer while the index is left untouched, making
        this O(1); :meth:`restore` undoes it, also in O(1).
        """
        self._require(concept)
        if concept == self.root:
            raise TaxonomyError("cannot ignore the taxonomy root")
        self._ignored.add(concept)

    def restore(self, concept: Node) -> None:
        """Undo :meth:`ignore`."""
        if concept not in self._ignored:
            raise TaxonomyError(f"concept {concept!r} is not ignored")
        self._ignored.remove(concept)

    def is_ignored(self, concept: Node) -> bool:
        """Whether ``concept`` is logically deleted."""
        return concept in self._ignored

    def _visible(self, concepts: Set[Node]) -> Set[Node]:
        return concepts - self._ignored if self._ignored else concepts

    def _require(self, concept: Node) -> None:
        if concept not in self._index or concept in self._ignored:
            raise TaxonomyError(f"concept {concept!r} is not defined")

    # ------------------------------------------------------------------
    # reasoning
    # ------------------------------------------------------------------
    def __contains__(self, concept: Node) -> bool:
        return concept in self._index and concept not in self._ignored

    def __len__(self) -> int:
        return len(self._index) - len(self._ignored)

    def is_a(self, child: Node, parent: Node) -> bool:
        """The subsumption test: does ``parent`` subsume ``child``?

        Reflexive, per the paper's convention: ``is_a(c, c)`` is ``True``.
        """
        self._require(child)
        self._require(parent)
        return self._index.reachable(parent, child)

    def subconcepts(self, concept: Node, *, strict: bool = True) -> Set[Node]:
        """Everything subsumed by ``concept`` (ignored concepts filtered)."""
        self._require(concept)
        return self._visible(self._index.successors(concept, reflexive=not strict))

    def superconcepts(self, concept: Node, *, strict: bool = True) -> Set[Node]:
        """Everything that subsumes ``concept`` (ignored concepts filtered)."""
        self._require(concept)
        return self._visible(self._index.predecessors(concept, reflexive=not strict))

    def parents(self, concept: Node) -> Set[Node]:
        """Immediate (visible) parents only."""
        self._require(concept)
        return self._visible(set(self._index.graph.predecessors(concept)))

    def children(self, concept: Node) -> Set[Node]:
        """Immediate (visible) children only."""
        self._require(concept)
        return self._visible(set(self._index.graph.successors(concept)))

    def least_common_subsumers(self, concepts: Iterable[Node]) -> Set[Node]:
        """The most specific *visible* concepts subsuming all of ``concepts``."""
        concept_list = list(concepts)
        for concept in concept_list:
            self._require(concept)
        candidates = self._visible(queries.common_ancestors(self._index, concept_list))
        return {candidate for candidate in candidates
                if not any(candidate is not other and
                           self._index.reachable(candidate, other)
                           for other in candidates)}

    def are_disjoint(self, first: Node, second: Node) -> bool:
        """Whether the two concepts share no *visible* subconcept (Section 6)."""
        self._require(first)
        self._require(second)
        if self._index.reachable(first, second) or \
                self._index.reachable(second, first):
            return False
        shared = queries.common_descendants(self._index, [first, second])
        return not self._visible(shared)

    def classify(self, parents: Sequence[Node],
                 children: Sequence[Node] = ()) -> Optional[Node]:
        """Find an existing concept sitting exactly between bounds.

        The terminological-logic primitive: given the computed direct
        subsumers (``parents``) and subsumees (``children``) of a new
        definition, return an equivalent already-known concept if one
        exists (same parents-below test the paper's Section 2.1 calls "a
        frequent operation"), else ``None`` — the caller then
        :meth:`define`\\ s the new concept.
        """
        candidates: Optional[Set[Node]] = None
        for parent in parents:
            self._require(parent)
            below = self._index.successors(parent)
            candidates = below if candidates is None else candidates & below
        if candidates is None:
            candidates = set(self._index.nodes())
        for child in children:
            self._require(child)
            above = self._index.predecessors(child)
            candidates &= above
        for candidate in self._visible(candidates):
            if set(self._index.graph.predecessors(candidate)) == set(parents) and \
                    set(children) <= set(self._index.graph.successors(candidate)):
                return candidate
        return None

    def depth(self, concept: Node) -> int:
        """Longest IS-A path from the root down to ``concept``."""
        self._require(concept)
        return queries.topological_level(self._index, concept)

    @property
    def index(self) -> IntervalTCIndex:
        """The underlying compressed-closure index."""
        return self._index

    @property
    def storage_units(self) -> int:
        """Paper storage units of the subsumption index."""
        return self._index.storage_units

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Taxonomy(root={self.root!r}, concepts={len(self._index)})"
