"""A miniature terminological classifier over the compressed closure.

Section 2.1: KL-ONE-style systems have "compositional languages for
defining concepts, where a concept is subsumed by another by virtue of
their definition ... Computing the subsumption relationship between a new
concept and previously known ones is the key inference made by such
'terminologic logics'".

:class:`Classifier` implements the standard fragment of that inference:
a concept is *defined* by named parents plus a set of feature
restrictions (here: hashable atomic features).  Definitional subsumption
is then

    ``A subsumes B``  iff  ``features(A) ⊆ features(B)``

where ``features`` includes everything inherited from parents.
Classification of a new definition finds its *most specific subsumers*
and *most general subsumees* among the known concepts and inserts it
between them in the :class:`~repro.kb.taxonomy.Taxonomy` — each insertion
being the paper's cheap Section 4 write path, and each subsumption probe
during the search being one interval lookup.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set

from repro.errors import TaxonomyError
from repro.graph.digraph import Node
from repro.kb.taxonomy import Taxonomy

Feature = Hashable


class Classifier:
    """Definition-driven classification into a taxonomy."""

    def __init__(self, taxonomy: Optional[Taxonomy] = None) -> None:
        self.taxonomy = taxonomy if taxonomy is not None else Taxonomy()
        self._features: Dict[Node, FrozenSet[Feature]] = {
            self.taxonomy.root: frozenset()
        }

    # ------------------------------------------------------------------
    # definitions
    # ------------------------------------------------------------------
    def features_of(self, concept: Node) -> FrozenSet[Feature]:
        """The full (inherited + local) feature set of a known concept."""
        try:
            return self._features[concept]
        except KeyError:
            raise TaxonomyError(f"concept {concept!r} has no definition") from None

    def effective_features(self, parents: Iterable[Node],
                           features: Iterable[Feature]) -> FrozenSet[Feature]:
        """What a definition denotes: its features plus everything inherited."""
        total: Set[Feature] = set(features)
        for parent in parents:
            total |= self.features_of(parent)
        return frozenset(total)

    def define(self, concept: Node, parents: Iterable[Node] = (),
               features: Iterable[Feature] = ()) -> Node:
        """Define and classify ``concept``; returns its canonical name.

        If an existing concept has exactly the same effective feature set,
        that concept is returned instead of creating a duplicate (the
        "previously known concept" short-circuit of Section 2.1).
        Otherwise the new concept is inserted below its most specific
        subsumers, and any known concepts it strictly subsumes are hooked
        beneath it.
        """
        if concept in self._features:
            raise TaxonomyError(f"concept {concept!r} is already defined")
        denotation = self.effective_features(parents, features)

        equivalent = self._find_equivalent(denotation)
        if equivalent is not None:
            return equivalent

        subsumers = self.most_specific_subsumers(denotation)
        subsumees = self.most_general_subsumees(denotation)
        self.taxonomy.define(concept, sorted(subsumers, key=str))
        self._features[concept] = denotation
        for below in subsumees:
            # Only add the arc when it is not already implied.
            if not self.taxonomy.is_a(below, concept):
                self.taxonomy.add_subsumption(concept, below)
        return concept

    def _find_equivalent(self, denotation: FrozenSet[Feature]) -> Optional[Node]:
        for known, features in self._features.items():
            if features == denotation:
                return known
        return None

    # ------------------------------------------------------------------
    # the classification search
    # ------------------------------------------------------------------
    def subsumes(self, general: Node, specific: Node) -> bool:
        """Definitional subsumption between two *known* concepts.

        Answered by the taxonomy's interval index — one range comparison —
        rather than by feature-set inclusion; the two agree by
        construction (tested property).
        """
        return self.taxonomy.is_a(specific, general)

    def most_specific_subsumers(self, denotation: FrozenSet[Feature]) -> Set[Node]:
        """The tightest known concepts whose features the denotation extends.

        Top-down sweep: start at the root and repeatedly descend into any
        child that still subsumes the denotation; concepts with no such
        child are the answer.  Each step tests feature inclusion against
        candidates only, pruning whole subtrees — the hierarchy *is* the
        search structure, which is why the paper wants it cached.
        """
        frontier = {self.taxonomy.root}
        answers: Set[Node] = set()
        seen: Set[Node] = set()
        while frontier:
            concept = frontier.pop()
            if concept in seen:
                continue
            seen.add(concept)
            descended = False
            for child in self.taxonomy.children(concept):
                if child in self._features and \
                        self._features[child] <= denotation:
                    frontier.add(child)
                    descended = True
            if not descended:
                answers.add(concept)
        # Keep only the minimal elements (a concept may be reached along
        # several paths at different depths).
        return {concept for concept in answers
                if not any(other != concept and
                           self.taxonomy.is_a(other, concept)
                           for other in answers)}

    def most_general_subsumees(self, denotation: FrozenSet[Feature]) -> Set[Node]:
        """The broadest known concepts whose features extend the denotation."""
        candidates = [concept for concept, features in self._features.items()
                      if denotation <= features and features != denotation]
        return {concept for concept in candidates
                if not any(other != concept and
                           self.taxonomy.is_a(concept, other)
                           for other in candidates
                           if denotation <= self._features[other])}

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def concepts(self) -> Set[Node]:
        """All defined concepts (including the root)."""
        return set(self._features)

    def check_lattice_consistency(self) -> None:
        """Assert taxonomy order == feature-set inclusion (test support)."""
        concepts = list(self._features)
        for general in concepts:
            for specific in concepts:
                structural = self.taxonomy.is_a(specific, general)
                definitional = self._features[general] <= self._features[specific]
                if structural != definitional:
                    raise TaxonomyError(
                        f"classification drift: {general!r} vs {specific!r}: "
                        f"taxonomy says {structural}, definitions say {definitional}"
                    )
