"""Knowledge-base layer: IS-A taxonomy ADT, ABox, property inheritance."""

from repro.kb.abox import ABox
from repro.kb.classifier import Classifier
from repro.kb.inheritance import InheritanceEngine, PropertyConflict
from repro.kb.taxonomy import Taxonomy

__all__ = ["ABox", "Classifier", "InheritanceEngine", "PropertyConflict",
           "Taxonomy"]
