"""Assertional knowledge: individuals classified under taxonomy concepts.

CLASSIC-style knowledge bases split into a *TBox* (the concept hierarchy —
:class:`repro.kb.Taxonomy`) and an *ABox* of individuals asserted to be
instances of concepts.  Instance retrieval ("all instances of MAMMAL,
including everything under it") is a transitive-closure query over the
IS-A graph and is exactly the workload Section 2.1 of the paper motivates
the compressed closure with.

:class:`ABox` keeps, per individual, the set of concepts it was *directly*
asserted under; membership in any broader concept follows through the
taxonomy's interval index in O(log) per check.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

from repro.errors import TaxonomyError
from repro.graph.digraph import Node
from repro.kb.taxonomy import Taxonomy

Individual = Hashable


class ABox:
    """Individuals and their concept assertions over a :class:`Taxonomy`."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        self._asserted: Dict[Individual, Set[Node]] = {}
        self._members: Dict[Node, Set[Individual]] = {}

    # ------------------------------------------------------------------
    # assertions
    # ------------------------------------------------------------------
    def assert_instance(self, individual: Individual, concept: Node) -> None:
        """Assert that ``individual`` is an instance of ``concept``."""
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        self._asserted.setdefault(individual, set()).add(concept)
        self._members.setdefault(concept, set()).add(individual)

    def retract_instance(self, individual: Individual, concept: Node) -> None:
        """Withdraw one assertion; unknown assertions raise."""
        try:
            self._asserted[individual].remove(concept)
        except KeyError:
            raise TaxonomyError(
                f"{individual!r} was never asserted under {concept!r}") from None
        self._members[concept].discard(individual)
        if not self._asserted[individual]:
            del self._asserted[individual]

    def forget_individual(self, individual: Individual) -> None:
        """Remove every assertion about ``individual``."""
        for concept in self._asserted.pop(individual, set()):
            self._members[concept].discard(individual)

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------
    def individuals(self) -> Set[Individual]:
        """Every individual with at least one assertion."""
        return set(self._asserted)

    def asserted_concepts(self, individual: Individual) -> Set[Node]:
        """The concepts ``individual`` was directly asserted under."""
        try:
            return set(self._asserted[individual])
        except KeyError:
            raise TaxonomyError(f"unknown individual {individual!r}") from None

    def is_instance(self, individual: Individual, concept: Node) -> bool:
        """Whether ``individual`` belongs to ``concept`` (directly or via IS-A).

        One subsumption test per direct assertion — the paper's "lookup
        instead of a graph traversal".
        """
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        # Assertions under since-ignored concepts are dormant, not errors.
        return any(asserted in self.taxonomy and
                   self.taxonomy.is_a(asserted, concept)
                   for asserted in self._asserted.get(individual, ()))

    def instances_of(self, concept: Node, *, direct: bool = False) -> Set[Individual]:
        """All individuals under ``concept``.

        ``direct=True`` restricts to explicit assertions; otherwise the
        concept's whole subtree (one successor-set expansion on the
        compressed closure) contributes members.
        """
        if concept not in self.taxonomy:
            raise TaxonomyError(f"concept {concept!r} is not defined")
        if direct:
            return set(self._members.get(concept, ()))
        result: Set[Individual] = set()
        for subconcept in self.taxonomy.subconcepts(concept, strict=False):
            result.update(self._members.get(subconcept, ()))
        return result

    def concepts_of(self, individual: Individual, *, most_specific: bool = False) -> Set[Node]:
        """Every concept ``individual`` belongs to.

        With ``most_specific=True`` only the minimal (most specific)
        concepts among the direct assertions are returned — the
        "realisation" operation of terminological systems.
        """
        asserted = {concept for concept in self.asserted_concepts(individual)
                    if concept in self.taxonomy}
        if most_specific:
            return {concept for concept in asserted
                    if not any(other != concept and
                               self.taxonomy.is_a(other, concept)
                               for other in asserted)}
        result: Set[Node] = set()
        for concept in asserted:
            result |= self.taxonomy.superconcepts(concept, strict=False)
        return result

    def count_instances(self, concept: Node) -> int:
        """Cardinality of :meth:`instances_of` without keeping duplicates."""
        return len(self.instances_of(concept))

    def common_concepts(self, individuals: Iterable[Individual]) -> Set[Node]:
        """Concepts shared by every given individual (their join candidates)."""
        shared: Set[Node] = None  # type: ignore[assignment]
        for individual in individuals:
            concepts = self.concepts_of(individual)
            shared = concepts if shared is None else shared & concepts
        return shared or set()

    def __len__(self) -> int:
        return len(self._asserted)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ABox(individuals={len(self._asserted)}, "
                f"taxonomy={self.taxonomy.root!r})")
