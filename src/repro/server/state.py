"""Serving state: pinned snapshots, a single-writer task, epoch swaps.

Reads never lock.  Every read path grabs ``state.snapshot`` once — a
:class:`Snapshot` wrapping a *detached* :class:`~repro.core.frozen.FrozenTCIndex`
(or an mmap-backed RTCF view), both immutable — and answers entirely
from it.  Because a snapshot is never mutated after publication, any
number of connection tasks can share it with zero coordination, and a
request that started on epoch *e* keeps answering from epoch *e* even if
a swap lands mid-flight: answers are internally consistent, never torn.

Writes funnel through one queue drained by a single asyncio task.  The
writer drains every queued mutation, applies them in submission order to
the write-through engine (the hybrid's Section 4 algorithms keep the
mutable truth exact in microseconds), folds the delta into a fresh
frozen base (:meth:`HybridTCIndex.compact` — one freeze of
already-updated state, no closure recomputation), and then **publishes**:
a single attribute assignment swaps the new :class:`Snapshot` in for all
future reads.  Only after the swap are the writes acknowledged, so a
client that has seen a write ack at epoch *e* is guaranteed every later
read is served at epoch >= *e* (read-your-writes), and no read is ever
served more than one publish behind a mutation it raced.

Epochs count publishes, not mutations: a burst of writes drained
together becomes one epoch swap, which is what keeps refreeze cost
amortised under write bursts.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Iterable, List, Optional, Tuple

from repro.core.frozen import FrozenTCIndex
from repro.core.hybrid import HybridTCIndex
from repro.errors import ReproError
from repro.obs.metrics import MetricsRegistry

__all__ = ["ServeState", "Snapshot", "WriteOp"]

#: Mutation op names the writer task understands, mapped to the engine
#: method they invoke.
WRITE_METHODS = {
    "add-node": "add_node",
    "add-arc": "add_arc",
    "remove-arc": "remove_arc",
    "remove-node": "remove_node",
}


class Snapshot:
    """One published epoch: an immutable engine plus its epoch number."""

    __slots__ = ("epoch", "engine", "published_at")

    def __init__(self, epoch: int, engine) -> None:
        self.epoch = epoch
        self.engine = engine
        self.published_at = time.time()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Snapshot(epoch={self.epoch}, nodes={len(self.engine)})"


class WriteOp:
    """One queued mutation and the future its submitter awaits.

    ``deadline`` is a ``time.monotonic()`` instant: a write still queued
    when it passes is dropped *before* application — the submitter gets
    ``deadline-exceeded``, which therefore always means "not applied"
    and is safe to retry.
    """

    __slots__ = ("op", "args", "future", "deadline")

    def __init__(self, op: str, args: Tuple[Any, ...],
                 future: "asyncio.Future",
                 deadline: Optional[float] = None) -> None:
        self.op = op
        self.args = args
        self.future = future
        self.deadline = deadline


class ServeState:
    """The engine-facing half of the server: snapshots in, writes out.

    ``engine`` may be any :class:`~repro.core.engine.TCEngine`:

    * a :class:`HybridTCIndex` (the intended shape) — writes go through
      its write-through index, publishes fold the delta via
      :meth:`~HybridTCIndex.compact` and pin the fresh base;
    * an :class:`IntervalTCIndex` — wrapped into a hybrid so the serve
      path is identical;
    * any compiled snapshot — a :class:`FrozenTCIndex` (including
      mmap-backed RTCF views), a
      :class:`~repro.core.hoplabel.HopLabelIndex`, or a
      :class:`~repro.core.chain_cover.ChainCoverIndex` — a read-only
      service: the snapshot is the engine itself, forever epoch 0, and
      every write draws a ``read-only`` error;
    * a :class:`~repro.durability.store.DurableTCIndex` — writes are
      journalled through the store facade; snapshots come from its inner
      engine (compacted when hybrid, frozen otherwise).
    """

    def __init__(self, engine, *, metrics: Optional[MetricsRegistry] = None,
                 tracer=None, max_pending_writes: int = 0) -> None:
        self._metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        self._tracer = tracer
        #: Admission cap on queued-but-unapplied writes; 0 disables.  A
        #: submit against a full queue is shed with ``overloaded`` —
        #: bounded memory under write storms, and the refusal happens
        #: *before* enqueue, so a shed write was never applied.
        self.max_pending_writes = int(max_pending_writes)
        self._write_target, self._hybrid, self._frozen = \
            self._classify(engine)
        self.engine = engine
        # Created in start(): pre-3.10 asyncio primitives bind their
        # event loop at construction, and ServeState may be built before
        # asyncio.run() starts the loop that will serve it.
        self._queue: Optional["asyncio.Queue[WriteOp]"] = None
        self._writer_task: Optional[asyncio.Task] = None
        self._closed = False
        self.snapshot = Snapshot(0, self._compile())
        self._instruments()
        self._set_epoch_gauge()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _classify(self, engine):
        """Return (write_target, hybrid_for_snapshots, frozen_or_None).

        Dispatch is on :meth:`TCEngine.capabilities`, so any
        conformant engine is servable without this module knowing its
        class: engines that do not support updates run as read-only
        snapshots of themselves; updatable engines are keyed by kind.
        """
        if not hasattr(engine, "capabilities"):
            raise ReproError(
                f"cannot serve a {type(engine).__name__}: expected a "
                "TCEngine (hybrid, interval, frozen, hoplabel, chain, "
                "or durable)")
        caps = engine.capabilities()
        if not caps.supports_updates:
            # Frozen buffers, 2-hop labels, chain-cover labels: the
            # engine *is* its own immutable snapshot.
            return None, None, engine
        if caps.durable:
            inner = engine.engine
            inner_kind = inner.capabilities().kind
            if inner_kind == "hybrid":
                return engine, inner, None
            if inner_kind == "interval":
                return engine, None, None
            raise ReproError(
                f"cannot serve a {type(engine).__name__} wrapping "
                f"{type(inner).__name__}")
        if caps.kind == "hybrid":
            return engine, engine, None
        if caps.kind == "interval":
            hybrid = HybridTCIndex.from_index(
                engine, max_delta=1 << 30, max_ratio=float(1 << 30))
            return hybrid, hybrid, None
        raise ReproError(
            f"cannot serve a {type(engine).__name__}: updatable engine "
            f"kind {caps.kind!r} has no serve adapter")

    def _compile(self):
        """A detached immutable engine for the current exact state."""
        if self._frozen is not None:
            return self._frozen
        if self._hybrid is not None:
            # Fold the delta so reads stay flat-array fast; the fresh
            # pinned base *is* the publishable snapshot.
            return self._hybrid.snapshot()
        index = self.engine.index  # durable store over a plain index
        return FrozenTCIndex.from_index(index).detach()

    def _instruments(self) -> None:
        registry = self._metrics
        self._swaps = registry.counter(
            "tc_server_epoch_swaps_total",
            help="snapshot publications (epoch advances)")
        self._publish_seconds = registry.histogram(
            "tc_server_publish_seconds",
            help="wall time to refreeze and publish a snapshot")
        self._write_batch = registry.histogram(
            "tc_server_write_batch_size",
            help="mutations folded into one epoch swap",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256))
        self._writes = registry.counter(
            "tc_server_writes_total", help="acknowledged mutations")
        self._write_errors = registry.counter(
            "tc_server_write_errors_total", help="rejected mutations")
        self._epoch_gauge = registry.gauge(
            "tc_server_epoch", help="currently served epoch")
        self._writes_shed = registry.counter(
            "tc_server_writes_shed_total",
            help="writes refused at admission because the write queue "
                 "was at max_pending_writes")
        self._writes_expired = registry.counter(
            "tc_server_writes_expired_total",
            help="queued writes dropped unapplied because their "
                 "deadline passed before the writer reached them")

    def _set_epoch_gauge(self) -> None:
        self._epoch_gauge.set(self.snapshot.epoch)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def read_only(self) -> bool:
        return self._write_target is None

    @property
    def epoch(self) -> int:
        return self.snapshot.epoch

    def stats(self) -> dict:
        snapshot = self.snapshot
        payload = {
            "epoch": snapshot.epoch,
            "read_only": self.read_only,
            "nodes": len(snapshot.engine),
            "pending_writes": self._queue.qsize()
            if self._queue is not None else 0,
            "max_pending_writes": self.max_pending_writes,
        }
        engine_stats = snapshot.engine.stats()
        payload["snapshot"] = (engine_stats.as_dict()
                               if hasattr(engine_stats, "as_dict")
                               else engine_stats)
        return payload

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the single-writer task (no-op for read-only servers)."""
        if self._write_target is not None and self._writer_task is None:
            self._queue = asyncio.Queue()
            self._writer_task = asyncio.get_running_loop().create_task(
                self._writer_loop())

    async def stop(self) -> None:
        """Drain and stop the writer; pending submissions are refused."""
        self._closed = True
        if self._writer_task is not None:
            # A sentinel wakes the writer so it can observe _closed.
            await self._queue.put(None)
            await self._writer_task
            self._writer_task = None

    # ------------------------------------------------------------------
    # the single-writer protocol
    # ------------------------------------------------------------------
    async def submit(self, op: str, args: Tuple[Any, ...], *,
                     deadline: Optional[float] = None) -> int:
        """Queue one mutation; resolves to the epoch where it is visible.

        Raises the underlying engine error (unknown node, cycle, …) when
        the mutation is rejected; raises :class:`ProtocolError` on a
        read-only, shutting-down, or write-queue-full server, and
        ``deadline-exceeded`` when ``deadline`` (a ``time.monotonic()``
        instant) passes before the writer applies the op.  Every one of
        those refusals happens *before* application — the write was not
        applied and is safe to retry.
        """
        from repro.server.protocol import OverloadedError, ProtocolError
        if self._write_target is None:
            raise ProtocolError(
                "read-only",
                "this server serves a frozen snapshot and accepts no "
                "writes")
        if self._closed:
            raise ProtocolError("shutting-down", "server is shutting down")
        if op not in WRITE_METHODS:
            raise ReproError(f"unknown write op {op!r}")
        if self._queue is None:
            raise ReproError("writer task not started; call start() first")
        if deadline is not None and time.monotonic() >= deadline:
            raise ProtocolError(
                "deadline-exceeded",
                "deadline expired before the write was queued; "
                "it was not applied")
        if 0 < self.max_pending_writes <= self._queue.qsize():
            self._writes_shed.inc()
            raise OverloadedError(
                f"write queue is full ({self._queue.qsize()} pending, "
                f"cap {self.max_pending_writes}); the write was not "
                f"applied")
        future = asyncio.get_running_loop().create_future()
        await self._queue.put(WriteOp(op, args, future, deadline))
        return await future

    async def _writer_loop(self) -> None:
        queue = self._queue
        while True:
            first = await queue.get()
            if first is None:
                if self._closed:
                    return
                continue
            batch: List[WriteOp] = [first]
            while not queue.empty():
                item = queue.get_nowait()
                if item is None:
                    if self._closed:
                        self._apply_and_publish(batch)
                        return
                    continue
                batch.append(item)
            self._apply_and_publish(batch)
            if self._closed and queue.empty():
                return

    def _apply_and_publish(self, batch: List[WriteOp]) -> None:
        """Apply one drained batch, swap the epoch, then acknowledge.

        Synchronous on purpose: no ``await`` between the first mutation
        and the publish, so no read coroutine can observe a half-applied
        batch through the *mutable* engine — they only ever read the
        snapshot, and the snapshot swap is one attribute store.
        """
        from repro.server.protocol import ProtocolError
        target = self._write_target
        applied: List[WriteOp] = []
        now = time.monotonic()
        for write in batch:
            if write.deadline is not None and now >= write.deadline:
                # Still unapplied and already worthless: refusing here
                # keeps the deadline-exceeded = not-applied guarantee
                # while sparing the refreeze a mutation nobody wants.
                self._writes_expired.inc()
                if not write.future.cancelled():
                    write.future.set_exception(ProtocolError(
                        "deadline-exceeded",
                        "deadline expired while the write was queued; "
                        "it was not applied"))
                continue
            try:
                getattr(target, WRITE_METHODS[write.op])(*write.args)
            except Exception as error:  # per-op failure, batch continues
                self._write_errors.inc()
                if not write.future.cancelled():
                    write.future.set_exception(error)
            else:
                applied.append(write)
        if applied:
            started = time.perf_counter_ns()
            engine = self._compile()
            self.snapshot = Snapshot(self.snapshot.epoch + 1, engine)
            self._publish_seconds.observe_ns(
                time.perf_counter_ns() - started)
            self._swaps.inc()
            self._writes.inc(len(applied))
            self._write_batch.observe(len(applied))
            self._set_epoch_gauge()
            try:
                self._on_publish()
            except Exception as error:
                # The snapshot swapped but the post-publish step (e.g. a
                # cluster generation write) failed: acking now would
                # promise other processes a generation they cannot see.
                # Fail the batch and let the error propagate — a writer
                # that cannot publish must not pretend it can.
                for write in applied:
                    if not write.future.cancelled():
                        write.future.set_exception(error)
                raise
        epoch = self.snapshot.epoch
        for write in applied:
            if not write.future.cancelled():
                write.future.set_result(epoch)

    def _on_publish(self) -> None:
        """Hook: runs after each snapshot swap, *before* acks.

        The cluster's :class:`~repro.server.cluster.PublishingState`
        overrides this to write the new generation file and move the
        ``CURRENT`` pointer — publish-before-ack across processes."""
