"""Adaptive batch coalescing: many wire checks, one vectorised call.

``BENCH_frozen.json``'s 4.5x batched-reachability win was only reachable
from Python callers who already held a list of pairs.  The coalescer
recovers it at the wire: ``check`` requests that arrive concurrently —
from any number of connections — are gathered for a bounded window (or
until a size threshold) and answered by a single
:meth:`~repro.core.frozen.FrozenTCIndex.reachable_many` call against one
pinned snapshot.  Every request in a batch is therefore answered at the
same epoch: a batch cannot tear across an epoch swap by construction.

The default gather window is *one scheduler pass*: the drain is queued
with ``call_soon``, so every check whose socket data arrived in the
same event-loop ready cycle lands in the same batch, at zero added
latency — closed-loop clients are never left waiting on a timer for
traffic that cannot arrive (their next request is blocked on our
answer).  A positive ``window`` opts into timed gathering for
*open-loop* traffic (arrivals independent of responses), where holding
the batch a few hundred microseconds genuinely merges more waves; the
coalescer adapts by watching an exponentially-weighted moving average
of batch sizes and collapsing a configured window back to the bare
yield while batches stay below :attr:`ADAPTIVE_THRESHOLD`, so sparse
traffic never pays the window's latency tax.  A size threshold
(``max_batch`` pairs) drains early regardless, bounding both latency
and peak batch memory.

Submissions are *groups*: a connection that read several pipelined
checks in one socket chunk submits them as one group, so per-request
overhead is paid per connection-flush, not per check.  Groups complete
in one of two ways: :meth:`~BatchCoalescer.submit_group` invokes a
plain callback synchronously inside the drain (the wire hot path — no
future, no task suspension, the drain writes every response itself),
while :meth:`~BatchCoalescer.check_group` resolves an awaitable (the
``check-many`` op and other in-coroutine callers).
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry

__all__ = ["BatchCoalescer", "CheckGroup", "EXPIRED"]


class _Expired:
    """Sentinel answer for a check whose deadline passed before the
    drain reached it.  Distinct from ``None`` (node not in snapshot):
    the caller turns it into a ``deadline-exceeded`` error."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "EXPIRED"


EXPIRED = _Expired()


def _member(engine, node) -> bool:
    """Membership that treats unhashable values as simply absent.

    The wire layer rejects unhashable ``u``/``v`` at parse time, but
    ``check_group`` is also a public in-process surface — and one bad
    value must never abort a drain that other connections' groups are
    riding in.
    """
    try:
        return node in engine
    except TypeError:
        return False

#: Default gather window, seconds.  Zero means "one scheduler pass":
#: drain everything that arrived in the current event-loop ready cycle.
DEFAULT_WINDOW = 0.0
#: Default drain-now threshold, total pairs across pending groups.
DEFAULT_MAX_BATCH = 512
#: EWMA batch size above which a configured timed window engages.
ADAPTIVE_THRESHOLD = 4.0
#: EWMA smoothing factor (weight of the newest batch).
EWMA_ALPHA = 0.2
#: Below this many pairs a drain answers with scalar lookups: the
#: vectorised ``reachable_many`` carries ~13µs of fixed array-building
#: cost, which singles at ~1.3µs/pair undercut until roughly ten pairs.
SCALAR_CUTOFF = 10


class CheckGroup:
    """One connection's flush of checks awaiting a shared answer.

    Exactly one of ``future`` / ``callback`` is set: a future suspends
    an awaiting coroutine, a callback runs synchronously in the drain.
    ``deadline`` is a ``time.monotonic()`` instant past which *every*
    check in the group is worthless — the drain then skips the lookups
    entirely and answers :data:`EXPIRED` (the load-shedding half of
    deadline enforcement: expired queued work must not consume the
    engine time that live requests need).
    """

    __slots__ = ("pairs", "future", "callback", "deadline")

    def __init__(self, pairs: Sequence[Tuple[object, object]],
                 future: Optional["asyncio.Future"] = None,
                 callback=None, deadline: Optional[float] = None) -> None:
        self.pairs = pairs
        self.future = future
        self.callback = callback
        self.deadline = deadline


class BatchCoalescer:
    """Gather concurrent check groups; answer each batch from one snapshot.

    ``get_snapshot`` is called exactly once per drain, so every answer in
    a batch comes from the same epoch.  Answers are ``True``/``False``,
    or ``None`` for a pair naming a node absent from that snapshot (the
    caller turns ``None`` into a structured ``not-found`` error — a node
    may vanish between enqueue and drain when a remove races the check,
    so membership is judged against the serving snapshot, not arrival
    state).
    """

    def __init__(self, get_snapshot, *, window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH, enabled: bool = True,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        self._get_snapshot = get_snapshot
        self.window = window
        self.max_batch = max_batch
        self.enabled = enabled
        self._pending: List[CheckGroup] = []
        self._pending_pairs = 0
        self._drain_handle = None
        self._ewma = 1.0
        registry = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        self._batches = registry.counter(
            "tc_server_batches_total",
            help="coalesced reachable_many drains")
        self._coalesced = registry.counter(
            "tc_server_coalesced_checks_total",
            help="checks answered through a coalesced batch")
        self._batch_size = registry.histogram(
            "tc_server_batch_size",
            help="pairs answered per coalesced drain",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024))
        self._windowed = registry.counter(
            "tc_server_windowed_drains_total",
            help="drains that waited the full gather window")
        self._expired = registry.counter(
            "tc_server_expired_checks_total",
            help="queued checks dropped unanswered because their "
                 "deadline passed before the drain")

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def check_group(
            self, pairs: Sequence[Tuple[object, object]], *,
            deadline: Optional[float] = None
    ) -> Tuple[List[Optional[bool]], object]:
        """Answer a group of ``(source, destination)`` checks.

        Returns ``(answers, snapshot)``; ``answers[i]`` is ``None`` when
        a node of ``pairs[i]`` is not in the serving snapshot, or
        :data:`EXPIRED` when ``deadline`` passed before the drain ran.
        The snapshot is the exact one the batch was answered from, so
        the caller can attribute a ``None`` to its missing node without
        racing a concurrent epoch swap.
        """
        if not self.enabled or not pairs:
            return self.answer_now(pairs)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._pending.append(CheckGroup(pairs, future=future,
                                        deadline=deadline))
        self._pending_pairs += len(pairs)
        self._schedule_drain(loop)
        return await future

    def submit_group(self, pairs: Sequence[Tuple[object, object]],
                     callback, *, deadline: Optional[float] = None) -> None:
        """Enqueue a group whose ``callback(answers, snapshot)`` runs in
        the drain — the wire hot path, with no future and no task wakeup.

        The callback must not raise and must not block; it runs inside
        the drain, so a slow callback delays every group in the batch.
        """
        self._pending.append(CheckGroup(pairs, callback=callback,
                                        deadline=deadline))
        self._pending_pairs += len(pairs)
        self._schedule_drain(asyncio.get_running_loop())

    def _schedule_drain(self, loop) -> None:
        if self._pending_pairs >= self.max_batch:
            self._drain()
            return
        if self._drain_handle is not None:
            return
        if self.window > 0 and self._ewma >= ADAPTIVE_THRESHOLD:
            # Open-loop traffic at real concurrency: hold the batch for
            # the configured window to merge more arrival waves.
            self._windowed.inc()
            self._drain_handle = loop.call_later(self.window, self._drain)
        else:
            # One scheduler pass: everything already in the loop's ready
            # queue joins the batch, and nobody waits on a timer.
            self._drain_handle = loop.call_soon(self._drain)

    def answer_now(self, pairs) -> Tuple[List[Optional[bool]], object]:
        """The no-coalescing path: singles against the current snapshot."""
        snapshot = self._get_snapshot()
        engine = snapshot.engine
        answers: List[Optional[bool]] = []
        for source, destination in pairs:
            if _member(engine, source) and _member(engine, destination):
                answers.append(bool(engine.reachable(source, destination)))
            else:
                answers.append(None)
        return answers, snapshot

    # ------------------------------------------------------------------
    # draining
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        """Answer every pending group from one pinned snapshot.

        Runs as a plain callback — there is no await inside, so the
        batch is computed and resolved atomically with respect to the
        event loop.
        """
        if self._drain_handle is not None:
            self._drain_handle.cancel()
            self._drain_handle = None
        groups, self._pending = self._pending, []
        batch_pairs, self._pending_pairs = self._pending_pairs, 0
        if not groups:
            return
        snapshot = self._get_snapshot()
        engine = snapshot.engine
        now = time.monotonic()

        flat: List[Tuple[object, object]] = []
        slots: List[Tuple[int, int]] = []
        answers_per_group: List[List[Optional[bool]]] = []
        for group_index, group in enumerate(groups):
            if group.deadline is not None and now >= group.deadline:
                # The whole group is already worthless: answering it
                # would spend engine time live requests need.  This is
                # the shedding half of deadline enforcement.
                answers_per_group.append([EXPIRED] * len(group.pairs))
                self._expired.inc(len(group.pairs))
                continue
            answers: List[Optional[bool]] = [None] * len(group.pairs)
            for position, (source, destination) in enumerate(group.pairs):
                if _member(engine, source) and _member(engine, destination):
                    slots.append((group_index, position))
                    flat.append((source, destination))
            answers_per_group.append(answers)
        if flat:
            if len(flat) < SCALAR_CUTOFF:
                hits = [engine.reachable(source, destination)
                        for source, destination in flat]
            else:
                hits = engine.reachable_many(flat)
            for (group_index, position), hit in zip(slots, hits):
                answers_per_group[group_index][position] = bool(hit)

        self._ewma = ((1.0 - EWMA_ALPHA) * self._ewma
                      + EWMA_ALPHA * batch_pairs)
        self._batches.inc()
        self._batch_size.observe(batch_pairs)
        if len(groups) > 1 or batch_pairs > len(groups):
            self._coalesced.inc(batch_pairs)
        for group, answers in zip(groups, answers_per_group):
            if group.callback is not None:
                try:
                    group.callback(answers, snapshot)
                except Exception:  # noqa: BLE001
                    # One connection's encoder must not poison the rest
                    # of the batch (its peer is likely gone anyway).
                    continue
            elif not group.future.cancelled():
                group.future.set_result((answers, snapshot))

    def stats(self) -> dict:
        return {
            "enabled": self.enabled,
            "window_seconds": self.window,
            "max_batch": self.max_batch,
            "ewma_batch_size": round(self._ewma, 3),
            "pending_pairs": self._pending_pairs,
        }
