"""Reachability-as-a-service: the asyncio network front end.

The paper's interval index answers ``reachable(u, v)`` in near-constant
time, but until this package every consumer was an in-process Python
caller.  :mod:`repro.server` turns the library into a service with the
same serve-from-immutable-snapshot shape Zanzibar-style permission
checkers use: millions of ``(user, resource)`` checks per second against
a slowly-mutating DAG.

* :mod:`repro.server.protocol` — the wire format: length-prefixed JSON
  frames over TCP, plus a minimal HTTP/1.1 mode on the same port.
* :mod:`repro.server.state` — the epoch-swap snapshot protocol: reads
  are served from a pinned immutable frozen snapshot shared lock-free
  across connections; writes route through the hybrid engine behind a
  single-writer task and atomically publish a re-frozen snapshot.
* :mod:`repro.server.coalesce` — adaptive batch coalescing: concurrent
  ``check`` calls are gathered for a bounded window (or a size
  threshold) and answered by one vectorised ``reachable_many`` call.
* :mod:`repro.server.app` — :class:`ReachabilityServer`, the connection
  handler and op dispatcher.
* :mod:`repro.server.client` — :class:`ReachabilityClient`, the asyncio
  client helper used by tests, the benchmark, and the CLI smoke jobs.
* :mod:`repro.server.inprocess` — a background-thread harness that runs
  a live server inside one process, used by the differential fuzzer.

Quick start::

    server = ReachabilityServer(open_index("closure.rtcf"))
    await server.start(port=7411)
    ...
    client = await ReachabilityClient.connect("127.0.0.1", 7411)
    assert await client.check("alice", "doc9")
"""

from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient, ServerError
from repro.server.coalesce import BatchCoalescer
from repro.server.protocol import (
    DEFAULT_MAX_FRAME,
    ERROR_CODES,
    ProtocolError,
    decode_payload,
    encode_frame,
    encode_response,
)
from repro.server.state import ServeState, Snapshot

__all__ = [
    "BatchCoalescer",
    "DEFAULT_MAX_FRAME",
    "ERROR_CODES",
    "ProtocolError",
    "ReachabilityClient",
    "ReachabilityServer",
    "ServeState",
    "ServerError",
    "Snapshot",
    "decode_payload",
    "encode_frame",
    "encode_response",
]
