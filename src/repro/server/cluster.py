"""Preforked multi-core serving over shared RTCF snapshot generations.

One writer process (the parent) owns the mutable engine and the
single-writer protocol from :mod:`repro.server.state`; N read-worker
processes each run the ordinary :class:`ReachabilityServer` loop
against a zero-copy mmap of the current snapshot generation
(:mod:`repro.server.generations`).  The pieces:

* **Accept sharding.**  Every worker owns a ``SO_REUSEPORT`` listening
  socket on the same port, so the kernel load-balances connections with
  no userspace dispatcher.  On platforms without ``SO_REUSEPORT`` the
  parent binds and listens once and the workers inherit the socket
  through ``fork`` — same port, kernel accept queue as the balancer.
* **Publish-before-ack, across processes.**  A mutation reaches a
  worker, is forwarded over a unix socket to the writer, and the writer
  acks only after the covering generation file is on disk with
  ``CURRENT`` pointing at it (:class:`PublishingState`).  The worker
  then re-attaches until its own mmap covers the acked epoch before
  answering — so after an ack, every later read *on that connection*
  is served at or above the acked epoch, exactly PR 7's guarantee.
* **O(1) re-attach.**  Workers poll ``CURRENT`` between requests and
  swap in the new generation with one mmap; queries in flight keep the
  old mapping (POSIX keeps unlinked mapped files readable), so garbage
  collection of stale generations never blocks on readers.
* **Merged observability.**  Each worker tags every metric series with
  ``worker_id`` and exposes a JSON snapshot on a per-worker admin
  socket; the parent's ``/metrics`` scrapes them all and renders one
  Prometheus view, and ``/healthz`` reports epoch, generation, and
  per-worker liveness.

``repro serve --workers N --snapshot-dir DIR`` wires this up from the
CLI.  Frozen (read-only) engines are served the same way minus the
write path.  Engines using fractional postorder numbering cannot be
published as RTCF and draw a clear error at startup.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.errors import ReproError
from repro.obs.export import render_prometheus_snapshots
from repro.obs.metrics import MetricsRegistry
from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient
from repro.server.coalesce import DEFAULT_MAX_BATCH, DEFAULT_WINDOW
from repro.server.generations import GenerationStore
from repro.server.protocol import (DEFAULT_MAX_FRAME, ERROR_CODES,
                                   ProtocolError)
from repro.server.state import ServeState, Snapshot

__all__ = ["ClusterServer", "PublishingState", "WorkerState"]

#: Default for how long a worker may wait for an acked generation to
#: become visible in its own mmap before declaring the cluster wedged.
#: Tunable per instance (``WorkerState(ack_timeout=...)`` /
#: ``ClusterServer(ack_timeout=...)`` / ``repro serve --ack-timeout``).
DEFAULT_ACK_TIMEOUT = 30.0
#: Default wait for a forked worker to start accepting
#: (``ClusterServer(ready_timeout=...)`` / ``--ready-timeout``).
DEFAULT_READY_TIMEOUT = 30.0
#: Default wait for terminated workers to exit before SIGKILL
#: (``ClusterServer(join_timeout=...)`` / ``--join-timeout``).
DEFAULT_JOIN_TIMEOUT = 10.0

#: sun_path is 108 bytes on Linux (104 on BSDs); leave headroom for
#: the ``worker-NN.sock`` suffix.
_MAX_SOCKET_DIR = 70


def reuseport_available() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


def _reuseport_socket(host: str, port: int, *, listen: bool) -> socket.socket:
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
    sock.bind((host, port))
    if listen:
        sock.listen(256)
    return sock


# ----------------------------------------------------------------------
# writer side
# ----------------------------------------------------------------------
class PublishingState(ServeState):
    """ServeState that writes each published epoch to the generation
    store *before* acknowledging it — publish-before-ack extended from
    an attribute swap to an atomic rename other processes can see."""

    def __init__(self, engine, store: GenerationStore, **kwargs) -> None:
        self._store = store
        super().__init__(engine, **kwargs)
        self.generation: Optional[str] = None
        self._generation_seconds = self._metrics.histogram(
            "tc_cluster_generation_publish_seconds",
            help="wall time to write and point a generation file")

    def publish_initial(self) -> str:
        """Write generation 0 so workers have something to attach."""
        self.generation = self._store.publish(
            self.snapshot.engine, self.snapshot.epoch)
        return self.generation

    def _on_publish(self) -> None:
        started = time.perf_counter_ns()
        self.generation = self._store.publish(
            self.snapshot.engine, self.snapshot.epoch)
        self._generation_seconds.observe_ns(
            time.perf_counter_ns() - started)

    def stats(self) -> dict:
        payload = super().stats()
        payload["generation"] = self.generation
        return payload


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class WorkerState:
    """A read-worker's ServeState-shaped view of the cluster.

    Queries answer from ``snapshot`` — an mmap of the current
    generation, refreshed by a background poll of ``CURRENT`` and
    force-refreshed after every forwarded write ack.  Mutations forward
    to the writer over its unix socket and ack only once the covering
    generation is locally visible.
    """

    def __init__(self, store: GenerationStore, *, worker_id: int = 0,
                 writer_path: Optional[str] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 poll_interval: float = 0.02,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT) -> None:
        self._store = store
        self.worker_id = worker_id
        self._writer_path = writer_path
        self._metrics = metrics if metrics is not None \
            else MetricsRegistry(enabled=False)
        self._poll_interval = poll_interval
        self._max_frame = max_frame
        self.ack_timeout = float(ack_timeout)
        self._client: Optional[ReachabilityClient] = None
        self._client_lock: Optional[asyncio.Lock] = None
        self._poll_task: Optional[asyncio.Task] = None
        self._closed = False
        epoch, name, engine = store.attach()
        self.snapshot = Snapshot(epoch, engine)
        self.generation = name
        self._reattaches = self._metrics.counter(
            "tc_worker_reattach_total",
            help="generation re-attaches (mmap swaps)")
        self._refresh_errors = self._metrics.counter(
            "tc_worker_refresh_errors_total",
            help="failed CURRENT polls or attaches")
        self._forwarded = self._metrics.counter(
            "tc_worker_forwarded_writes_total",
            help="mutations forwarded to the writer")
        self._epoch_gauge = self._metrics.gauge(
            "tc_server_epoch", help="currently served epoch")
        self._epoch_gauge.set(epoch)

    # -- introspection -------------------------------------------------
    @property
    def read_only(self) -> bool:
        return self._writer_path is None

    @property
    def epoch(self) -> int:
        return self.snapshot.epoch

    def stats(self) -> dict:
        snapshot = self.snapshot
        payload = {
            "epoch": snapshot.epoch,
            "generation": self.generation,
            "worker_id": self.worker_id,
            "read_only": self.read_only,
            "nodes": len(snapshot.engine),
            "pending_writes": 0,
        }
        engine_stats = snapshot.engine.stats()
        payload["snapshot"] = (engine_stats.as_dict()
                               if hasattr(engine_stats, "as_dict")
                               else engine_stats)
        return payload

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self._poll_task is None:
            self._poll_task = asyncio.get_running_loop().create_task(
                self._poll_loop())

    async def stop(self) -> None:
        self._closed = True
        if self._poll_task is not None:
            self._poll_task.cancel()
            try:
                await self._poll_task
            except asyncio.CancelledError:
                pass
            self._poll_task = None
        client, self._client = self._client, None
        if client is not None:
            await client.close()

    # -- generation tracking -------------------------------------------
    def refresh(self) -> bool:
        """Re-attach if ``CURRENT`` moved; True when the snapshot swapped.

        Synchronous on purpose: one pointer read plus one O(1) mmap,
        cheap enough to run between requests.  The displaced view is
        *not* closed — queries in flight still hold it; the garbage
        collector unmaps it when the last reference drops.
        """
        current = self._store.current()
        if current is None or current[1] == self.generation:
            return False
        epoch, name, engine = self._store.attach()
        self.snapshot = Snapshot(epoch, engine)
        self.generation = name
        self._reattaches.inc()
        self._epoch_gauge.set(epoch)
        return True

    async def _poll_loop(self) -> None:
        while not self._closed:
            await asyncio.sleep(self._poll_interval)
            try:
                self.refresh()
            except Exception:  # noqa: BLE001 - keep polling
                self._refresh_errors.inc()

    async def _await_epoch(self, epoch: int) -> None:
        """Spin-refresh until the local snapshot covers ``epoch``.

        The writer publishes the generation before acking, so normally
        the very first refresh lands it; the loop only absorbs fs-level
        races."""
        deadline = asyncio.get_running_loop().time() + self.ack_timeout
        while self.snapshot.epoch < epoch:
            try:
                self.refresh()
            except Exception:  # noqa: BLE001 - retry below
                self._refresh_errors.inc()
            if self.snapshot.epoch >= epoch:
                return
            if asyncio.get_running_loop().time() >= deadline:
                raise ProtocolError(
                    "server-error",
                    f"acked epoch {epoch} never became visible in "
                    f"worker {self.worker_id}")
            await asyncio.sleep(0.002)

    # -- forwarded writes ----------------------------------------------
    async def _writer_client(self) -> ReachabilityClient:
        if self._client_lock is None:
            self._client_lock = asyncio.Lock()
        async with self._client_lock:
            if self._client is None or self._client.closed:
                self._client = await ReachabilityClient.connect_unix(
                    self._writer_path, max_frame=self._max_frame)
            return self._client

    async def submit(self, op: str, args: Tuple[Any, ...], *,
                     deadline: Optional[float] = None) -> int:
        if self._writer_path is None:
            raise ProtocolError(
                "read-only",
                "this cluster serves a frozen snapshot and accepts no "
                "writes")
        if self._closed:
            raise ProtocolError("shutting-down", "server is shutting down")
        fields = _forward_fields(op, args)
        if deadline is not None:
            # Forward the *remaining* budget so the writer enforces the
            # same drop-dead instant; an already-expired budget is
            # refused here, before the write leaves this process.
            remaining_ms = (deadline - time.monotonic()) * 1000.0
            if remaining_ms <= 0:
                raise ProtocolError(
                    "deadline-exceeded",
                    "deadline_ms budget expired before the write was "
                    "forwarded; it was not applied")
            fields["deadline_ms"] = remaining_ms
        try:
            client = await self._writer_client()
            response = await client.request(op, **fields)
        except ProtocolError:
            raise
        except (ConnectionError, OSError) as error:
            raise ProtocolError(
                "server-error",
                f"writer unreachable: {error}") from error
        self._forwarded.inc()
        if not response.get("ok"):
            error = response.get("error", {})
            code = error.get("code", "server-error")
            if code not in ERROR_CODES:
                code = "server-error"
            raise ProtocolError(code, error.get("message", "write failed"))
        epoch = int(response.get("epoch", 0))
        await self._await_epoch(epoch)
        return epoch


def _forward_fields(op: str, args: Tuple[Any, ...]) -> dict:
    """Re-encode a validated mutation back into wire fields."""
    if op in ("add-arc", "remove-arc"):
        return {"u": args[0], "v": args[1]}
    if op == "add-node":
        return {"node": args[0], "parents": list(args[1])}
    if op == "remove-node":
        return {"node": args[0]}
    raise ReproError(f"unknown write op {op!r}")


# ----------------------------------------------------------------------
# worker process entry
# ----------------------------------------------------------------------
class _WorkerConfig:
    """Everything a forked worker needs, passed through ``fork`` (no
    pickling: the fork start method hands the child the live objects,
    which is what lets the no-reuseport fallback ship a socket)."""

    __slots__ = ("worker_id", "root", "keep", "writer_path", "admin_path",
                 "host", "port", "listen_sock", "coalesce", "window",
                 "max_batch", "max_frame", "poll_interval", "ack_timeout",
                 "max_inflight", "shed_retry_after_ms", "write_high_water",
                 "write_grace")

    def __init__(self, **kwargs) -> None:
        for name in self.__slots__:
            setattr(self, name, kwargs[name])


def _worker_main(config: _WorkerConfig, ready) -> None:
    # The forking thread may have had a running event loop (supervisor
    # respawns fork from an executor thread precisely to avoid this,
    # but belt and braces): make sure this process starts loop-free.
    try:
        asyncio.events._set_running_loop(None)  # noqa: SLF001
    except Exception:  # pragma: no cover - private API drift
        pass
    asyncio.set_event_loop(None)
    try:
        asyncio.run(_worker_async(config, ready))
    except KeyboardInterrupt:  # pragma: no cover - SIGINT fallback path
        pass


async def _worker_async(config: _WorkerConfig, ready) -> None:
    registry = MetricsRegistry(
        default_labels={"worker_id": str(config.worker_id)})
    store = GenerationStore(config.root, keep=config.keep)
    state = WorkerState(store, worker_id=config.worker_id,
                        writer_path=config.writer_path,
                        metrics=registry,
                        poll_interval=config.poll_interval,
                        max_frame=config.max_frame,
                        ack_timeout=config.ack_timeout)
    server = ReachabilityServer(
        state=state, metrics=registry, coalesce=config.coalesce,
        window=config.window, max_batch=config.max_batch,
        max_frame=config.max_frame, allow_shutdown=False,
        max_inflight=config.max_inflight,
        shed_retry_after_ms=config.shed_retry_after_ms,
        write_high_water=config.write_high_water,
        write_grace=config.write_grace)
    if config.listen_sock is not None:
        await server.start(sock=config.listen_sock)
    else:
        await server.start(sock=_reuseport_socket(
            config.host, config.port, listen=True))
    if config.admin_path:
        try:
            os.unlink(config.admin_path)
        except FileNotFoundError:
            pass
        await server.start_unix(config.admin_path)
    server.install_signal_handlers()
    ready.set()
    await server.serve_until_shutdown()


# ----------------------------------------------------------------------
# the parent: writer + supervisor + merged admin plane
# ----------------------------------------------------------------------
class _WorkerRecord:
    __slots__ = ("config", "process", "restarts")

    def __init__(self, config: _WorkerConfig) -> None:
        self.config = config
        self.process = None
        self.restarts = 0


class _ParentServer(ReachabilityServer):
    """The writer's server, with cluster-wide ``/metrics``/``/healthz``.

    Listens on the writer unix socket (worker write forwarding) and the
    admin TCP port; a ``shutdown`` op or signal here stops the whole
    cluster."""

    def __init__(self, cluster: "ClusterServer", **kwargs) -> None:
        super().__init__(**kwargs)
        self._cluster = cluster

    async def _http_route(self, method: str, target: str,
                          body: bytes) -> Tuple[int, str, bytes]:
        path = urlsplit(target).path
        if path == "/metrics" and method in ("GET", "HEAD"):
            snapshots = await self._cluster.gather_metric_snapshots()
            return 200, "text/plain; version=0.0.4", \
                render_prometheus_snapshots(snapshots).encode("utf-8")
        if path == "/healthz":
            payload = (json.dumps(self._cluster.health(), sort_keys=True)
                       + "\n").encode("utf-8")
            return 200, "application/json", payload
        return await super()._http_route(method, target, body)


class ClusterServer:
    """The preforked worker pool: fork, serve, supervise, shut down.

    Synchronous :meth:`start` publishes generation 0, reserves the
    port, and forks the workers — call it *before* any event loop runs
    in this process (forking a live loop duplicates its internals).
    Then either :meth:`run` (blocking, installs signal handlers — the
    CLI path) or ``await`` :meth:`start_parent` /
    :meth:`serve_until_shutdown` on a loop you own (the test-harness
    path).
    """

    def __init__(self, engine, *, workers: int = 2,
                 snapshot_dir=None, host: str = "127.0.0.1",
                 port: int = 0, admin_port: int = 0,
                 coalesce: bool = True, window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 poll_interval: float = 0.02, keep_generations: int = 2,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 max_inflight: int = 0, max_pending_writes: int = 0,
                 shed_retry_after_ms: int = 50,
                 write_high_water: int = 0, write_grace: float = 10.0,
                 ack_timeout: float = DEFAULT_ACK_TIMEOUT,
                 ready_timeout: float = DEFAULT_READY_TIMEOUT,
                 join_timeout: float = DEFAULT_JOIN_TIMEOUT) -> None:
        if workers < 1:
            raise ReproError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.host = host
        self.port = port
        self.admin_port = admin_port
        self.admin_host: Optional[str] = None
        self.coalesce = coalesce
        self.window = window
        self.max_batch = max_batch
        self.max_frame = max_frame
        self.poll_interval = poll_interval
        self.max_inflight = int(max_inflight)
        self.max_pending_writes = int(max_pending_writes)
        self.shed_retry_after_ms = int(shed_retry_after_ms)
        self.write_high_water = int(write_high_water)
        self.write_grace = float(write_grace)
        self.ack_timeout = float(ack_timeout)
        self.ready_timeout = float(ready_timeout)
        self.join_timeout = float(join_timeout)
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            default_labels={"worker_id": "writer"})
        self._owned_dir: Optional[tempfile.TemporaryDirectory] = None
        if snapshot_dir is None:
            self._owned_dir = tempfile.TemporaryDirectory(
                prefix="repro-cluster-")
            snapshot_dir = self._owned_dir.name
        self.store = GenerationStore(snapshot_dir, keep=keep_generations)
        self.state = PublishingState(engine, self.store,
                                     metrics=self.metrics, tracer=tracer,
                                     max_pending_writes=max_pending_writes)
        self._socket_dir = self._pick_socket_dir()
        self.writer_path = str(Path(self._socket_dir) / "writer.sock")
        self._listen_sock: Optional[socket.socket] = None
        self._reuseport = reuseport_available()
        self._workers: Dict[int, _WorkerRecord] = {}
        self._mp = None
        self.server: Optional[_ParentServer] = None
        self._supervisor_task: Optional[asyncio.Task] = None
        self._stopping = False
        self._scrape_failures = self.metrics.counter(
            "tc_cluster_scrape_failures_total",
            help="worker metric scrapes that failed")
        self._restart_counter = self.metrics.counter(
            "tc_cluster_worker_restarts_total",
            help="workers respawned after dying unexpectedly")

    def _pick_socket_dir(self) -> str:
        root = str(self.store.root)
        if len(root) <= _MAX_SOCKET_DIR:
            return root
        # sun_path would overflow: put control sockets in a short tmpdir.
        self._socket_tmp = tempfile.TemporaryDirectory(prefix="repro-ipc-")
        return self._socket_tmp.name

    def worker_admin_path(self, worker_id: int) -> str:
        return str(Path(self._socket_dir) / f"worker-{worker_id}.sock")

    # ------------------------------------------------------------------
    # pre-loop phase: publish gen-0, reserve the port, fork
    # ------------------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Publish generation 0 and fork the workers; returns the bound
        serving address.  Must run before this process starts a loop."""
        import multiprocessing
        self._mp = multiprocessing.get_context("fork")
        self.state.publish_initial()
        if self._reuseport:
            # Bound but NOT listening: reserves the port number without
            # joining the kernel's accept distribution, so every SYN
            # goes to a worker.
            self._listen_sock = _reuseport_socket(self.host, self.port,
                                                  listen=False)
        else:
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((self.host, self.port))
            sock.listen(256)
            self._listen_sock = sock
        self.host, self.port = self._listen_sock.getsockname()[:2]
        for worker_id in range(self.workers):
            self._workers[worker_id] = _WorkerRecord(
                self._worker_config(worker_id))
        for worker_id in range(self.workers):
            self._spawn_worker(worker_id)
        return self.host, self.port

    def _worker_config(self, worker_id: int) -> _WorkerConfig:
        return _WorkerConfig(
            worker_id=worker_id, root=str(self.store.root),
            keep=self.store.keep,
            writer_path=None if self.state.read_only else self.writer_path,
            admin_path=self.worker_admin_path(worker_id),
            host=self.host, port=self.port,
            listen_sock=None if self._reuseport else self._listen_sock,
            coalesce=self.coalesce, window=self.window,
            max_batch=self.max_batch, max_frame=self.max_frame,
            poll_interval=self.poll_interval, ack_timeout=self.ack_timeout,
            max_inflight=self.max_inflight,
            shed_retry_after_ms=self.shed_retry_after_ms,
            write_high_water=self.write_high_water,
            write_grace=self.write_grace)

    def _spawn_worker(self, worker_id: int) -> None:
        """Fork one worker and wait until it is accepting. Runs in the
        calling thread — keep it off threads with a live event loop."""
        record = self._workers[worker_id]
        ready = self._mp.Event()
        process = self._mp.Process(
            target=_worker_main, args=(record.config, ready),
            daemon=True, name=f"repro-worker-{worker_id}")
        process.start()
        if not ready.wait(self.ready_timeout):
            process.terminate()
            raise ReproError(
                f"worker {worker_id} failed to become ready within "
                f"{self.ready_timeout:.0f}s")
        record.process = process

    # ------------------------------------------------------------------
    # parent async phase: writer + admin + supervision
    # ------------------------------------------------------------------
    async def start_parent(self) -> Tuple[str, int]:
        """Start the writer/admin server; returns the admin address."""
        self.server = _ParentServer(
            self, state=self.state, metrics=self.metrics,
            coalesce=False, max_frame=self.max_frame,
            max_inflight=self.max_inflight,
            shed_retry_after_ms=self.shed_retry_after_ms,
            write_high_water=self.write_high_water,
            write_grace=self.write_grace)
        await self.server.start_unix(self.writer_path)
        admin_host, admin_port = await self.server.start(
            self.host, self.admin_port)
        self.admin_host, self.admin_port = admin_host, admin_port
        self._supervisor_task = asyncio.get_running_loop().create_task(
            self._supervise())
        return admin_host, admin_port

    def install_signal_handlers(self) -> bool:
        return self.server.install_signal_handlers()

    def request_shutdown(self) -> None:
        if self.server is not None:
            self.server.request_shutdown()

    async def serve_until_shutdown(self) -> None:
        await self.server._shutdown.wait()  # noqa: SLF001
        await self.stop_parent()

    async def _supervise(self) -> None:
        """Respawn workers that die while the cluster is live."""
        loop = asyncio.get_running_loop()
        while not self._stopping:
            await asyncio.sleep(0.2)
            for worker_id, record in self._workers.items():
                process = record.process
                if (process is None or process.is_alive()
                        or self._stopping):
                    continue
                record.restarts += 1
                self._restart_counter.inc()
                try:
                    # Fork from an executor thread: the child must not
                    # inherit "a loop is running in this thread".
                    await loop.run_in_executor(
                        None, self._spawn_worker, worker_id)
                except Exception:  # noqa: BLE001 - keep supervising
                    record.process = None

    # ------------------------------------------------------------------
    # cluster admin plane
    # ------------------------------------------------------------------
    async def gather_metric_snapshots(self) -> List[dict]:
        """The writer's snapshot plus one scraped from each worker."""
        snapshots = [self.metrics.snapshot()]
        for worker_id in sorted(self._workers):
            try:
                client = await asyncio.wait_for(
                    ReachabilityClient.connect_unix(
                        self.worker_admin_path(worker_id)), 2.0)
                try:
                    snapshots.append(await asyncio.wait_for(
                        client.call("metrics"), 5.0))
                finally:
                    await client.close()
            except Exception:  # noqa: BLE001 - scrape must not 500
                self._scrape_failures.inc()
        return snapshots

    def health(self) -> dict:
        workers = []
        all_alive = True
        for worker_id, record in sorted(self._workers.items()):
            process = record.process
            alive = bool(process is not None and process.is_alive())
            all_alive = all_alive and alive
            workers.append({"worker_id": worker_id, "alive": alive,
                            "pid": process.pid if process else None,
                            "restarts": record.restarts})
        return {
            "ok": all_alive,
            "role": "writer",
            "epoch": self.state.epoch,
            "generation": self.state.generation,
            "nodes": len(self.state.snapshot.engine),
            "read_only": self.state.read_only,
            "workers": workers,
            "reuseport": self._reuseport,
        }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    async def stop_parent(self) -> None:
        """Drain and dismantle: workers first (they may still be
        forwarding writes), then the writer, then the sockets."""
        if self._stopping:
            return
        self._stopping = True
        if self._supervisor_task is not None:
            self._supervisor_task.cancel()
            try:
                await self._supervisor_task
            except asyncio.CancelledError:
                pass
            self._supervisor_task = None
        loop = asyncio.get_running_loop()
        for record in self._workers.values():
            if record.process is not None and record.process.is_alive():
                record.process.terminate()  # SIGTERM -> graceful drain
        deadline = loop.time() + self.join_timeout
        for record in self._workers.values():
            process = record.process
            if process is None:
                continue
            while process.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.02)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.kill()
                await loop.run_in_executor(None, process.join, 1.0)
        if self.server is not None:
            await self.server.stop()
        if self._listen_sock is not None:
            self._listen_sock.close()
            self._listen_sock = None
        for path in ([self.writer_path]
                     + [self.worker_admin_path(i) for i in self._workers]):
            try:
                os.unlink(path)
            except OSError:
                pass
        if getattr(self, "_socket_tmp", None) is not None:
            self._socket_tmp.cleanup()
            self._socket_tmp = None
        if self._owned_dir is not None:
            self._owned_dir.cleanup()
            self._owned_dir = None

    # ------------------------------------------------------------------
    # blocking entry point (the CLI path)
    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until a signal or ``shutdown`` op.  Call after
        :meth:`start`."""

        async def _serve() -> None:
            await self.start_parent()
            self.install_signal_handlers()
            await self.serve_until_shutdown()

        asyncio.run(_serve())
