"""The asyncio front end: connection handling and op dispatch.

One listening socket speaks two protocols.  Connections that open with
an HTTP method line get the minimal HTTP/1.1 mode (one request per
connection — made for ``curl`` and Prometheus scrapes of ``/metrics``);
everything else is the framed protocol from
:mod:`repro.server.protocol`.

The framed read loop is chunk-oriented: each socket read is split into
every complete frame it contains, and consecutive ``check`` requests
within a chunk form one *group* for the coalescer.  Check groups ride
the coalescer's callback path — the drain itself encodes and writes
their responses, with no per-request future or task wakeup — so the
read loop never blocks on a check and keeps feeding the batch.  A
per-connection sequencer (:class:`_OrderedWriter`) buffers whatever
completes early, so responses always hit the socket in request order
even when a drain callback and an inline op finish out of band.

Queries read ``state.snapshot`` once and answer from it — lock-free,
immutable, internally consistent.  Mutations await
:meth:`ServeState.submit`, which acknowledges only after the epoch swap
that makes them visible.  Malformed frames draw structured errors and
never kill the serving loop; only an unframeable stream (oversized
declared length) closes the connection, after answering.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import CycleError, NodeNotFoundError, ReproError
from repro.obs.export import render_json, render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.server import protocol
from repro.server.coalesce import (DEFAULT_MAX_BATCH, DEFAULT_WINDOW,
                                   EXPIRED, BatchCoalescer)
from repro.server.protocol import (DEFAULT_MAX_FRAME, ERROR_CODES,
                                   CannedError, FrameParser,
                                   OverloadedError, ProtocolError,
                                   decode_payload, encode_response,
                                   error_response, looks_like_http,
                                   ok_response)
from repro.server.state import ServeState

__all__ = ["ReachabilityServer"]

_READ_CHUNK = 1 << 16


class _OrderedWriter:
    """Sequence responses that complete out of band back into order.

    Every response unit (a run of checks, or one inline op) takes a
    sequence number in request order via :meth:`allocate`; whenever the
    next expected unit completes, it and every contiguously buffered
    successor go out in one socket write.
    """

    __slots__ = ("writer", "next_seq", "emit_seq", "buffered",
                 "_flush_waiter")

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.next_seq = 0
        self.emit_seq = 0
        self.buffered = {}
        self._flush_waiter = None

    def allocate(self) -> int:
        seq = self.next_seq
        self.next_seq += 1
        return seq

    def complete(self, seq: int, data: bytes) -> None:
        self.buffered[seq] = data
        if seq != self.emit_seq:
            return
        chunks = []
        while self.emit_seq in self.buffered:
            chunks.append(self.buffered.pop(self.emit_seq))
            self.emit_seq += 1
        if not self.writer.is_closing():
            self.writer.write(b"".join(chunks))
        if (self._flush_waiter is not None
                and not self._flush_waiter.done()
                and self.emit_seq == self.next_seq):
            self._flush_waiter.set_result(None)

    async def wait_flushed(self) -> None:
        """Wait until every allocated unit has completed and been sent."""
        while self.emit_seq < self.next_seq:
            self._flush_waiter = asyncio.get_running_loop().create_future()
            try:
                if self.emit_seq < self.next_seq:
                    await self._flush_waiter
            finally:
                self._flush_waiter = None


def _field(request: dict, name: str) -> Any:
    try:
        return request[name]
    except KeyError:
        raise ProtocolError("bad-request",
                            f"missing field {name!r}") from None


def _check_node(value: Any, name: str) -> Any:
    """Reject node values that cannot name a node (JSON arrays/objects).

    Validated at parse time so an unhashable value draws ``bad-request``
    here instead of a ``TypeError`` inside an engine lookup — the
    coalescer drain in particular answers whole batches of other
    connections' checks and must never see one.
    """
    try:
        hash(value)
    except TypeError:
        raise ProtocolError(
            "bad-request",
            f"{name!r} must be a JSON scalar node id, not an array or "
            f"object") from None
    return value


def _node_field(request: dict, name: str) -> Any:
    return _check_node(_field(request, name), name)


def _pair_list(request: dict, name: str = "pairs") -> List[Tuple[Any, Any]]:
    raw = _field(request, name)
    if not isinstance(raw, list):
        raise ProtocolError("bad-request", f"{name!r} must be a list")
    pairs = []
    for item in raw:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise ProtocolError(
                "bad-request", f"{name!r} entries must be [u, v] pairs")
        pairs.append((_check_node(item[0], name), _check_node(item[1], name)))
    return pairs


def _node_list(request: dict, name: str) -> List[Any]:
    raw = _field(request, name)
    if not isinstance(raw, list):
        raise ProtocolError("bad-request", f"{name!r} must be a list")
    for value in raw:
        _check_node(value, name)
    return raw


def _error_code(error: Exception) -> str:
    if isinstance(error, ProtocolError):
        return error.code
    # Forwarded errors (a cluster worker relaying the writer's verdict)
    # carry their wire code; preserve it so the client sees the same
    # code it would have seen talking to the writer directly.
    forwarded = getattr(error, "code", None)
    if isinstance(forwarded, str) and forwarded in ERROR_CODES:
        return forwarded
    if isinstance(error, NodeNotFoundError):
        return "not-found"
    if isinstance(error, CycleError):
        return "cycle"
    if isinstance(error, ReproError):
        return "bad-request"
    return "server-error"


class ReachabilityServer:
    """Serve one engine over TCP (framed JSON) and minimal HTTP.

    ``engine`` is anything :class:`~repro.server.state.ServeState`
    accepts — typically ``open_index(path, engine="hybrid")`` for a
    writable service or an RTCF/frozen view for a read-only one.
    """

    def __init__(self, engine=None, *,
                 state=None, metrics: Optional[MetricsRegistry] = None,
                 tracer=None, coalesce: bool = True,
                 window: float = DEFAULT_WINDOW,
                 max_batch: int = DEFAULT_MAX_BATCH,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 allow_shutdown: bool = True,
                 drain_grace: float = 5.0,
                 max_inflight: int = 0,
                 max_pending_writes: int = 0,
                 shed_retry_after_ms: int = 50,
                 write_high_water: int = 0,
                 write_grace: float = 10.0) -> None:
        if (engine is None) == (state is None):
            raise ReproError("pass exactly one of engine= or state=")
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        # ``state=`` injects any ServeState-shaped object — the cluster's
        # WorkerState (mmap snapshot + forwarded writes) plugs in here.
        self.state = state if state is not None else ServeState(
            engine, metrics=self.metrics, tracer=tracer,
            max_pending_writes=max_pending_writes)
        self.coalescer = BatchCoalescer(
            lambda: self.state.snapshot, window=window, max_batch=max_batch,
            enabled=coalesce, metrics=self.metrics)
        self.max_frame = max_frame
        self.allow_shutdown = allow_shutdown
        self.drain_grace = drain_grace
        #: Admission cap on concurrently admitted requests; 0 disables.
        #: Requests beyond the budget are shed with ``overloaded`` before
        #: any engine work — the queue never grows without bound, so
        #: admitted requests keep a bounded latency under overload.
        self.max_inflight = int(max_inflight)
        #: Backoff hint carried by ``overloaded`` errors.
        self.shed_retry_after_ms = int(shed_retry_after_ms)
        #: Per-connection send-buffer high-water mark, bytes; 0 disables.
        #: Above it, writes to that connection must drain within
        #: ``write_grace`` seconds or the connection is aborted — one
        #: slow reader must not pin server memory or stall the loop.
        self.write_high_water = int(write_high_water)
        self.write_grace = float(write_grace)
        self._inflight = 0
        self._servers: List[asyncio.AbstractServer] = []
        #: open connection -> "idle" | "busy" | its _OrderedWriter.
        self._conns: dict = {}
        # Created in start(): pre-3.10 asyncio.Event binds its loop at
        # construction, and the server may be built before asyncio.run().
        self._shutdown: Optional[asyncio.Event] = None
        self._connections_open = self.metrics.gauge(
            "tc_server_connections_open", help="currently open connections")
        self._connections_total = self.metrics.counter(
            "tc_server_connections_total", help="accepted connections")
        self._inflight_gauge = self.metrics.gauge(
            "tc_server_inflight_requests",
            help="admitted requests not yet answered")
        self._shed = self.metrics.counter(
            "tc_server_overload_shed_total",
            help="requests shed at admission (in-flight budget exhausted)")
        self._shed_canned = CannedError(
            "overloaded",
            f"in-flight budget exhausted (cap {self.max_inflight}); "
            "request not applied - retry after the hint",
            retry_after_ms=self.shed_retry_after_ms)
        self._slow_aborts = self.metrics.counter(
            "tc_server_slow_client_aborts_total",
            help="connections aborted because their send buffer would "
                 "not drain within the write grace period")
        self._requests = {}
        self._errors = {}
        self._latency = {}
        self._started_at = time.time()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> None:
        if self._shutdown is None:
            self._shutdown = asyncio.Event()
        if not self._servers:
            self.state.start()

    async def start(self, host: str = "127.0.0.1", port: int = 0, *,
                    sock=None) -> Tuple[str, int]:
        """Bind (or adopt ``sock``), serve, return ``(host, port)``.

        ``sock=`` takes a pre-bound, listening socket — the cluster's
        reuseport shards and the inherited-fd fallback both enter here.
        May be called more than once; every listener serves the same
        state.
        """
        self._ensure_started()
        if sock is not None:
            server = await asyncio.start_server(
                self._handle_connection, sock=sock)
        else:
            server = await asyncio.start_server(
                self._handle_connection, host, port)
        self._servers.append(server)
        sockname = server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def start_unix(self, path: str) -> str:
        """Serve the same state on a unix domain socket as well."""
        self._ensure_started()
        server = await asyncio.start_unix_server(
            self._handle_connection, path)
        self._servers.append(server)
        return path

    def install_signal_handlers(self, loop=None) -> bool:
        """SIGTERM/SIGINT -> graceful shutdown.  True when installed.

        Fails soft (returns False) off the main thread or on loops
        without signal support — in-process test harnesses run servers
        on daemon threads where signal handlers are impossible.
        """
        import signal as _signal
        loop = loop if loop is not None else asyncio.get_running_loop()
        try:
            for signum in (_signal.SIGTERM, _signal.SIGINT):
                loop.add_signal_handler(signum, self.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError, OSError):
            return False
        return True

    async def serve_until_shutdown(self) -> None:
        """Block until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        if self._shutdown is not None:
            self._shutdown.set()

    @staticmethod
    def _conn_idle(entry) -> bool:
        if entry == "idle":
            return True
        if isinstance(entry, _OrderedWriter):
            return entry.emit_seq == entry.next_seq
        return False  # "busy": an HTTP exchange mid-flight

    async def stop(self) -> None:
        """Stop accepting, drain in-flight requests, then the writer.

        Idle connections are closed immediately; connections with
        responses still owed get up to ``drain_grace`` seconds to go
        idle before being force-closed.  Only after every connection is
        gone does the write queue drain and the state shut down.
        """
        servers, self._servers = self._servers, []
        for server in servers:
            server.close()
        for server in servers:
            await server.wait_closed()
        if self._conns:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.drain_grace
            while self._conns:
                for writer, entry in list(self._conns.items()):
                    if self._conn_idle(entry) and not writer.is_closing():
                        writer.close()
                if loop.time() >= deadline:
                    for writer in list(self._conns):
                        if not writer.is_closing():
                            writer.close()
                    break
                await asyncio.sleep(0.005)
        await self.state.stop()

    async def run(self, host: str = "127.0.0.1", port: int = 0,
                  ready=None, *, install_signals: bool = False
                  ) -> Tuple[str, int]:
        """start + serve_until_shutdown, reporting the bound address."""
        bound = await self.start(host, port)
        if install_signals:
            self.install_signal_handlers()
        if ready is not None:
            ready(bound)
        await self.serve_until_shutdown()
        return bound

    # ------------------------------------------------------------------
    # per-op metrics
    # ------------------------------------------------------------------
    def _observe(self, op: str, started_ns: int) -> None:
        self._observe_ns(op, time.perf_counter_ns() - started_ns)

    def _observe_ns(self, op: str, elapsed_ns: int) -> None:
        pair = self._requests.get(op)
        if pair is None:
            labels = {"op": op}
            pair = (
                self.metrics.counter("tc_server_requests_total",
                                     help="requests served", labels=labels),
                self.metrics.histogram(
                    "tc_server_request_seconds",
                    help="request wall time, decode to encode",
                    labels=labels),
            )
            self._requests[op] = pair
        counter, histogram = pair
        counter.inc()
        histogram.observe_ns(elapsed_ns)

    def _count_error(self, code: str) -> None:
        counter = self._errors.get(code)
        if counter is None:
            counter = self.metrics.counter(
                "tc_server_errors_total", help="error responses",
                labels={"code": code})
            self._errors[code] = counter
        counter.inc()

    def _respond_error(self, request_id: Any, error: Exception) -> dict:
        code = _error_code(error)
        self._count_error(code)
        retry_after = getattr(error, "retry_after_ms", None)
        return error_response(request_id, code, str(error),
                              retry_after_ms=retry_after)

    # ------------------------------------------------------------------
    # deadlines and admission
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_deadline(request: dict) -> Optional[float]:
        """``deadline_ms`` (a relative budget from server receipt) to an
        absolute ``time.monotonic()`` instant, or ``None`` when absent.

        Relative on the wire so no client/server clock agreement is
        needed; the budget starts counting when the server parses the
        request, which is the earliest instant it could act on it.
        """
        raw = request.get("deadline_ms")
        if raw is None:
            return None
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) \
                or raw <= 0:
            raise ProtocolError(
                "bad-request",
                "'deadline_ms' must be a positive number of milliseconds")
        return time.monotonic() + raw / 1000.0

    def _admit(self) -> None:
        """Take one slot of the in-flight budget or shed the request."""
        if 0 < self.max_inflight <= self._inflight:
            self._shed.inc()
            raise OverloadedError(
                f"in-flight budget exhausted ({self._inflight} admitted, "
                f"cap {self.max_inflight}); retry after the hint",
                retry_after_ms=self.shed_retry_after_ms)
        self._inflight += 1
        self._inflight_gauge.set(self._inflight)

    def _release(self, count: int = 1) -> None:
        self._inflight -= count
        self._inflight_gauge.set(self._inflight)

    async def _guarded_drain(self, writer: asyncio.StreamWriter) -> bool:
        """Drain ``writer``; abort connections that will not.

        Returns False when the connection was aborted.  Only engages a
        timeout when a high-water mark is configured — otherwise this is
        the plain backpressure drain."""
        if self.write_high_water <= 0:
            await writer.drain()
            return True
        try:
            await asyncio.wait_for(writer.drain(), self.write_grace)
        except asyncio.TimeoutError:
            self._slow_aborts.inc()
            transport = writer.transport
            if transport is not None:
                transport.abort()
            return False
        return True

    # ------------------------------------------------------------------
    # framed connections
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._connections_total.inc()
        self._connections_open.inc()
        self._conns[writer] = "idle"
        try:
            first = await reader.read(_READ_CHUNK)
            if not first:
                return
            if looks_like_http(first[:4]):
                self._conns[writer] = "busy"
                await self._handle_http(first, reader, writer)
                return
            await self._framed_loop(first, reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.pop(writer, None)
            self._connections_open.inc(-1)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _framed_loop(self, first: bytes, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        parser = FrameParser(self.max_frame)
        ordered = _OrderedWriter(writer)
        # Drain bookkeeping: idle means every allocated response has
        # been emitted, so shutdown may close this connection at once.
        self._conns[writer] = ordered
        if self.write_high_water > 0 and writer.transport is not None:
            # Lower the transport's pause threshold so a reader that
            # stops consuming trips ``drain()`` (and the grace timer)
            # after kilobytes, not the default 64 KiB per direction.
            writer.transport.set_write_buffer_limits(
                high=self.write_high_water)
        chunk = first
        while chunk:
            try:
                bodies = parser.feed(chunk)
            except ProtocolError as error:
                # The stream cannot be re-framed: answer, then close.
                self._count_error(error.code)
                ordered.complete(ordered.allocate(), encode_response(
                    error_response(None, error.code, str(error))))
                await ordered.wait_flushed()
                await self._guarded_drain(writer)
                return
            if bodies:
                await self._serve_bodies(bodies, ordered)
                # Backpressure only: check responses are written by the
                # coalescer drain, possibly after this point.
                if not await self._guarded_drain(writer):
                    return
            if self._shutdown.is_set():
                await ordered.wait_flushed()
                return
            chunk = await reader.read(_READ_CHUNK)
        # EOF: a partial frame left behind is a truncation — nothing to
        # answer (the peer is gone), but the serving loop survives.
        await ordered.wait_flushed()

    async def _serve_bodies(self, bodies: List[bytes],
                            ordered: _OrderedWriter) -> None:
        """Answer every frame of one chunk, preserving request order.

        Consecutive ``check`` frames become a single coalescer group
        whose responses the drain writes through ``ordered``; other ops
        are dispatched inline and sequenced the same way.
        """
        checks: List[Tuple[Any, Tuple[Any, Any], int,
                           Optional[float]]] = []
        shed: List[bytes] = []
        coalescer = self.coalescer

        def flush_sheds() -> None:
            # Consecutive shed responses share one sequence slot and one
            # write: under sustained overload most of a chunk is shed,
            # and per-response writes would make refusing the work as
            # expensive as doing it.
            if shed:
                ordered.complete(ordered.allocate(), b"".join(shed))
                shed.clear()

        def flush_checks() -> None:
            if not checks:
                return
            run = checks[:]
            checks.clear()
            seq = ordered.allocate()
            pairs = [pair for _, pair, _, _ in run]
            # A group may only be skipped wholesale when *every* check
            # in it is expired, so its drop-dead instant is the latest
            # member deadline — and no skip at all if any member has no
            # deadline.  Per-request expiry is re-checked at encode.
            deadlines = [item[3] for item in run]
            group_deadline = (max(deadlines)
                              if all(d is not None for d in deadlines)
                              else None)
            if not coalescer.enabled:
                answers, snapshot = coalescer.answer_now(pairs)
                self._complete_check_run(ordered, seq, run, answers,
                                         snapshot)
                return

            def deliver(answers, snapshot, run=run, seq=seq):
                self._complete_check_run(ordered, seq, run, answers,
                                         snapshot)

            coalescer.submit_group(pairs, deliver,
                                   deadline=group_deadline)

        for body in bodies:
            request_id = None
            admitted = False
            try:
                request = decode_payload(body)
                request_id = request.get("id")
                op = request.get("op")
                if 0 < self.max_inflight <= self._inflight:
                    # Over budget: refuse before validating anything
                    # further.  No exception, no per-request dict or
                    # ``json.dumps`` — the canned frame keeps the shed
                    # path far cheaper than the serve path, which is
                    # what makes shedding protective rather than just
                    # a slower way to answer.
                    self._shed.inc()
                    self._count_error("overloaded")
                    flush_checks()
                    shed.append(self._shed_canned.frame(request_id))
                    continue
                deadline = self._parse_deadline(request)
                self._admit()
                admitted = True
                if op == "check":
                    pair = (_node_field(request, "u"),
                            _node_field(request, "v"))
                    flush_sheds()
                    checks.append((request_id, pair,
                                   time.perf_counter_ns(), deadline))
                    continue
            except Exception as error:  # noqa: BLE001 - structured reply
                if admitted:
                    self._release()
                flush_checks()
                flush_sheds()
                ordered.complete(ordered.allocate(), encode_response(
                    self._respond_error(request_id, error)))
                continue
            flush_checks()
            flush_sheds()
            seq = ordered.allocate()
            try:
                response = await self._dispatch(op, request, request_id,
                                                deadline=deadline)
            except Exception as error:  # noqa: BLE001 - structured reply
                response = self._respond_error(request_id, error)
            finally:
                self._release()
            ordered.complete(seq, encode_response(response))
        flush_checks()
        flush_sheds()

    def _complete_check_run(
            self, ordered: _OrderedWriter, seq: int,
            run: List[Tuple[Any, Tuple[Any, Any], int, Optional[float]]],
            answers: List[Optional[bool]],
            snapshot) -> None:
        """Encode one check run and complete its sequence slot.

        The sequence slot MUST complete no matter what: an incomplete
        slot stalls :class:`_OrderedWriter` forever, hanging every later
        response on the connection (and ``wait_flushed`` at EOF).  So an
        encoding failure degrades to per-request ``server-error``
        responses instead of propagating — into the coalescer drain,
        where it would also poison other connections' groups.
        """
        try:
            data = self._encode_check_run(run, answers, snapshot)
        except Exception:  # noqa: BLE001 - the slot must complete
            self._count_error("server-error")
            out = []
            for request_id, _pair, _started, _deadline in run:
                try:
                    out.append(encode_response(error_response(
                        request_id, "server-error",
                        "failed to encode check response")))
                except Exception:  # noqa: BLE001 - unserialisable id
                    out.append(encode_response(error_response(
                        None, "server-error",
                        "failed to encode check response")))
            data = b"".join(out)
        finally:
            self._release(len(run))
        ordered.complete(seq, data)

    def _encode_check_run(
            self, run: List[Tuple[Any, Tuple[Any, Any], int,
                                  Optional[float]]],
            answers: List[Optional[bool]],
            snapshot) -> bytes:
        """Encode one check run's responses; runs inside the drain.

        ``snapshot`` is the snapshot the answers were computed from, so
        a ``None`` answer's missing node is attributed against the same
        epoch that judged it missing — membership against the *current*
        snapshot could disagree when a racing write lands in between.
        Each request's deadline is re-checked here — after the drain —
        so an answer the drain computed but could not deliver in budget
        still reports ``deadline-exceeded`` rather than arriving late
        disguised as fresh.
        """
        out = []
        engine = snapshot.engine
        epoch = snapshot.epoch
        now = time.perf_counter_ns()
        mono = time.monotonic()
        for (request_id, pair, started, deadline), answer \
                in zip(run, answers):
            if answer is EXPIRED or (deadline is not None
                                     and mono >= deadline):
                out.append(encode_response(self._respond_error(
                    request_id, ProtocolError(
                        "deadline-exceeded",
                        "deadline_ms budget expired before the check "
                        "was answered"))))
            elif answer is None:
                missing = pair[0] if pair[0] not in engine else pair[1]
                out.append(encode_response(self._respond_error(
                    request_id, NodeNotFoundError(missing))))
            else:
                out.append(encode_response(ok_response(
                    request_id, answer, epoch=epoch)))
            self._observe_ns("check", now - started)
        return b"".join(out)

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, op: Any, request: dict,
                        request_id: Any, *,
                        deadline: Optional[float] = None) -> dict:
        started = time.perf_counter_ns()
        tracer = self.tracer
        if tracer is not None:
            with tracer.span(f"server.{op}", epoch=self.state.epoch):
                response = await self._dispatch_inner(
                    op, request, request_id, deadline)
        else:
            response = await self._dispatch_inner(op, request, request_id,
                                                  deadline)
        self._observe(str(op), started)
        return response

    async def _dispatch_inner(self, op: Any, request: dict,
                              request_id: Any,
                              deadline: Optional[float] = None) -> dict:
        if deadline is not None and time.monotonic() >= deadline:
            # Expired before any work: drop here rather than burn engine
            # time on an answer the client has already given up on.
            raise ProtocolError(
                "deadline-exceeded",
                "deadline_ms budget expired before the request was "
                "served")
        snapshot = self.state.snapshot
        engine = snapshot.engine
        epoch = snapshot.epoch

        if op == "ping":
            return ok_response(request_id, "pong", epoch=epoch)
        if op == "epoch":
            return ok_response(request_id, epoch, epoch=epoch)

        if op == "check-many":
            pairs = _pair_list(request)
            answers, batch_snapshot = await self.coalescer.check_group(
                pairs, deadline=deadline)
            if answers and answers[0] is EXPIRED:
                raise ProtocolError(
                    "deadline-exceeded",
                    "deadline_ms budget expired before the batch was "
                    "answered")
            if any(answer is None for answer in answers):
                # Attribute against the snapshot the batch was answered
                # from: the current snapshot may already contain a node
                # a racing write added after the drain.
                batch_engine = batch_snapshot.engine
                missing = next(
                    (node for pair, answer in zip(pairs, answers)
                     if answer is None for node in pair
                     if node not in batch_engine),
                    None)
                if missing is None:  # unreachable: same snapshot judged it
                    missing = next(pair for pair, answer
                                   in zip(pairs, answers)
                                   if answer is None)[0]
                raise NodeNotFoundError(missing)
            return ok_response(request_id, answers,
                               epoch=batch_snapshot.epoch)

        if op == "expand":
            node = _node_field(request, "u")
            reflexive = bool(request.get("reflexive", True))
            if node not in engine:
                raise NodeNotFoundError(node)
            return ok_response(
                request_id,
                sorted(engine.successors(node, reflexive=reflexive),
                       key=repr),
                epoch=epoch)
        if op == "list-reaching":
            node = _node_field(request, "v")
            reflexive = bool(request.get("reflexive", True))
            if node not in engine:
                raise NodeNotFoundError(node)
            return ok_response(
                request_id,
                sorted(engine.predecessors(node, reflexive=reflexive),
                       key=repr),
                epoch=epoch)

        if op == "semijoin":
            mode = request.get("mode", "any")
            if mode == "any":
                sources = _node_list(request, "sources")
                destinations = _node_list(request, "destinations")
                for node in sources + destinations:
                    if node not in engine:
                        raise NodeNotFoundError(node)
                return ok_response(
                    request_id,
                    bool(engine.any_reachable(sources, destinations)),
                    epoch=epoch)
            if mode == "forward":
                sources = _node_list(request, "sources")
                for node in sources:
                    if node not in engine:
                        raise NodeNotFoundError(node)
                return ok_response(
                    request_id,
                    sorted(engine.reachable_from_set(sources), key=repr),
                    epoch=epoch)
            if mode == "backward":
                destinations = _node_list(request, "destinations")
                for node in destinations:
                    if node not in engine:
                        raise NodeNotFoundError(node)
                return ok_response(
                    request_id,
                    sorted(engine.reaching_set(destinations), key=repr),
                    epoch=epoch)
            raise ProtocolError(
                "bad-request",
                f"unknown semijoin mode {mode!r}; choose any, forward, "
                f"or backward")

        if op in ("add-arc", "remove-arc"):
            args = (_node_field(request, "u"), _node_field(request, "v"))
            visible = await self.state.submit(op, args, deadline=deadline)
            return ok_response(request_id, True, epoch=visible)
        if op == "add-node":
            node = _node_field(request, "node")
            parents = request.get("parents", [])
            if not isinstance(parents, list):
                raise ProtocolError("bad-request", "'parents' must be a list")
            for parent in parents:
                _check_node(parent, "parents")
            visible = await self.state.submit(op, (node, parents),
                                              deadline=deadline)
            return ok_response(request_id, True, epoch=visible)
        if op == "remove-node":
            visible = await self.state.submit(
                op, (_node_field(request, "node"),), deadline=deadline)
            return ok_response(request_id, True, epoch=visible)

        if op == "stats":
            payload = self.state.stats()
            payload["coalescer"] = self.coalescer.stats()
            payload["uptime_seconds"] = round(
                time.time() - self._started_at, 3)
            return ok_response(request_id, payload, epoch=epoch)
        if op == "metrics":
            import json as _json
            return ok_response(request_id,
                               _json.loads(render_json(self.metrics)),
                               epoch=epoch)
        if op == "shutdown":
            if not self.allow_shutdown:
                raise ProtocolError("bad-request",
                                    "shutdown is disabled on this server")
            self.request_shutdown()
            return ok_response(request_id, "bye", epoch=epoch)

        raise ProtocolError("unknown-op", f"unknown op {op!r}")

    # ------------------------------------------------------------------
    # HTTP mode
    # ------------------------------------------------------------------
    async def _handle_http(self, first: bytes, reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
        raw = bytearray(first)
        while b"\r\n\r\n" not in raw:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                return
            raw.extend(chunk)
            if len(raw) > self.max_frame:
                writer.write(_http_response(431, "text/plain",
                                            b"headers too large\n"))
                await writer.drain()
                return
        head, _, rest = bytes(raw).partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, target, _version = lines[0].split(" ", 2)
        except ValueError:
            writer.write(_http_response(400, "text/plain",
                                        b"malformed request line\n"))
            await writer.drain()
            return
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            writer.write(_http_response(400, "text/plain",
                                        b"bad Content-Length\n"))
            await writer.drain()
            return
        if length < 0:
            writer.write(_http_response(400, "text/plain",
                                        b"bad Content-Length\n"))
            await writer.drain()
            return
        if length > self.max_frame:
            # Refuse before buffering: a multi-gigabyte declared body
            # must cost us the header bytes already read, not RAM.
            writer.write(_http_response(413, "text/plain",
                                        b"request body too large\n"))
            await writer.drain()
            return
        body = bytearray(rest)
        while len(body) < length:
            chunk = await reader.read(_READ_CHUNK)
            if not chunk:
                break
            body.extend(chunk)

        status, content_type, payload = await self._http_route(
            method, target, bytes(body[:length]))
        writer.write(_http_response(status, content_type, payload))
        await writer.drain()

    async def _http_route(self, method: str, target: str,
                          body: bytes) -> Tuple[int, str, bytes]:
        import json as _json
        started = time.perf_counter_ns()
        parts = urlsplit(target)
        path = parts.path
        query = {name: values[-1]
                 for name, values in parse_qs(parts.query).items()}

        def as_json(obj, status: int = 200) -> Tuple[int, str, bytes]:
            return status, "application/json", (
                _json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")

        if path == "/metrics" and method in ("GET", "HEAD"):
            self._observe("http.metrics", started)
            return 200, "text/plain; version=0.0.4", \
                render_prometheus(self.metrics).encode("utf-8")
        if path == "/healthz":
            self._observe("http.healthz", started)
            health = {"ok": True, "epoch": self.state.epoch,
                      "nodes": len(self.state.snapshot.engine),
                      "read_only": self.state.read_only,
                      "overload": {
                          "inflight": self._inflight,
                          "max_inflight": self.max_inflight,
                          "shed_total": self._shed.value,
                          "slow_client_aborts_total":
                              self._slow_aborts.value,
                      }}
            generation = getattr(self.state, "generation", None)
            if generation is not None:
                health["generation"] = generation
            worker_id = getattr(self.state, "worker_id", None)
            if worker_id is not None:
                health["worker_id"] = worker_id
            return as_json(health)
        if path == "/query" and method == "POST":
            try:
                request = decode_payload(body)
                response = await self._dispatch(
                    request.get("op"), request, request.get("id"),
                    deadline=self._parse_deadline(request))
            except Exception as error:  # noqa: BLE001 - structured reply
                response = self._respond_error(None, error)
            return as_json(response,
                           200 if response.get("ok") else 400)
        if path in ("/check", "/expand", "/reaching") and method == "GET":
            op = {"/check": "check-many", "/expand": "expand",
                  "/reaching": "list-reaching"}[path]
            request: dict = {"op": op}
            try:
                if path == "/check":
                    request["pairs"] = [[query["u"], query["v"]]]
                elif path == "/expand":
                    request["u"] = query["u"]
                else:
                    request["v"] = query["v"]
            except KeyError as missing:
                return as_json({"ok": False, "error": {
                    "code": "bad-request",
                    "message": f"missing query parameter {missing}"}}, 400)
            try:
                response = await self._dispatch(op, request, None)
            except Exception as error:  # noqa: BLE001 - structured reply
                response = self._respond_error(None, error)
            if path == "/check" and response.get("ok"):
                response["result"] = response["result"][0]
            return as_json(response, 200 if response.get("ok") else 400)
        self._count_error("unknown-op")
        return as_json({"ok": False, "error": {
            "code": "unknown-op", "message": f"no route {method} {path}"}},
            404)


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                413: "Payload Too Large",
                431: "Request Header Fields Too Large"}


def _http_response(status: int, content_type: str, payload: bytes) -> bytes:
    reason = _STATUS_TEXT.get(status, "Error")
    head = (f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n")
    return head.encode("latin-1") + payload
