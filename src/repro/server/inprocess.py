"""Run a server in a background thread; query it synchronously.

This is the bridge that lets *synchronous* harnesses — the differential
fuzzer, pytest helpers, the oracle comparison — treat a live server as
just another engine.  :class:`ServerThread` owns a private event loop in
a daemon thread running a :class:`~repro.server.app.ReachabilityServer`
plus one pipelined client; :class:`ServerBackedEngine` adapts its
``call`` into the engine query surface
(:func:`~repro.testing.oracle.compare_engine` only needs
``successors``/``predecessors``/``reachable``), so every answer the
comparison sees made a real round trip through framing, dispatch, and
the coalescer.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.server.app import ReachabilityServer
from repro.server.client import ReachabilityClient

__all__ = ["ClusterThread", "ServerBackedEngine", "ServerThread"]

#: Default bound on any cross-thread call into the server loop;
#: override per instance with ``call_timeout=``.
DEFAULT_CALL_TIMEOUT = 30.0


class ServerThread:
    """A live server plus one client, owned by a private loop thread.

    ``engine_factory`` is called *inside* the loop thread (asyncio
    primitives bind to the running loop on older Pythons) and must
    return the engine to serve.  Use as a context manager, or call
    :meth:`close` explicitly.
    """

    def __init__(self, engine_factory, *, coalesce: bool = True,
                 window: Optional[float] = None,
                 call_timeout: float = DEFAULT_CALL_TIMEOUT,
                 server_kwargs: Optional[dict] = None,
                 client_kwargs: Optional[dict] = None,
                 proxy_factory=None) -> None:
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._server: Optional[ReachabilityServer] = None
        self._client: Optional[ReachabilityClient] = None
        self._engine_factory = engine_factory
        self._coalesce = coalesce
        self._window = window
        self.call_timeout = float(call_timeout)
        self._server_kwargs = dict(server_kwargs or {})
        self._client_kwargs = dict(client_kwargs or {})
        #: Called inside the loop thread with the server's (host, port);
        #: must return an object exposing ``host``/``port`` to dial
        #: instead and an async ``close()`` — the chaos proxy plugs in
        #: here, so every client byte crosses it.
        self._proxy_factory = proxy_factory
        self.proxy = None
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="reachability-server")
        self._thread.start()
        self._ready.wait(self.call_timeout)
        if self._startup_error is not None:
            raise self._startup_error
        if self._server is None:
            raise ReproError("server thread failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._startup())
        except BaseException as error:  # surface to the constructor
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    async def _startup(self) -> None:
        kwargs = {"coalesce": self._coalesce}
        if self._window is not None:
            kwargs["window"] = self._window
        kwargs.update(self._server_kwargs)
        server = ReachabilityServer(self._engine_factory(), **kwargs)
        host, port = await server.start("127.0.0.1", 0)
        if self._proxy_factory is not None:
            self.proxy = await self._proxy_factory(host, port)
            host, port = self.proxy.host, self.proxy.port
        self._client = await ReachabilityClient.connect(
            host, port, **self._client_kwargs)
        self._server = server
        self.host, self.port = host, port

    # ------------------------------------------------------------------
    # sync bridge
    # ------------------------------------------------------------------
    def call(self, op: str, **fields: Any) -> Any:
        """One request through the shared client, from any thread."""
        client = self._client
        if client is None:
            raise ReproError("server thread is closed")
        future = asyncio.run_coroutine_threadsafe(
            client.call(op, **fields), self._loop)
        return future.result(self.call_timeout)

    def connect(self, **kwargs: Any) -> ReachabilityClient:
        """A fresh client on the server's loop (for multi-conn tests).

        Dials through the proxy when one is installed; ``kwargs``
        override the thread's default client settings."""
        merged = dict(self._client_kwargs)
        merged.update(kwargs)
        return asyncio.run_coroutine_threadsafe(
            ReachabilityClient.connect(self.host, self.port, **merged),
            self._loop).result(self.call_timeout)

    def run_coro(self, coro) -> Any:
        """Run an arbitrary coroutine on the server's loop."""
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(self.call_timeout)

    def close(self) -> None:
        if self._client is None and self._server is None:
            return
        client, self._client = self._client, None
        server, self._server = self._server, None

        proxy, self.proxy = self.proxy, None

        async def teardown() -> None:
            if client is not None:
                await client.close()
            if proxy is not None:
                await proxy.close()
            if server is not None:
                await server.stop()

        try:
            asyncio.run_coroutine_threadsafe(
                teardown(), self._loop).result(self.call_timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(self.call_timeout)

    def __enter__(self) -> "ServerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ClusterThread:
    """A live preforked cluster plus one client, for synchronous code.

    Same ``call``/``connect``/``run_coro``/``close`` surface as
    :class:`ServerThread`, so :class:`ServerBackedEngine` adapts a whole
    multi-process cluster into the engine interface — every comparison
    answer round-trips through a real socket into a forked worker
    reading an mmap'd generation file.

    The fork happens *in the constructor's thread* (before the private
    loop thread starts), because forking a process with a live event
    loop duplicates the loop's internals into the child.
    """

    def __init__(self, engine_factory, *, workers: int = 2,
                 coalesce: bool = True, window: Optional[float] = None,
                 poll_interval: float = 0.01,
                 call_timeout: float = DEFAULT_CALL_TIMEOUT,
                 **cluster_kwargs: Any) -> None:
        from repro.server.cluster import ClusterServer
        kwargs = {"workers": workers, "coalesce": coalesce,
                  "poll_interval": poll_interval}
        if window is not None:
            kwargs["window"] = window
        kwargs.update(cluster_kwargs)
        self.call_timeout = float(call_timeout)
        self._cluster = ClusterServer(engine_factory(), port=0, **kwargs)
        self.host, self.port = self._cluster.start()
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._client: Optional[ReachabilityClient] = None
        self._closed = False
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="reachability-cluster")
        self._thread.start()
        self._ready.wait(self.call_timeout)
        if self._startup_error is not None:
            self.close()
            raise self._startup_error

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self._startup())
        except BaseException as error:  # surface to the constructor
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self._loop.shutdown_asyncgens())
            self._loop.close()

    async def _startup(self) -> None:
        await self._cluster.start_parent()
        self._client = await ReachabilityClient.connect(self.host,
                                                        self.port)

    # -- sync bridge (same surface as ServerThread) --------------------
    def call(self, op: str, **fields: Any) -> Any:
        client = self._client
        if client is None:
            raise ReproError("cluster thread is closed")
        future = asyncio.run_coroutine_threadsafe(
            client.call(op, **fields), self._loop)
        return future.result(self.call_timeout)

    def connect(self) -> ReachabilityClient:
        """A fresh data-plane client (lands on a kernel-chosen worker)."""
        return asyncio.run_coroutine_threadsafe(
            ReachabilityClient.connect(self.host, self.port),
            self._loop).result(self.call_timeout)

    def connect_worker(self, worker_id: int) -> ReachabilityClient:
        """A client pinned to one specific worker's admin socket."""
        return asyncio.run_coroutine_threadsafe(
            ReachabilityClient.connect_unix(
                self._cluster.worker_admin_path(worker_id)),
            self._loop).result(self.call_timeout)

    def run_coro(self, coro) -> Any:
        return asyncio.run_coroutine_threadsafe(
            coro, self._loop).result(self.call_timeout)

    @property
    def cluster(self):
        return self._cluster

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        client, self._client = self._client, None

        async def teardown() -> None:
            if client is not None:
                await client.close()
            await self._cluster.stop_parent()

        try:
            if self._thread.is_alive():
                asyncio.run_coroutine_threadsafe(
                    teardown(), self._loop).result(self.call_timeout)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(self.call_timeout)

    def __enter__(self) -> "ClusterThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ServerBackedEngine:
    """The engine query surface, answered by a live server.

    Every method is one (or more) real protocol round trips.  Holds its
    :class:`ServerThread` alive; ``close`` tears the server down.
    """

    def __init__(self, thread: ServerThread) -> None:
        self._thread = thread

    # -- queries -------------------------------------------------------
    def reachable(self, source: Any, destination: Any) -> bool:
        return self._thread.call("check", u=source, v=destination)

    def reachable_many(
            self, pairs: Sequence[Tuple[Any, Any]]) -> List[bool]:
        pairs = list(pairs)
        if not pairs:
            return []
        return self._thread.call(
            "check-many", pairs=[[u, v] for u, v in pairs])

    def successors(self, source: Any, *, reflexive: bool = True):
        return set(self._thread.call("expand", u=source,
                                     reflexive=reflexive))

    def predecessors(self, destination: Any, *, reflexive: bool = True):
        return set(self._thread.call("list-reaching", v=destination,
                                     reflexive=reflexive))

    def any_reachable(self, sources: Iterable[Any],
                      destinations: Iterable[Any]) -> bool:
        return self._thread.call("semijoin", mode="any",
                                 sources=list(sources),
                                 destinations=list(destinations))

    def reachable_from_set(self, sources: Iterable[Any]):
        return set(self._thread.call("semijoin", mode="forward",
                                     sources=list(sources)))

    def reaching_set(self, destinations: Iterable[Any]):
        return set(self._thread.call("semijoin", mode="backward",
                                     destinations=list(destinations)))

    def capabilities(self) -> "EngineCapabilities":
        from repro.core.engine import EngineCapabilities
        return EngineCapabilities(
            kind="server", supports_updates=True, supports_batch=True,
            is_frozen_snapshot=False, durable=False)

    def stats(self) -> dict:
        return self._thread.call("stats")

    def node_count(self) -> int:
        """The served node count.  There is deliberately no ``nodes()``:
        the protocol has no node-listing op, and returning the ``stats``
        count from a method whose name promises a list is a trap."""
        return int(self._thread.call("stats")["nodes"])

    def __contains__(self, node: Any) -> bool:
        # Membership via a reflexive self-check: present nodes always
        # reach themselves; absent ones draw not-found.
        try:
            return bool(self._thread.call("check", u=node, v=node))
        except ReproError:
            return False

    def __len__(self) -> int:
        return int(self._thread.call("stats")["nodes"])

    def close(self) -> None:
        self._thread.close()
