"""Client helper for the framed protocol.

:class:`ReachabilityClient` holds one connection, pipelines requests,
and correlates responses by ``id`` with a background reader task — so
many coroutines can share a client, and pipelined calls overlap on the
wire (which is what lets the server coalesce them).

Resilience is opt-in and layered:

* ``call_timeout`` bounds every round trip (:class:`CallTimeoutError`);
  ``connect_timeout`` bounds dials.
* ``retry=RetryPolicy(...)`` adds exponential backoff with jitter.
  **Reads retry freely** — they are idempotent.  **Writes retry only
  when provably not applied**: a structured refusal whose code is in
  :data:`~repro.server.protocol.NOT_APPLIED_CODES` (``overloaded``,
  ``deadline-exceeded``, ``shutting-down``, ``read-only``) or a failure
  *before* the request hit the wire.  A write that was sent and then
  lost its connection (or timed out) is **ambiguous** — the server may
  have applied it — and surfaces :class:`AmbiguousWriteError` instead
  of silently double-applying.
* ``reconnect=True`` (default, effective when the client was built via
  :meth:`connect`/:meth:`connect_unix`) re-dials a dead connection on
  the next attempt.  An explicit :meth:`close` is final: no reconnect.
* ``overloaded`` responses carry the server's ``retry_after_ms`` hint;
  the backoff honours it as a floor so shed clients do not stampede.

Usage::

    async with await ReachabilityClient.connect(
            host, port, call_timeout=1.0,
            retry=RetryPolicy(attempts=4)) as client:
        assert await client.check("a", "d")
        answers = await client.check_many([("a", "d"), ("b", "c")])
"""

from __future__ import annotations

import asyncio
import itertools
import random
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CycleError, NodeNotFoundError, ReproError
from repro.server.protocol import (DEFAULT_MAX_FRAME, NOT_APPLIED_CODES,
                                   ProtocolError, encode_frame, read_frame)

__all__ = ["AmbiguousWriteError", "CallTimeoutError", "ReachabilityClient",
           "RetryPolicy", "ServerError"]

#: Ops that mutate the graph — the ones whose retries must be classified.
_WRITE_OPS = frozenset({"add-node", "add-arc", "remove-arc", "remove-node"})
#: Ops never retried regardless of policy.
_NO_RETRY_OPS = frozenset({"shutdown"})

#: Exception types that mean "the network (or a timeout) ate it", as
#: opposed to a structural misuse of the client.
_TRANSIENT_ERRORS = (OSError, asyncio.TimeoutError, ProtocolError)


class ServerError(ReproError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str, *,
                 retry_after_ms: Optional[int] = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.server_message = message
        #: Backoff hint from an ``overloaded`` response, else ``None``.
        self.retry_after_ms = retry_after_ms


class CallTimeoutError(ReproError):
    """A round trip exceeded its per-call timeout.

    For reads this is retryable; for writes the request may have been
    applied after the timer fired, so the retry layer treats it as
    ambiguous."""

    def __init__(self, op: str, timeout: float) -> None:
        super().__init__(
            f"no response to {op!r} within {timeout:.3f}s")
        self.op = op
        self.timeout = timeout


class AmbiguousWriteError(ReproError):
    """A write was sent but its fate is unknown.

    The connection failed (or the call timed out) after the request hit
    the wire and before a response arrived: the server may or may not
    have applied the mutation.  Blindly retrying could double-apply, so
    the client refuses to — reconcile first (re-read the state, or use
    an idempotent mutation) and retry deliberately."""

    def __init__(self, op: str, cause: Exception) -> None:
        super().__init__(
            f"write {op!r} outcome unknown "
            f"({type(cause).__name__}: {cause}); the server may have "
            f"applied it — reconcile before retrying")
        self.op = op
        self.cause = cause


class RetryPolicy:
    """Exponential backoff with jitter, deterministic under a seeded RNG.

    ``attempts`` is the total number of tries (1 = no retries).  The
    delay before retry *k* (0-based) is ``base * multiplier**k`` capped
    at ``max_delay``, then jittered down into
    ``[(1 - jitter) * d, d]`` — the spread de-synchronises a thundering
    herd while a seeded ``rng`` keeps tests exact."""

    __slots__ = ("attempts", "base_delay", "max_delay", "multiplier",
                 "jitter", "_rng")

    def __init__(self, attempts: int = 3, *, base_delay: float = 0.05,
                 max_delay: float = 2.0, multiplier: float = 2.0,
                 jitter: float = 0.5,
                 rng: Optional[random.Random] = None) -> None:
        if attempts < 1:
            raise ReproError(f"attempts must be >= 1, got {attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ReproError(f"jitter must be in [0, 1], got {jitter}")
        self.attempts = attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self._rng = rng if rng is not None else random.Random()

    def delay(self, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (0-based)."""
        raw = min(self.max_delay,
                  self.base_delay * self.multiplier ** attempt)
        if self.jitter <= 0.0:
            return raw
        return raw * (1.0 - self.jitter * self._rng.random())


#: Error codes re-raised as their local exception type, so code written
#: against an in-process engine ports to the client unchanged.
_CODE_EXCEPTIONS = {
    "not-found": lambda msg: NodeNotFoundError(_node_from(msg)),
    "cycle": lambda msg: CycleError(msg),
}


def _node_from(message: str) -> str:
    # "node 'x' is not in the graph" -> best-effort extraction; the
    # exact node value survives only for string nodes, which is all the
    # wire protocol can carry anyway.
    if "'" in message:
        return message.split("'")[1]
    return message


class ReachabilityClient:
    """One pipelined connection to a :class:`ReachabilityServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 max_frame: int = DEFAULT_MAX_FRAME,
                 call_timeout: Optional[float] = None,
                 connect_timeout: float = 5.0,
                 close_timeout: float = 5.0,
                 retry: Optional[RetryPolicy] = None,
                 reconnect: bool = True,
                 connect_factory=None) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self.call_timeout = call_timeout
        self.connect_timeout = connect_timeout
        self.close_timeout = close_timeout
        self.retry = retry
        self.reconnect = reconnect
        #: Zero-arg coroutine function dialling a fresh (reader, writer);
        #: installed by :meth:`connect`/:meth:`connect_unix` so the
        #: client knows how to get back to its server.
        self._connect_factory = connect_factory
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._finished = False  # explicit close(): reconnect is over
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(reader, self._waiting))

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      max_frame: int = DEFAULT_MAX_FRAME,
                      connect_timeout: float = 5.0,
                      **kwargs: Any) -> "ReachabilityClient":
        def factory():
            return asyncio.open_connection(host, port)

        reader, writer = await asyncio.wait_for(factory(), connect_timeout)
        return cls(reader, writer, max_frame=max_frame,
                   connect_timeout=connect_timeout,
                   connect_factory=factory, **kwargs)

    @classmethod
    async def connect_unix(cls, path: str, *,
                           max_frame: int = DEFAULT_MAX_FRAME,
                           connect_timeout: float = 5.0,
                           **kwargs: Any) -> "ReachabilityClient":
        """Connect over a unix domain socket (cluster control plane)."""
        def factory():
            return asyncio.open_unix_connection(path)

        reader, writer = await asyncio.wait_for(factory(), connect_timeout)
        return cls(reader, writer, max_frame=max_frame,
                   connect_timeout=connect_timeout,
                   connect_factory=factory, **kwargs)

    @property
    def closed(self) -> bool:
        return self._closed

    @staticmethod
    def write_retry_safe(error: Exception) -> bool:
        """Whether a failed write is provably un-applied.

        True for structured refusals whose code is in
        :data:`~repro.server.protocol.NOT_APPLIED_CODES`; False for
        anything ambiguous (:class:`AmbiguousWriteError`, connection
        loss after send) or definitive (``cycle``, ``not-found``)."""
        code = getattr(error, "code", None)
        return code in NOT_APPLIED_CODES

    async def __aenter__(self) -> "ReachabilityClient":
        return self

    async def __aexit__(self, *_exc_info: Any) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self, reader: asyncio.StreamReader,
                         waiting: Dict[int, asyncio.Future]) -> None:
        # Bound to ONE connection's reader and waiting-map: after a
        # reconnect this stale loop may still be finishing, and it must
        # not mark the replacement connection closed or fail its calls.
        error: Optional[Exception] = None
        try:
            while True:
                response = await read_frame(reader,
                                            max_frame=self._max_frame)
                if response is None:
                    break
                future = waiting.pop(response.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(response)
        except (ProtocolError, ConnectionResetError, OSError) as exc:
            error = exc
        finally:
            if reader is self._reader:
                self._closed = True
            failure = error if error is not None else \
                ConnectionResetError("server closed the connection")
            for future in waiting.values():
                if not future.done():
                    future.set_exception(failure)
            waiting.clear()

    async def _ensure_connected(self) -> None:
        """Reconnect a dead connection, when allowed; else raise."""
        if not self._closed:
            return
        if (self._finished or not self.reconnect
                or self._connect_factory is None):
            raise ReproError("client connection is closed")
        old_task = self._reader_task
        old_task.cancel()
        try:
            await old_task
        except asyncio.CancelledError:
            pass
        try:
            self._writer.close()
        except Exception:  # noqa: BLE001 - the transport is already dead
            pass
        reader, writer = await asyncio.wait_for(
            self._connect_factory(), self.connect_timeout)
        self._reader = reader
        self._writer = writer
        self._waiting = {}
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop(reader, self._waiting))

    async def request(self, op: str, *, timeout: Optional[float] = None,
                      **fields: Any) -> dict:
        """Send one request; await its raw response object.

        The single-attempt primitive: no retries, no reconnect.
        ``timeout`` overrides the client's ``call_timeout`` for this
        call; on expiry the pending slot is abandoned (a late response
        with that id is dropped by the read loop) and
        :class:`CallTimeoutError` raises.
        """
        if self._closed:
            raise ReproError("client connection is closed")
        budget = timeout if timeout is not None else self.call_timeout
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        waiting = self._waiting
        waiting[request_id] = future
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        if budget is None:
            return await future
        try:
            return await asyncio.wait_for(future, budget)
        except asyncio.TimeoutError:
            waiting.pop(request_id, None)
            raise CallTimeoutError(op, budget) from None

    async def _roundtrip(self, op: str, fields: dict) -> dict:
        """One logical call: reconnect + retry per policy, and classify
        write failures so a possibly-applied mutation never auto-retries.
        """
        policy = self.retry
        if policy is None or op in _NO_RETRY_OPS:
            await self._ensure_connected()
            return await self.request(op, **fields)
        is_write = op in _WRITE_OPS
        attempts = policy.attempts
        for attempt in range(attempts):
            last = attempt == attempts - 1
            sent = False
            try:
                await self._ensure_connected()
                sent = True
                response = await self.request(op, **fields)
            except ReproError as error:
                if isinstance(error, (CallTimeoutError, ProtocolError)):
                    # Network-shaped; fall through to classification.
                    pass
                else:
                    raise  # structural misuse ("connection is closed")
                if sent and is_write:
                    raise AmbiguousWriteError(op, error) from error
                if last:
                    raise
            except _TRANSIENT_ERRORS as error:
                if sent and is_write:
                    raise AmbiguousWriteError(op, error) from error
                if last:
                    raise
            else:
                if response.get("ok"):
                    return response
                error_obj = response.get("error") or {}
                code = error_obj.get("code")
                if code != "overloaded" or last:
                    # Any structured refusal other than overloaded is
                    # definitive (and for writes, NOT_APPLIED_CODES says
                    # which of them left the graph untouched — the
                    # caller may retry those deliberately).
                    return response
                hint = (error_obj.get("retry_after_ms") or 0) / 1000.0
                await asyncio.sleep(max(policy.delay(attempt), hint))
                continue
            await asyncio.sleep(policy.delay(attempt))
        raise AssertionError("unreachable: retry loop must return/raise")

    def _raise_response_error(self, response: dict) -> None:
        error = response.get("error", {})
        code = error.get("code", "server-error")
        message = error.get("message", "")
        factory = _CODE_EXCEPTIONS.get(code)
        if factory is not None:
            raise factory(message)
        raise ServerError(code, message,
                          retry_after_ms=error.get("retry_after_ms"))

    async def call(self, op: str, **fields: Any) -> Any:
        """Send one request; return ``result`` or raise the error.

        Rides the retry/reconnect layer when a policy is configured."""
        response = await self._roundtrip(op, fields)
        if response.get("ok"):
            return response["result"]
        self._raise_response_error(response)

    async def close(self) -> None:
        """Close the connection; safe against a peer that is already
        gone (severed by a chaos proxy, reset, or simply dead): the
        close never raises and never hangs past ``close_timeout``."""
        self._closed = True
        self._finished = True
        try:
            self._writer.close()
            await asyncio.wait_for(self._writer.wait_closed(),
                                   self.close_timeout)
        except (asyncio.TimeoutError, ConnectionResetError,
                BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------
    async def ping(self) -> str:
        return await self.call("ping")

    async def epoch(self) -> int:
        return await self.call("epoch")

    async def check(self, source: Any, destination: Any, *,
                    deadline_ms: Optional[float] = None) -> bool:
        fields: dict = {"u": source, "v": destination}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return await self.call("check", **fields)

    async def check_many(
            self, pairs: Sequence[Tuple[Any, Any]], *,
            deadline_ms: Optional[float] = None) -> List[bool]:
        fields: dict = {"pairs": [[u, v] for u, v in pairs]}
        if deadline_ms is not None:
            fields["deadline_ms"] = deadline_ms
        return await self.call("check-many", **fields)

    async def expand(self, source: Any, *,
                     reflexive: bool = True) -> List[Any]:
        return await self.call("expand", u=source, reflexive=reflexive)

    async def list_reaching(self, destination: Any, *,
                            reflexive: bool = True) -> List[Any]:
        return await self.call("list-reaching", v=destination,
                               reflexive=reflexive)

    async def semijoin_any(self, sources: Sequence[Any],
                           destinations: Sequence[Any]) -> bool:
        return await self.call("semijoin", mode="any",
                               sources=list(sources),
                               destinations=list(destinations))

    async def semijoin_forward(self, sources: Sequence[Any]) -> List[Any]:
        return await self.call("semijoin", mode="forward",
                               sources=list(sources))

    async def semijoin_backward(
            self, destinations: Sequence[Any]) -> List[Any]:
        return await self.call("semijoin", mode="backward",
                               destinations=list(destinations))

    async def add_node(self, node: Any,
                       parents: Sequence[Any] = ()) -> int:
        response = await self._roundtrip(
            "add-node", {"node": node, "parents": list(parents)})
        return self._write_epoch(response)

    async def add_arc(self, source: Any, destination: Any) -> int:
        response = await self._roundtrip("add-arc",
                                         {"u": source, "v": destination})
        return self._write_epoch(response)

    async def remove_arc(self, source: Any, destination: Any) -> int:
        response = await self._roundtrip("remove-arc",
                                         {"u": source, "v": destination})
        return self._write_epoch(response)

    async def remove_node(self, node: Any) -> int:
        response = await self._roundtrip("remove-node", {"node": node})
        return self._write_epoch(response)

    def _write_epoch(self, response: dict) -> int:
        """Write acks resolve to the epoch where the write is visible."""
        if response.get("ok"):
            return response["epoch"]
        self._raise_response_error(response)

    async def stats(self) -> dict:
        return await self.call("stats")

    async def shutdown(self) -> str:
        return await self.call("shutdown")
