"""Client helper for the framed protocol.

:class:`ReachabilityClient` holds one connection, pipelines requests,
and correlates responses by ``id`` with a background reader task — so
many coroutines can share a client, and pipelined calls overlap on the
wire (which is what lets the server coalesce them).

Usage::

    client = await ReachabilityClient.connect(host, port)
    try:
        assert await client.check("a", "d")
        answers = await client.check_many([("a", "d"), ("b", "c")])
    finally:
        await client.close()
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CycleError, NodeNotFoundError, ReproError
from repro.server.protocol import (DEFAULT_MAX_FRAME, ProtocolError,
                                   encode_frame, read_frame)

__all__ = ["ReachabilityClient", "ServerError"]


class ServerError(ReproError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.server_message = message


#: Error codes re-raised as their local exception type, so code written
#: against an in-process engine ports to the client unchanged.
_CODE_EXCEPTIONS = {
    "not-found": lambda msg: NodeNotFoundError(_node_from(msg)),
    "cycle": lambda msg: CycleError(msg),
}


def _node_from(message: str) -> str:
    # "node 'x' is not in the graph" -> best-effort extraction; the
    # exact node value survives only for string nodes, which is all the
    # wire protocol can carry anyway.
    if "'" in message:
        return message.split("'")[1]
    return message


class ReachabilityClient:
    """One pipelined connection to a :class:`ReachabilityServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *,
                 max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self._reader = reader
        self._writer = writer
        self._max_frame = max_frame
        self._ids = itertools.count(1)
        self._waiting: Dict[int, asyncio.Future] = {}
        self._closed = False
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int, *,
                      max_frame: int = DEFAULT_MAX_FRAME
                      ) -> "ReachabilityClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer, max_frame=max_frame)

    @classmethod
    async def connect_unix(cls, path: str, *,
                           max_frame: int = DEFAULT_MAX_FRAME
                           ) -> "ReachabilityClient":
        """Connect over a unix domain socket (cluster control plane)."""
        reader, writer = await asyncio.open_unix_connection(path)
        return cls(reader, writer, max_frame=max_frame)

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    async def _read_loop(self) -> None:
        error: Optional[Exception] = None
        try:
            while True:
                response = await read_frame(self._reader,
                                            max_frame=self._max_frame)
                if response is None:
                    break
                future = self._waiting.pop(response.get("id"), None)
                if future is not None and not future.cancelled():
                    future.set_result(response)
        except (ProtocolError, ConnectionResetError, OSError) as exc:
            error = exc
        finally:
            self._closed = True
            failure = error if error is not None else \
                ConnectionResetError("server closed the connection")
            for future in self._waiting.values():
                if not future.cancelled():
                    future.set_exception(failure)
            self._waiting.clear()

    async def request(self, op: str, **fields: Any) -> dict:
        """Send one request; await its raw response object."""
        if self._closed:
            raise ReproError("client connection is closed")
        request_id = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[request_id] = future
        payload = {"id": request_id, "op": op}
        payload.update(fields)
        self._writer.write(encode_frame(payload))
        await self._writer.drain()
        return await future

    async def call(self, op: str, **fields: Any) -> Any:
        """Send one request; return ``result`` or raise the error."""
        response = await self.request(op, **fields)
        if response.get("ok"):
            return response["result"]
        error = response.get("error", {})
        code = error.get("code", "server-error")
        message = error.get("message", "")
        raise _CODE_EXCEPTIONS.get(code, lambda msg: ServerError(code, msg)
                                   )(message)

    async def close(self) -> None:
        self._closed = True
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # op conveniences
    # ------------------------------------------------------------------
    async def ping(self) -> str:
        return await self.call("ping")

    async def epoch(self) -> int:
        return await self.call("epoch")

    async def check(self, source: Any, destination: Any) -> bool:
        return await self.call("check", u=source, v=destination)

    async def check_many(
            self, pairs: Sequence[Tuple[Any, Any]]) -> List[bool]:
        return await self.call(
            "check-many", pairs=[[u, v] for u, v in pairs])

    async def expand(self, source: Any, *,
                     reflexive: bool = True) -> List[Any]:
        return await self.call("expand", u=source, reflexive=reflexive)

    async def list_reaching(self, destination: Any, *,
                            reflexive: bool = True) -> List[Any]:
        return await self.call("list-reaching", v=destination,
                               reflexive=reflexive)

    async def semijoin_any(self, sources: Sequence[Any],
                           destinations: Sequence[Any]) -> bool:
        return await self.call("semijoin", mode="any",
                               sources=list(sources),
                               destinations=list(destinations))

    async def semijoin_forward(self, sources: Sequence[Any]) -> List[Any]:
        return await self.call("semijoin", mode="forward",
                               sources=list(sources))

    async def semijoin_backward(
            self, destinations: Sequence[Any]) -> List[Any]:
        return await self.call("semijoin", mode="backward",
                               destinations=list(destinations))

    async def add_node(self, node: Any,
                       parents: Sequence[Any] = ()) -> int:
        response = await self.request("add-node", node=node,
                                      parents=list(parents))
        return self._write_epoch(response)

    async def add_arc(self, source: Any, destination: Any) -> int:
        response = await self.request("add-arc", u=source, v=destination)
        return self._write_epoch(response)

    async def remove_arc(self, source: Any, destination: Any) -> int:
        response = await self.request("remove-arc", u=source,
                                      v=destination)
        return self._write_epoch(response)

    async def remove_node(self, node: Any) -> int:
        response = await self.request("remove-node", node=node)
        return self._write_epoch(response)

    def _write_epoch(self, response: dict) -> int:
        """Write acks resolve to the epoch where the write is visible."""
        if response.get("ok"):
            return response["epoch"]
        error = response.get("error", {})
        code = error.get("code", "server-error")
        message = error.get("message", "")
        raise _CODE_EXCEPTIONS.get(code, lambda msg: ServerError(code, msg)
                                   )(message)

    async def stats(self) -> dict:
        return await self.call("stats")

    async def shutdown(self) -> str:
        return await self.call("shutdown")
