"""The wire protocol: length-prefixed JSON frames, shared by both ends.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests are JSON objects::

    {"id": 7, "op": "check", "u": "alice", "v": "doc9"}

and every request produces exactly one response object::

    {"id": 7, "ok": true, "result": true, "epoch": 3}
    {"id": 7, "ok": false, "error": {"code": "not-found", "message": "..."}}

``id`` is an opaque client token echoed back verbatim, so clients may
pipeline many requests over one connection and correlate out-of-order
completions (coalesced checks can complete out of request order across
connections, though each connection's responses preserve its own request
order).  Responses are encoded with sorted keys and no whitespace, so a
given payload always serialises to the same bytes — the
batch-equals-singles test in ``tests/server`` compares raw frames.

Malformed input never kills the serving loop: frames whose declared
length exceeds the limit draw a ``too-large`` error before the
connection closes (the stream can no longer be framed); bytes that are
not JSON, JSON that is not an object, and unknown ``op`` values each
draw a structured error on a connection that remains usable.

The same port also speaks a minimal HTTP/1.1: a connection whose first
bytes spell an HTTP method is handed to the HTTP handler (a framed
connection can never collide — ``b"GET "`` read as a length prefix is
over a gigabyte, far past any sane frame limit).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "DEFAULT_MAX_FRAME",
    "ERROR_CODES",
    "FrameParser",
    "HTTP_METHODS",
    "ProtocolError",
    "decode_payload",
    "encode_frame",
    "encode_response",
    "error_response",
    "looks_like_http",
    "ok_response",
    "read_frame",
]

#: Frames above this many payload bytes are refused (declared length
#: checked before any allocation).
DEFAULT_MAX_FRAME = 1 << 20

_PREFIX = struct.Struct(">I")

#: Every error code a response may carry.
ERROR_CODES = (
    "bad-json",      # payload bytes are not valid JSON
    "bad-request",   # JSON is not an object, or fields missing/mistyped
    "cycle",         # a write would create a cycle
    "not-found",     # a named node is not in the served snapshot
    "read-only",     # a write against a frozen (snapshot-only) server
    "server-error",  # unexpected internal failure (bug surface, not 500-spam)
    "shutting-down", # server is draining; no new work accepted
    "too-large",     # declared frame length exceeds the limit
    "unknown-op",    # the op name is not in the dispatch table
)

#: HTTP method prefixes used to sniff HTTP connections on the shared port.
HTTP_METHODS = (b"GET ", b"POST", b"HEAD", b"PUT ", b"DELE", b"OPTI",
                b"PATC")


class ProtocolError(ReproError):
    """A malformed frame or payload, tagged with its response code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


def encode_frame(payload: dict) -> bytes:
    """One deterministic wire frame for ``payload``."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame body into a request/response object.

    Raises :class:`ProtocolError` (``bad-json`` / ``bad-request``) so the
    caller can answer with a structured error instead of dying.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError("bad-json",
                            f"frame body is not JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def ok_response(request_id: Any, result: Any, *,
                epoch: Optional[int] = None) -> dict:
    response = {"id": request_id, "ok": True, "result": result}
    if epoch is not None:
        response["epoch"] = epoch
    return response


def error_response(request_id: Any, code: str, message: str) -> dict:
    assert code in ERROR_CODES, code
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def encode_response(response: dict) -> bytes:
    return encode_frame(response)


def looks_like_http(prefix: bytes) -> bool:
    """Whether the first bytes of a connection spell an HTTP method."""
    if len(prefix) >= 4:
        return prefix[:4] in HTTP_METHODS
    return bool(prefix) and any(method.startswith(prefix)
                                for method in HTTP_METHODS)


class FrameParser:
    """Incremental frame splitter over a growing byte buffer.

    Feed it chunks as they arrive; iterate complete frame bodies out.
    The parser validates declared lengths *before* buffering a body, so
    an adversarial 4 GiB prefix costs four bytes of memory, not four
    gigabytes.
    """

    __slots__ = ("max_frame", "_buffer")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk``; return every now-complete frame body.

        Raises :class:`ProtocolError` (``too-large``) when a declared
        length exceeds the limit — the stream cannot be re-synchronised
        after that, so the caller should answer and close.
        """
        self._buffer.extend(chunk)
        bodies: List[bytes] = []
        buffer = self._buffer
        offset = 0
        while len(buffer) - offset >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(buffer, offset)
            if length > self.max_frame:
                del buffer[:offset]
                raise ProtocolError(
                    "too-large",
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte limit")
            end = offset + _PREFIX.size + length
            if len(buffer) < end:
                break
            bodies.append(bytes(buffer[offset + _PREFIX.size:end]))
            offset = end
        if offset:
            del buffer[:offset]
        return bodies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


async def read_frame(reader, *,
                     max_frame: int = DEFAULT_MAX_FRAME) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on clean EOF before a prefix byte; raises
    :class:`ProtocolError` on truncation mid-frame or an oversized
    declared length.  This is the client-side primitive —
    the server uses :class:`FrameParser` for chunked reads.
    """
    import asyncio
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            "bad-request",
            "connection closed mid length prefix") from None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_frame:
        raise ProtocolError(
            "too-large",
            f"declared frame length {length} exceeds the {max_frame}-byte "
            f"limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            "bad-request", "connection closed mid frame body") from None
    return decode_payload(body)
