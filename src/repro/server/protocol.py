"""The wire protocol: length-prefixed JSON frames, shared by both ends.

A frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON.  Requests are JSON objects::

    {"id": 7, "op": "check", "u": "alice", "v": "doc9"}

and every request produces exactly one response object::

    {"id": 7, "ok": true, "result": true, "epoch": 3}
    {"id": 7, "ok": false, "error": {"code": "not-found", "message": "..."}}

``id`` is an opaque client token echoed back verbatim, so clients may
pipeline many requests over one connection and correlate out-of-order
completions (coalesced checks can complete out of request order across
connections, though each connection's responses preserve its own request
order).  Responses are encoded with sorted keys and no whitespace, so a
given payload always serialises to the same bytes — the
batch-equals-singles test in ``tests/server`` compares raw frames.

Malformed input never kills the serving loop: frames whose declared
length exceeds the limit draw a ``too-large`` error before the
connection closes (the stream can no longer be framed); bytes that are
not JSON, JSON that is not an object, and unknown ``op`` values each
draw a structured error on a connection that remains usable.

The same port also speaks a minimal HTTP/1.1: a connection whose first
bytes spell an HTTP method is handed to the HTTP handler (a framed
connection can never collide — ``b"GET "`` read as a length prefix is
over a gigabyte, far past any sane frame limit).
"""

from __future__ import annotations

import json
import struct
from typing import Any, Iterator, List, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "CannedError",
    "DEFAULT_MAX_FRAME",
    "ERROR_CODES",
    "FrameParser",
    "HTTP_METHODS",
    "NOT_APPLIED_CODES",
    "OverloadedError",
    "ProtocolError",
    "decode_payload",
    "encode_frame",
    "encode_response",
    "error_response",
    "looks_like_http",
    "ok_response",
    "read_frame",
]

#: Frames above this many payload bytes are refused (declared length
#: checked before any allocation).
DEFAULT_MAX_FRAME = 1 << 20

_PREFIX = struct.Struct(">I")

#: Every error code a response may carry.
ERROR_CODES = (
    "bad-json",      # payload bytes are not valid JSON
    "bad-request",   # JSON is not an object, or fields missing/mistyped
    "cycle",         # a write would create a cycle
    "deadline-exceeded",  # the request's deadline_ms budget expired
    "not-found",     # a named node is not in the served snapshot
    "overloaded",    # load shed; error carries a retry_after_ms hint
    "read-only",     # a write against a frozen (snapshot-only) server
    "server-error",  # unexpected internal failure (bug surface, not 500-spam)
    "shutting-down", # server is draining; no new work accepted
    "too-large",     # declared frame length exceeds the limit
    "unknown-op",    # the op name is not in the dispatch table
)

#: Error codes that mean the server did NOT apply the request — a write
#: answered with one of these is safe to retry (it never reached the
#: engine): shed before admission, dropped before work, or refused
#: outright.  Anything else that interrupts a write *after* it was sent
#: is ambiguous.
NOT_APPLIED_CODES = frozenset(
    {"overloaded", "deadline-exceeded", "shutting-down", "read-only"})

#: HTTP method prefixes used to sniff HTTP connections on the shared port.
HTTP_METHODS = (b"GET ", b"POST", b"HEAD", b"PUT ", b"DELE", b"OPTI",
                b"PATC")


class ProtocolError(ReproError):
    """A malformed frame or payload, tagged with its response code."""

    def __init__(self, code: str, message: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(message)
        self.code = code


class OverloadedError(ProtocolError):
    """Load was shed.  Carries the server's backoff hint so clients do
    not stampede back the instant the error arrives."""

    def __init__(self, message: str, *, retry_after_ms: int = 50) -> None:
        super().__init__("overloaded", message)
        self.retry_after_ms = int(retry_after_ms)


def encode_frame(payload: dict) -> bytes:
    """One deterministic wire frame for ``payload``."""
    body = json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    return _PREFIX.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame body into a request/response object.

    Raises :class:`ProtocolError` (``bad-json`` / ``bad-request``) so the
    caller can answer with a structured error instead of dying.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError("bad-json",
                            f"frame body is not JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            "bad-request",
            f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def ok_response(request_id: Any, result: Any, *,
                epoch: Optional[int] = None) -> dict:
    response = {"id": request_id, "ok": True, "result": result}
    if epoch is not None:
        response["epoch"] = epoch
    return response


def error_response(request_id: Any, code: str, message: str, *,
                   retry_after_ms: Optional[int] = None) -> dict:
    assert code in ERROR_CODES, code
    error: dict = {"code": code, "message": message}
    if retry_after_ms is not None:
        error["retry_after_ms"] = int(retry_after_ms)
    return {"id": request_id, "ok": False, "error": error}


def encode_response(response: dict) -> bytes:
    return encode_frame(response)


class CannedError:
    """An error response serialised once, with only the id spliced in.

    Load shedding is only protection if a shed response costs less than
    the request it refuses: under overload the server may emit tens of
    thousands of identical errors per second, and building a dict and
    running ``json.dumps`` for each one makes the shed path as expensive
    as serving.  ``frame(request_id)`` is byte-identical to
    ``encode_response(error_response(request_id, ...))`` (same sorted-key
    serialisation), but the constant part is encoded at construction.
    """

    def __init__(self, code: str, message: str, *,
                 retry_after_ms: Optional[int] = None) -> None:
        error = error_response(None, code, message,
                               retry_after_ms=retry_after_ms)["error"]
        body = json.dumps(error, sort_keys=True, separators=(",", ":"))
        # Key order in the envelope is fixed by sort_keys:
        # "error" < "id" < "ok".
        self._head = ('{"error":' + body + ',"id":').encode("utf-8")
        self._tail = b',"ok":false}'

    def frame(self, request_id: Any) -> bytes:
        body = (self._head
                + json.dumps(request_id, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")
                + self._tail)
        return _PREFIX.pack(len(body)) + body


def looks_like_http(prefix: bytes) -> bool:
    """Whether the first bytes of a connection spell an HTTP method."""
    if len(prefix) >= 4:
        return prefix[:4] in HTTP_METHODS
    return bool(prefix) and any(method.startswith(prefix)
                                for method in HTTP_METHODS)


class FrameParser:
    """Incremental frame splitter over a growing byte buffer.

    Feed it chunks as they arrive; iterate complete frame bodies out.
    The parser validates declared lengths *before* buffering a body, so
    an adversarial 4 GiB prefix costs four bytes of memory, not four
    gigabytes.
    """

    __slots__ = ("max_frame", "_buffer")

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb ``chunk``; return every now-complete frame body.

        Raises :class:`ProtocolError` (``too-large``) when a declared
        length exceeds the limit — the stream cannot be re-synchronised
        after that, so the caller should answer and close.
        """
        self._buffer.extend(chunk)
        bodies: List[bytes] = []
        buffer = self._buffer
        offset = 0
        while len(buffer) - offset >= _PREFIX.size:
            (length,) = _PREFIX.unpack_from(buffer, offset)
            if length > self.max_frame:
                del buffer[:offset]
                raise ProtocolError(
                    "too-large",
                    f"declared frame length {length} exceeds the "
                    f"{self.max_frame}-byte limit")
            end = offset + _PREFIX.size + length
            if len(buffer) < end:
                break
            bodies.append(bytes(buffer[offset + _PREFIX.size:end]))
            offset = end
        if offset:
            del buffer[:offset]
        return bodies

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)


async def read_frame(reader, *,
                     max_frame: int = DEFAULT_MAX_FRAME) -> Optional[dict]:
    """Read one frame from an :class:`asyncio.StreamReader`.

    Returns ``None`` on clean EOF before a prefix byte; raises
    :class:`ProtocolError` on truncation mid-frame or an oversized
    declared length.  This is the client-side primitive —
    the server uses :class:`FrameParser` for chunked reads.
    """
    import asyncio
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError(
            "bad-request",
            "connection closed mid length prefix") from None
    (length,) = _PREFIX.unpack(prefix)
    if length > max_frame:
        raise ProtocolError(
            "too-large",
            f"declared frame length {length} exceeds the {max_frame}-byte "
            f"limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            "bad-request", "connection closed mid frame body") from None
    return decode_payload(body)
