"""RTCF snapshot generations: the cluster's publish/attach protocol.

A generation is one immutable RTCF file, ``gen-<epoch>.rtcf``, named by
the serve epoch whose closure it holds.  The writer publishes a new
generation in two atomic steps — write the RTCF (temp + fsync + rename,
via :func:`~repro.core.rtcf.save_rtcf`), then move the one-line
``CURRENT`` pointer the same way — so a reader that follows ``CURRENT``
always lands on a complete, checksummed file.  A crash between the two
steps simply leaves ``CURRENT`` on the previous generation: the old
snapshot keeps serving, and the orphaned file is swept by the next
successful publish's garbage collection.

Readers attach with :func:`~repro.core.rtcf.load_rtcf` — an O(1) mmap
whose pages the kernel shares across every worker process.  POSIX keeps
a mapped file's pages alive after ``unlink``, so garbage-collecting a
stale generation never invalidates a worker that is still answering
from it; the worker re-attaches to the current generation between
requests at its own pace.

Epoch is carried in the *filename* (not the RTCF header) because serve
epochs count publishes, while the header epoch counts the underlying
index's mutations — the two advance at different rates.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import List, Optional, Tuple

from repro.core.frozen import FrozenTCIndex
from repro.core.rtcf import load_rtcf, save_rtcf
from repro.durability.atomic import atomic_write_bytes
from repro.errors import CorruptFileError, ReproError

__all__ = ["GenerationStore", "generation_name", "parse_generation"]

CURRENT_NAME = "CURRENT"
_GEN_RE = re.compile(r"^gen-(\d+)\.rtcf$")


def generation_name(epoch: int) -> str:
    return f"gen-{epoch}.rtcf"


def parse_generation(name: str) -> Optional[int]:
    """The epoch a generation filename names, or ``None``."""
    match = _GEN_RE.match(name)
    return int(match.group(1)) if match else None


class GenerationStore:
    """One directory of generation files plus the ``CURRENT`` pointer.

    The writer process is the only publisher; any number of reader
    processes may :meth:`attach` concurrently.  ``keep`` bounds how many
    generations survive garbage collection (the current one always
    does).  ``fs`` accepts the durability layer's filesystem shim so the
    fault-injection harness can crash a publish at any point.
    """

    def __init__(self, root, *, keep: int = 2, fs=None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = max(1, int(keep))
        self._fs = fs

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish(self, frozen: FrozenTCIndex, epoch: int) -> str:
        """Write ``gen-<epoch>.rtcf``, then repoint ``CURRENT``.

        Returns the new generation's filename.  Both steps are atomic
        renames; a crash between them leaves the previous generation
        current (torn publishes are invisible to readers).
        """
        name = generation_name(epoch)
        save_rtcf(frozen, self.root / name, fs=self._fs)
        atomic_write_bytes(self.root / CURRENT_NAME,
                           (name + "\n").encode("ascii"),
                           fs=self._fs, label="current")
        self.collect_garbage()
        return name

    def collect_garbage(self) -> List[str]:
        """Drop all but the newest ``keep`` generations; returns names.

        Never touches the generation ``CURRENT`` names, and sweeps
        orphaned ``*.tmp`` files from torn publishes.  Unlinking a file
        a reader still maps is safe — the mapping pins the pages until
        the reader re-attaches.
        """
        current = self.current()
        current_name = current[1] if current is not None else None
        generations = self.generations()
        survivors = {name for _, name in generations[-self.keep:]}
        if current_name is not None:
            survivors.add(current_name)
        removed: List[str] = []
        for _, name in generations:
            if name in survivors:
                continue
            try:
                os.unlink(self.root / name)
            except FileNotFoundError:  # pragma: no cover - racing sweep
                continue
            removed.append(name)
        for entry in self.root.iterdir():
            if entry.name.endswith(".tmp"):
                try:
                    entry.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        return removed

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def current(self) -> Optional[Tuple[int, str]]:
        """``(epoch, filename)`` of the current generation, or ``None``."""
        try:
            text = (self.root / CURRENT_NAME).read_text("ascii")
        except FileNotFoundError:
            return None
        name = text.strip()
        epoch = parse_generation(name)
        if epoch is None:
            raise CorruptFileError(
                str(self.root / CURRENT_NAME),
                f"CURRENT names {name!r}, not a generation file")
        return epoch, name

    def generations(self) -> List[Tuple[int, str]]:
        """Every generation file present, sorted by epoch."""
        found = []
        for entry in self.root.iterdir():
            epoch = parse_generation(entry.name)
            if epoch is not None:
                found.append((epoch, entry.name))
        found.sort()
        return found

    def attach(self, *, verify: bool = False
               ) -> Tuple[int, str, FrozenTCIndex]:
        """mmap the current generation: ``(epoch, name, view)``.

        Retries across the publish/GC race: between reading ``CURRENT``
        and opening the file, the writer may have swept that generation
        — in which case ``CURRENT`` has necessarily moved on, and the
        next read lands on a live file.
        """
        for _ in range(5):
            current = self.current()
            if current is None:
                raise ReproError(
                    f"no generation published under {self.root}")
            epoch, name = current
            try:
                view = load_rtcf(self.root / name, verify=verify)
            except FileNotFoundError:
                continue
            return epoch, name, view
        raise CorruptFileError(
            str(self.root / CURRENT_NAME),
            "generation files kept disappearing under the reader")
