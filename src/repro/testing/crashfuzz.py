"""Crash-point fuzzing: kill the store everywhere, prove recovery exact.

The sweep drives a :class:`~repro.durability.store.DurableTCIndex`
through a deterministic random op stream with the
:class:`~repro.testing.faults.FaultyFS` shim underneath, killing the
"process" at one registered crash point per run
(:data:`~repro.testing.faults.CRASH_POINTS`), and then:

1. re-opens the store with the real filesystem (recovery runs);
2. replays the *durable prefix* of the op ledger — every journalled op
   with sequence ``<= recovered.last_seq`` — into an independent
   :class:`~repro.testing.oracle.SetClosureOracle` and compares full
   successor sets node by node (never a silently wrong index);
3. asserts the **loss bound**: recovery keeps every op whose WAL append
   returned under ``fsync_every=1``; in general at most the last
   un-fsynced batch (``fsync_every - 1`` acknowledged ops, and the one
   op in flight at the crash may appear either side of the cut);
4. re-applies the lost suffix plus the untried remainder of the stream
   and checks the store ends fully caught up, checkpoints, and survives
   one more clean re-open.

A separate bit-rot phase flips single bytes in WAL records and the
newest checkpoint and asserts the typed-error / generation-fallback
contract.  :func:`crash_sweep` is the CLI's ``crash-fuzz`` entry point;
the pytest wrappers in ``tests/durability/`` call it with a small
budget, CI's ``crash-smoke`` job with the acceptance budget.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError, SimulatedCrash
from repro.testing.faults import CRASH_POINTS, FaultyFS, flip_byte
from repro.testing.oracle import DifferentialMismatch, SetClosureOracle


class CrashFuzzFailure(ReproError):
    """A crash-recovery run violated the durability contract."""


@dataclass
class CrashFuzzReport:
    """Aggregate results of one :func:`crash_sweep`."""

    seed: int
    ops: int
    engine: str
    fsync_every: int
    runs: int = 0
    crashes: int = 0
    ops_lost_total: int = 0
    max_ops_lost: int = 0
    truncated_tails: int = 0
    checkpoint_fallbacks: int = 0
    bit_flips: int = 0
    #: crash point -> times a run actually died there.
    crashed_at: Dict[str, int] = field(default_factory=dict)
    points_never_reached: List[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "ops": self.ops,
            "engine": self.engine,
            "fsync_every": self.fsync_every,
            "runs": self.runs,
            "crashes": self.crashes,
            "ops_lost_total": self.ops_lost_total,
            "max_ops_lost": self.max_ops_lost,
            "truncated_tails": self.truncated_tails,
            "checkpoint_fallbacks": self.checkpoint_fallbacks,
            "bit_flips": self.bit_flips,
            "crashed_at": dict(sorted(self.crashed_at.items())),
            "points_never_reached": list(self.points_never_reached),
        }


# ----------------------------------------------------------------------
# deterministic op streams
# ----------------------------------------------------------------------
def generate_ops(count: int, *, seed: int,
                 checkpoint_every: int = 40) -> List[list]:
    """A reproducible stream of store operations.

    Ops are journal-shaped lists (``["add_arc", s, d]``...), plus the
    control op ``["checkpoint"]`` sprinkled in so crashes land inside
    checkpoint publication and rotation too.  The generator tracks a
    shadow closure so every emitted op is *effective* (no duplicate
    arcs, no cycles, no missing nodes) — each op therefore earns exactly
    one WAL sequence number, which is what lets the sweep equate "first
    ``k`` ledger entries" with "WAL sequences ``1..k``".
    """
    rng = random.Random(seed)
    shadow = SetClosureOracle()
    fresh = 0
    ops: List[list] = []
    while len(ops) < count:
        nodes = shadow.nodes()
        roll = rng.random()
        # Never end the stream on a checkpoint: the bit-flip phase needs
        # records after the last one (an empty tail has nothing to rot).
        if (len(ops) + 1) % checkpoint_every == 0 and len(ops) + 1 < count:
            ops.append(["checkpoint"])
            continue
        if not nodes or roll < 0.30:
            parents = [node for node in rng.sample(
                nodes, k=min(len(nodes), rng.choice((0, 1, 1, 2))))]
            node = f"n{fresh}"
            fresh += 1
            shadow.add_node(node)
            for parent in parents:
                shadow.add_arc(parent, node)
            ops.append(["add_node", node, parents])
        elif roll < 0.55 and len(nodes) >= 2:
            source, destination = rng.sample(nodes, k=2)
            if shadow.has_arc(source, destination) \
                    or shadow.reachable(destination, source):
                continue
            shadow.add_arc(source, destination)
            ops.append(["add_arc", source, destination])
        elif roll < 0.70:
            arcs = sorted(shadow.arcs())
            if not arcs:
                continue
            source, destination = arcs[rng.randrange(len(arcs))]
            shadow.remove_arc(source, destination)
            ops.append(["remove_arc", source, destination])
        elif roll < 0.80:
            node = nodes[rng.randrange(len(nodes))]
            shadow.remove_node(node)
            ops.append(["remove_node", node])
        elif roll < 0.90:
            ops.append(["renumber", rng.choice((8, 16, 32))])
        else:
            ops.append(["merge"])
    return ops


def _oracle_apply(oracle: SetClosureOracle, op: list) -> None:
    kind = op[0]
    if kind == "add_node":
        oracle.add_node(op[1])
        for parent in op[2]:
            oracle.add_arc(parent, op[1])
    elif kind == "add_arc":
        oracle.add_arc(op[1], op[2])
    elif kind == "remove_arc":
        oracle.remove_arc(op[1], op[2])
    elif kind == "remove_node":
        oracle.remove_node(op[1])
    elif kind in ("renumber", "merge", "checkpoint"):
        pass  # representation-only: the closure is unchanged
    else:  # pragma: no cover - generator emits only the above
        raise ReproError(f"unknown op kind {kind!r}")


def _store_apply(store, op: list) -> None:
    kind = op[0]
    if kind == "add_node":
        store.add_node(op[1], op[2])
    elif kind == "add_arc":
        store.add_arc(op[1], op[2])
    elif kind == "remove_arc":
        store.remove_arc(op[1], op[2])
    elif kind == "remove_node":
        store.remove_node(op[1])
    elif kind == "renumber":
        store.renumber(op[1])
    elif kind == "merge":
        store.merge_intervals()
    elif kind == "checkpoint":
        store.checkpoint()
    else:  # pragma: no cover - generator emits only the above
        raise ReproError(f"unknown op kind {kind!r}")


def _verify_against_prefix(store, journalled: List[list], upto: int,
                           label: str) -> None:
    """Recovered state must equal the oracle over WAL sequences 1..upto."""
    oracle = SetClosureOracle()
    for op in journalled[:upto]:
        _oracle_apply(oracle, op)
    expected_nodes = set(oracle.nodes())
    actual_nodes = set(store.nodes())
    if expected_nodes != actual_nodes:
        raise CrashFuzzFailure(
            f"{label}: node set diverged after recovery: "
            f"missing={sorted(map(repr, expected_nodes - actual_nodes))} "
            f"extra={sorted(map(repr, actual_nodes - expected_nodes))}")
    for node in oracle.nodes():
        expected = set(oracle.successors(node))
        actual = set(store.successors(node))
        if expected != actual:
            raise CrashFuzzFailure(
                f"{label}: successors({node!r}) diverged after recovery: "
                f"missing={sorted(map(repr, expected - actual))} "
                f"extra={sorted(map(repr, actual - expected))}")


# ----------------------------------------------------------------------
# one crash run
# ----------------------------------------------------------------------
def run_crash_stream(ops: List[list], *, crash_at: str, occurrence: int,
                     engine: str = "interval", fsync_every: int = 1,
                     torn_seed: int = 0,
                     report: Optional[CrashFuzzReport] = None) -> bool:
    """Apply ``ops`` until the shim kills at ``crash_at``; verify recovery.

    Returns ``True`` when the run actually crashed (``False`` when the
    stream finished without reaching the point that often — still
    verified at the end).  Raises :class:`CrashFuzzFailure` on any
    contract violation.
    """
    from repro.durability import DurableTCIndex

    label = f"crash@{crash_at}#{occurrence}"
    directory = tempfile.mkdtemp(prefix="crashfuzz-")
    try:
        shim = FaultyFS(crash_at=crash_at, occurrence=occurrence,
                        rng=random.Random(torn_seed))
        #: ops that earned a WAL sequence, in order (entry i = seq i+1).
        journalled: List[list] = []
        in_flight: Optional[list] = None
        crashed = False
        position = -1
        store = None
        try:
            # The open itself writes checkpoint 0, so checkpoint crash
            # points can fire during store creation too.
            store = DurableTCIndex.open(directory, engine=engine,
                                        fsync_every=fsync_every, fs=shim)
            for position, op in enumerate(ops):
                in_flight = op if op[0] != "checkpoint" else None
                before = store.last_seq
                _store_apply(store, op)
                if store.last_seq != before:
                    journalled.append(op)
                in_flight = None
        except SimulatedCrash:
            crashed = True
        if not crashed:
            store.close()
        del store  # a crashed store is an abandoned process image

        acked = len(journalled)
        recovered = DurableTCIndex.open(directory, engine=engine,
                                        fsync_every=fsync_every)
        recovery = recovered.recovery_report
        if report is not None:
            report.runs += 1
            if crashed:
                report.crashes += 1
                report.crashed_at[crash_at] = \
                    report.crashed_at.get(crash_at, 0) + 1
            if recovery.truncated_bytes:
                report.truncated_tails += 1
            if recovery.checkpoints_skipped:
                report.checkpoint_fallbacks += 1

        last = recovered.last_seq
        # -- loss bound ------------------------------------------------
        # Every acknowledged op not in the final un-fsynced batch must
        # survive; the op in flight at the crash may land either side.
        floor = acked - (fsync_every - 1)
        ceiling = acked + (1 if in_flight is not None else 0)
        if not floor <= last <= ceiling:
            raise CrashFuzzFailure(
                f"{label}: recovered last_seq={last} outside the "
                f"durability bound [{floor}, {ceiling}] "
                f"(acked={acked}, fsync_every={fsync_every})")
        if report is not None:
            lost = max(0, acked - last)
            report.ops_lost_total += lost
            report.max_ops_lost = max(report.max_ops_lost, lost)

        # -- exactness over the durable prefix -------------------------
        effective = list(journalled)
        if last == acked + 1:
            effective.append(in_flight)  # persisted but never acked
        _verify_against_prefix(recovered, effective, last, label)
        recovered.verify()

        # -- catch up and keep living ----------------------------------
        # Re-issue exactly what the crash cost us: the lost acked tail,
        # the in-flight op when it did not persist (later stream ops
        # were generated assuming it), then the untried remainder.
        catchup = effective[last:]
        if crashed:
            if in_flight is not None and last <= acked:
                catchup.append(in_flight)
            catchup.extend(ops[position + 1:])
        for op in catchup:
            _store_apply(recovered, op)
        full_ledger = list(journalled)
        if crashed and in_flight is not None:
            full_ledger.append(in_flight)
        full_ledger.extend(op for op in ops[position + 1:]
                           if op[0] != "checkpoint")
        _verify_against_prefix(recovered, full_ledger, len(full_ledger),
                               label + "+catchup")
        recovered.checkpoint()
        recovered.close()
        with DurableTCIndex.open(directory, engine=engine) as again:
            _verify_against_prefix(again, full_ledger, len(full_ledger),
                                   label + "+reopen")
        return crashed
    except DifferentialMismatch as error:
        raise CrashFuzzFailure(f"{label}: {error}") from error
    finally:
        shutil.rmtree(directory, ignore_errors=True)


# ----------------------------------------------------------------------
# bit-rot phase
# ----------------------------------------------------------------------
def run_bit_flips(ops: List[list], *, engine: str = "interval",
                  seed: int = 0,
                  report: Optional[CrashFuzzReport] = None) -> int:
    """Flip single bytes in WAL and checkpoint files; assert the contract.

    A flip in the newest checkpoint must fall back to an older
    generation (recovery still exact); a flip inside a committed WAL
    record must raise the typed :class:`~repro.errors.CorruptFileError`
    (or, when the flip happens to land in the final record's framing,
    truncate it as a torn tail) — never a silently wrong index.
    """
    from repro.durability import DurableTCIndex, scan_wal
    from repro.durability.checkpoint import list_checkpoints, list_segments
    from repro.errors import CorruptFileError

    rng = random.Random(seed)
    flips = 0
    journalled: List[list] = []

    def build(directory: str) -> None:
        with DurableTCIndex.open(directory, engine=engine) as store:
            for op in ops:
                before = store.last_seq
                _store_apply(store, op)
                if store.last_seq != before:
                    journalled.append(op)

    # -- checkpoint flip: generation fallback --------------------------
    directory = tempfile.mkdtemp(prefix="bitflip-ckpt-")
    try:
        journalled.clear()
        build(directory)
        checkpoints = list_checkpoints(directory)
        if len(checkpoints) < 2:
            raise CrashFuzzFailure(
                "bit-flip phase needs >= 2 checkpoint generations; add "
                "checkpoint ops to the stream")
        newest_seq, newest_path = checkpoints[-1]
        size = os.path.getsize(newest_path)
        flip_byte(newest_path, rng.randrange(size // 2, size), 0x20)
        flips += 1
        with DurableTCIndex.open(directory, engine=engine) as store:
            recovery = store.recovery_report
            if not recovery.checkpoints_skipped:
                raise CrashFuzzFailure(
                    f"flip in {os.path.basename(newest_path)} was not "
                    f"detected: recovery used it without fallback")
            _verify_against_prefix(store, journalled, len(journalled),
                                   "bitflip-checkpoint")
    finally:
        shutil.rmtree(directory, ignore_errors=True)

    # -- WAL flips: typed error or torn-tail truncation, never silence --
    for region in ("header", "payload"):
        directory = tempfile.mkdtemp(prefix=f"bitflip-wal-{region}-")
        try:
            journalled.clear()
            build(directory)
            segments = list_segments(directory)
            # The tail segment is the one recovery always scans; flips
            # in fully-covered older segments are legitimately never
            # read, so they would not exercise the detection contract.
            if not segments or os.path.getsize(segments[-1][1]) == 0:
                raise CrashFuzzFailure(
                    "bit-flip phase needs a non-empty WAL tail; choose an "
                    "op count that leaves records after the last "
                    "checkpoint")
            path = segments[-1][1]
            scan = scan_wal(path)
            target_seq, _ = scan.records[rng.randrange(len(scan.records))]
            # Locate the record's frame: replay offsets deterministically.
            offset = 0
            data_size = os.path.getsize(path)
            from repro.durability.wal import RECORD_HEADER, encode_record
            for seq, op in scan.records:
                record = encode_record(seq, op)
                if seq == target_seq:
                    if region == "header":
                        flip_offset = offset + rng.randrange(
                            RECORD_HEADER.size)
                    else:
                        flip_offset = offset + RECORD_HEADER.size + \
                            rng.randrange(len(record) - RECORD_HEADER.size)
                    break
                offset += len(record)
            flip_byte(path, flip_offset, 1 << rng.randrange(8))
            flips += 1
            try:
                with DurableTCIndex.open(directory, engine=engine) as store:
                    recovery = store.recovery_report
                    # Open succeeded: legal only if the flip surfaced as
                    # damage recovery repaired (torn tail / skipped
                    # generation) AND the surviving prefix is exact.
                    if not recovery.corruption_detected:
                        raise CrashFuzzFailure(
                            f"flip at {path}:{flip_offset} ({region}) was "
                            f"absorbed silently")
                    _verify_against_prefix(store, journalled,
                                           store.recovery_report.last_seq,
                                           f"bitflip-wal-{region}")
            except CorruptFileError:
                pass  # the typed-error arm of the contract
        finally:
            shutil.rmtree(directory, ignore_errors=True)
    if report is not None:
        report.bit_flips += flips
    return flips


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def crash_sweep(*, ops: int = 500, seed: int = 7,
                engine: str = "interval", fsync_every: int = 1,
                occurrences_per_point: int = 2,
                bit_flips: bool = True) -> CrashFuzzReport:
    """Kill at every registered crash point; verify recovery every time.

    For each point in :data:`CRASH_POINTS` the stream runs to the 1st,
    then spaced later occurrences (``occurrences_per_point`` in total),
    so crashes land both early (small checkpoints) and deep (rotation,
    fallback).  Raises :class:`CrashFuzzFailure` if any registered point
    is never reached by the stream, or on any recovery contract
    violation.
    """
    stream = generate_ops(ops, seed=seed)
    report = CrashFuzzReport(seed=seed, ops=ops, engine=engine,
                             fsync_every=fsync_every)

    # Which points does a clean run visit, and how often?
    probe = FaultyFS(crash_at=None)
    _run_clean_probe(stream, engine=engine, fsync_every=fsync_every,
                     shim=probe)
    for point in CRASH_POINTS:
        reachable = probe.hits.get(point, 0)
        if not reachable:
            report.points_never_reached.append(point)
            continue
        picks = {1}
        if occurrences_per_point > 1 and reachable > 1:
            step = max(1, reachable // occurrences_per_point)
            picks.update(range(1 + step, reachable + 1, step))
        for occurrence in sorted(picks)[:occurrences_per_point]:
            crashed = run_crash_stream(
                stream, crash_at=point, occurrence=occurrence,
                engine=engine, fsync_every=fsync_every,
                torn_seed=seed * 1000 + occurrence, report=report)
            if occurrence == 1 and not crashed:
                raise CrashFuzzFailure(
                    f"point {point!r} was reachable in the probe but the "
                    f"crash run never hit it")
    if report.points_never_reached:
        raise CrashFuzzFailure(
            "crash sweep is not exhaustive; never reached: "
            f"{report.points_never_reached} — extend the op stream or "
            f"checkpoint cadence")
    if bit_flips:
        run_bit_flips(stream, engine=engine, seed=seed, report=report)
    return report


def _run_clean_probe(ops: List[list], *, engine: str, fsync_every: int,
                     shim: FaultyFS) -> None:
    """Run the full stream under a non-crashing shim to count point hits."""
    from repro.durability import DurableTCIndex
    directory = tempfile.mkdtemp(prefix="crashprobe-")
    try:
        store = DurableTCIndex.open(directory, engine=engine,
                                    fsync_every=fsync_every, fs=shim)
        for op in ops:
            _store_apply(store, op)
        store.close()
    finally:
        shutil.rmtree(directory, ignore_errors=True)
