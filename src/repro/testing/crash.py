"""Crash files: serialised minimal repros that pytest auto-replays.

When a fuzz run fails, the shrunk trace is written as a small JSON file.
``tests/testing/test_crash_replay.py`` globs ``tests/crashes/*.json``
and replays each one, so every bug the fuzzer ever found becomes a
permanent regression test with zero extra wiring.

Replay semantics depend on whether the crash records an injected fault:

* ``fault: null`` — a *real* bug was recorded.  Replay asserts the trace
  now **passes**: the file documents the repro and guards the fix.
* ``fault: "<name>"`` — a harness self-test artefact produced by
  mutation testing.  Replay re-installs the named bug and asserts the
  trace still **fails**, proving the catch/shrink/replay pipeline works
  end to end.

File layout::

    {
      "tool": "repro-fuzz",
      "error": "...",            # message of the recorded failure
      "step": 12, "op": [...],   # where it fired
      "engines": [...],          # differential matrix to replay with
      "audit_every": 1, "check_every": 50,
      "shrink": {"replays": 93, "ops": [480, 6], "seed_arcs": [41, 2]},
      "trace": { ... }           # repro.testing.fuzzer.Trace.to_dict()
    }
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.testing.fuzzer import (
    DEFAULT_ENGINES,
    FuzzRunner,
    FuzzReport,
    Trace,
    TraceFailure,
)
from repro.testing.shrink import ShrinkResult

#: Where the pytest harness looks for crash files, relative to the repo root.
DEFAULT_CRASH_DIR = os.path.join("tests", "crashes")


def crash_payload(failure: TraceFailure, *,
                  engines: Sequence[str] = DEFAULT_ENGINES,
                  audit_every: int = 1, check_every: int = 50,
                  shrink: Optional[ShrinkResult] = None) -> dict:
    """The JSON-able crash-file dictionary for one failure."""
    payload = {
        "tool": "repro-fuzz",
        "error": str(failure),
        "cause": type(failure.cause).__name__,
        "step": failure.step,
        "op": list(failure.op) if failure.op is not None else None,
        "engines": list(engines),
        "audit_every": audit_every,
        "check_every": check_every,
        "trace": failure.trace.to_dict(),
    }
    if shrink is not None:
        payload["shrink"] = {
            "replays": shrink.replays,
            "ops": [shrink.ops_before, shrink.ops_after],
            "seed_arcs": [shrink.arcs_before, shrink.arcs_after],
        }
    return payload


def save_crash(failure: TraceFailure, directory: str = DEFAULT_CRASH_DIR, *,
               engines: Sequence[str] = DEFAULT_ENGINES,
               audit_every: int = 1, check_every: int = 50,
               shrink: Optional[ShrinkResult] = None) -> str:
    """Write a crash file; the name is content-addressed for stability."""
    payload = crash_payload(failure, engines=engines,
                            audit_every=audit_every, check_every=check_every,
                            shrink=shrink)
    canonical = json.dumps(payload["trace"], sort_keys=True)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:10]
    cause = payload["cause"].lower()
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"crash-{cause}-{digest}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_crash(path: str) -> dict:
    """Read a crash file; ``result["trace"]`` is a :class:`Trace`."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("tool") != "repro-fuzz":
        raise ReproError(f"{path} is not a repro-fuzz crash file")
    payload["trace"] = Trace.from_dict(payload["trace"])
    return payload


def replay_crash(path: str) -> Tuple[Optional[TraceFailure],
                                     Optional[FuzzReport]]:
    """Replay a crash file with its recorded settings and fault.

    Returns ``(failure, None)`` when the trace still fails, or
    ``(None, report)`` when it now passes.
    """
    from repro.testing.faults import injected_fault
    payload = load_crash(path)
    trace: Trace = payload["trace"]
    runner = FuzzRunner(
        trace,
        engines=payload.get("engines", DEFAULT_ENGINES),
        audit_every=payload.get("audit_every", 1),
        check_every=payload.get("check_every", 50))
    with injected_fault(trace.fault):
        try:
            report = runner.run()
        except TraceFailure as failure:
            return failure, None
    return None, report
