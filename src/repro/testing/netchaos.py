"""A seeded TCP chaos proxy: the network analogue of ``FaultyFS``.

:class:`ChaosProxy` sits between a client and a
:class:`~repro.server.app.ReachabilityServer`, relaying bytes while
injecting the failure modes real networks produce:

* **latency** — every relayed chunk waits a seeded uniform delay;
* **bandwidth caps** — chunks are metered to a configured bytes/sec;
* **partial writes** — chunks are split at arbitrary offsets, so frame
  boundaries land mid-read on the far side;
* **stalled reads** — the relay occasionally freezes for a while, long
  enough to trip per-call timeouts without killing the connection;
* **mid-frame resets** — a random *prefix* of a chunk is delivered and
  then the connection is aborted (RST), leaving the peer holding a
  truncated frame;
* **connection drops** — new connections are severed immediately.

Every decision draws from a :class:`random.Random` seeded by
``(config.seed, connection_number)``, so a failing run replays exactly
— the same property the differential fuzzer relies on everywhere else.
The proxy never rewrites bytes: payloads that survive are delivered
intact and in order per direction, which is what lets the fuzzer's
``server-chaos`` engine demand oracle-exact answers from every call
that completes.

Usage::

    proxy = await ChaosProxy.create(server_host, server_port,
                                    ChaosConfig(seed=7, reset_prob=0.05))
    client = await ReachabilityClient.connect(
        proxy.host, proxy.port, call_timeout=2.0,
        retry=RetryPolicy(attempts=8))
    ...
    await proxy.close()
"""

from __future__ import annotations

import asyncio
import random
from typing import Optional, Tuple

__all__ = ["ChaosConfig", "ChaosProxy"]

_CHUNK = 1 << 16


class ChaosConfig:
    """Knobs for one proxy.  All probabilities are per *chunk* (one
    upstream read) except ``drop_prob``, which is per connection."""

    __slots__ = ("seed", "latency_ms", "bandwidth_bps",
                 "partial_write_prob", "partial_write_max",
                 "stall_prob", "stall_ms", "reset_prob", "drop_prob")

    def __init__(self, *, seed: int = 0,
                 latency_ms: Tuple[float, float] = (0.0, 0.0),
                 bandwidth_bps: int = 0,
                 partial_write_prob: float = 0.0,
                 partial_write_max: int = 64,
                 stall_prob: float = 0.0,
                 stall_ms: Tuple[float, float] = (5.0, 25.0),
                 reset_prob: float = 0.0,
                 drop_prob: float = 0.0) -> None:
        self.seed = seed
        self.latency_ms = latency_ms
        self.bandwidth_bps = bandwidth_bps
        self.partial_write_prob = partial_write_prob
        self.partial_write_max = partial_write_max
        self.stall_prob = stall_prob
        self.stall_ms = stall_ms
        self.reset_prob = reset_prob
        self.drop_prob = drop_prob

    def rng_for(self, connection: int) -> random.Random:
        """The deterministic RNG governing one connection's fate."""
        return random.Random(f"netchaos:{self.seed}:{connection}")


class _Link:
    """One proxied connection: a client leg, a server leg, two pumps."""

    __slots__ = ("client_writer", "server_writer", "tasks")

    def __init__(self, client_writer, server_writer) -> None:
        self.client_writer = client_writer
        self.server_writer = server_writer
        self.tasks = []

    def abort(self) -> None:
        """RST both legs — no FIN, no lingering close handshake."""
        for writer in (self.client_writer, self.server_writer):
            transport = writer.transport
            if transport is not None:
                transport.abort()


class ChaosProxy:
    """Seeded fault-injecting TCP relay in front of one server."""

    def __init__(self, upstream_host: str, upstream_port: int,
                 config: Optional[ChaosConfig] = None) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.config = config if config is not None else ChaosConfig()
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._links: set = set()
        self._conn_counter = 0
        self._closed = False
        self.stats = {"connections": 0, "dropped": 0, "resets": 0,
                      "stalls": 0, "splits": 0, "bytes_up": 0,
                      "bytes_down": 0}

    @classmethod
    async def create(cls, upstream_host: str, upstream_port: int,
                     config: Optional[ChaosConfig] = None, *,
                     host: str = "127.0.0.1",
                     port: int = 0) -> "ChaosProxy":
        proxy = cls(upstream_host, upstream_port, config)
        await proxy.start(host, port)
        return proxy

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, host, port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def close(self) -> None:
        """Stop accepting, sever every live connection, join the pumps."""
        self._closed = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.sever_all()
        for link in list(self._links):
            for task in link.tasks:
                task.cancel()
        for link in list(self._links):
            for task in link.tasks:
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        self._links.clear()

    def sever_all(self) -> None:
        """Abort every live proxied connection (a partition, now)."""
        for link in list(self._links):
            link.abort()

    # ------------------------------------------------------------------
    # relaying
    # ------------------------------------------------------------------
    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        conn = self._conn_counter
        self._conn_counter += 1
        self.stats["connections"] += 1
        rng = self.config.rng_for(conn)
        if self._closed or rng.random() < self.config.drop_prob:
            self.stats["dropped"] += 1
            transport = client_writer.transport
            if transport is not None:
                transport.abort()
            return
        try:
            server_reader, server_writer = await asyncio.open_connection(
                self.upstream_host, self.upstream_port)
        except OSError:
            transport = client_writer.transport
            if transport is not None:
                transport.abort()
            return
        link = _Link(client_writer, server_writer)
        self._links.add(link)
        loop = asyncio.get_running_loop()
        # Each direction gets an independent but seeded RNG stream, so
        # the two pumps cannot race each other into nondeterminism.
        link.tasks = [
            loop.create_task(self._pump(
                client_reader, server_writer, link,
                self.config.rng_for(conn * 2 + 1), "bytes_up")),
            loop.create_task(self._pump(
                server_reader, client_writer, link,
                self.config.rng_for(conn * 2 + 2), "bytes_down")),
        ]
        try:
            await asyncio.gather(*link.tasks, return_exceptions=True)
        finally:
            self._links.discard(link)
            for writer in (client_writer, server_writer):
                try:
                    writer.close()
                except Exception:  # noqa: BLE001 - already aborted
                    pass

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, link: _Link,
                    rng: random.Random, byte_key: str) -> None:
        config = self.config
        try:
            while True:
                chunk = await reader.read(_CHUNK)
                if not chunk:
                    break
                low, high = config.latency_ms
                if high > 0:
                    await asyncio.sleep(rng.uniform(low, high) / 1000.0)
                if config.stall_prob and rng.random() < config.stall_prob:
                    self.stats["stalls"] += 1
                    s_low, s_high = config.stall_ms
                    await asyncio.sleep(rng.uniform(s_low, s_high)
                                        / 1000.0)
                if config.bandwidth_bps > 0:
                    await asyncio.sleep(len(chunk) / config.bandwidth_bps)
                if config.reset_prob and rng.random() < config.reset_prob:
                    # Deliver a truncated prefix, then RST: the far side
                    # is left mid-frame with no clean EOF to excuse it.
                    prefix = rng.randrange(len(chunk))
                    if prefix and not writer.is_closing():
                        writer.write(chunk[:prefix])
                        self.stats[byte_key] += prefix
                        try:
                            await writer.drain()
                        except OSError:
                            pass
                    self.stats["resets"] += 1
                    link.abort()
                    return
                if writer.is_closing():
                    return
                if config.partial_write_prob and \
                        rng.random() < config.partial_write_prob:
                    self.stats["splits"] += 1
                    offset = 0
                    while offset < len(chunk):
                        step = rng.randint(1, config.partial_write_max)
                        writer.write(chunk[offset:offset + step])
                        await writer.drain()
                        offset += step
                else:
                    writer.write(chunk)
                    await writer.drain()
                self.stats[byte_key] += len(chunk)
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            if not writer.is_closing():
                try:
                    writer.write_eof()
                except (OSError, RuntimeError):
                    pass
