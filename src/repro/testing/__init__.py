"""Differential fuzzing and invariant auditing for the closure engines.

The Section 4 update algorithms (gap claiming, subsumption-cut-off
propagation, subtree re-hang, renumbering) are the most intricate code in
the repository, and :class:`~repro.core.frozen.FrozenTCIndex` must stay
bit-identical to the mutable index across arbitrary update -> refreeze
cycles.  This package makes "prove that" a first-class, reusable
subsystem instead of scattered per-module property tests:

* :mod:`repro.testing.oracle` — an independent set-based transitive
  closure (:class:`SetClosureOracle`) plus a registry of every exact
  engine, so one call cross-checks them all against ground truth;
* :mod:`repro.testing.invariants` — :func:`audit_index` checks the
  paper-level structural properties (Lemma 1 tree intervals, postorder
  monotonicity, subsumption-freeness, gap accounting, laminarity) after
  every step;
* :mod:`repro.testing.fuzzer` — seeded, replayable operation traces of
  mixed mutations and freeze/query interleavings, executed under the
  audits and differential checks;
* :mod:`repro.testing.shrink` — delta-debugging minimisation of a
  failing trace to a small repro;
* :mod:`repro.testing.crash` — ``.json`` crash files that the pytest
  harness auto-replays from ``tests/crashes/``;
* :mod:`repro.testing.faults` — named, deliberately injected bugs used
  to mutation-test the harness itself, plus the :class:`FaultyFS`
  crash-injection filesystem shim and the :data:`CRASH_POINTS` it aims
  at;
* :mod:`repro.testing.crashfuzz` — the crash-point sweep: kill the
  durable store at every registered point and prove recovery exact
  against the oracle.

Entry points: ``repro fuzz --ops N --seed S`` and ``repro crash-fuzz``
on the command line, or :func:`repro.testing.fuzzer.fuzz` /
:func:`repro.testing.crashfuzz.crash_sweep` from Python.
"""

from repro.testing.crash import (
    load_crash,
    replay_crash,
    save_crash,
)
from repro.testing.crashfuzz import (
    CrashFuzzFailure,
    CrashFuzzReport,
    crash_sweep,
)
from repro.testing.faults import (
    CRASH_POINTS,
    FAULTS,
    FaultyFS,
    flip_byte,
    injected_fault,
)
from repro.testing.fuzzer import (
    DEFAULT_ENGINES,
    FuzzReport,
    FuzzRunner,
    Trace,
    TraceFailure,
    fuzz,
)
from repro.testing.invariants import InvariantViolation, audit_index
from repro.testing.oracle import (
    DifferentialMismatch,
    ENGINE_FACTORIES,
    SetClosureOracle,
    build_engines,
    compare_engine,
)
from repro.testing.shrink import shrink_trace

__all__ = [
    "CRASH_POINTS",
    "CrashFuzzFailure",
    "CrashFuzzReport",
    "DEFAULT_ENGINES",
    "DifferentialMismatch",
    "ENGINE_FACTORIES",
    "FAULTS",
    "FaultyFS",
    "FuzzReport",
    "FuzzRunner",
    "InvariantViolation",
    "SetClosureOracle",
    "Trace",
    "TraceFailure",
    "audit_index",
    "build_engines",
    "compare_engine",
    "crash_sweep",
    "flip_byte",
    "fuzz",
    "injected_fault",
    "load_crash",
    "replay_crash",
    "save_crash",
    "shrink_trace",
]
