"""Differential fuzzing and invariant auditing for the closure engines.

The Section 4 update algorithms (gap claiming, subsumption-cut-off
propagation, subtree re-hang, renumbering) are the most intricate code in
the repository, and :class:`~repro.core.frozen.FrozenTCIndex` must stay
bit-identical to the mutable index across arbitrary update -> refreeze
cycles.  This package makes "prove that" a first-class, reusable
subsystem instead of scattered per-module property tests:

* :mod:`repro.testing.oracle` — an independent set-based transitive
  closure (:class:`SetClosureOracle`) plus a registry of every exact
  engine, so one call cross-checks them all against ground truth;
* :mod:`repro.testing.invariants` — :func:`audit_index` checks the
  paper-level structural properties (Lemma 1 tree intervals, postorder
  monotonicity, subsumption-freeness, gap accounting, laminarity) after
  every step;
* :mod:`repro.testing.fuzzer` — seeded, replayable operation traces of
  mixed mutations and freeze/query interleavings, executed under the
  audits and differential checks;
* :mod:`repro.testing.shrink` — delta-debugging minimisation of a
  failing trace to a small repro;
* :mod:`repro.testing.crash` — ``.json`` crash files that the pytest
  harness auto-replays from ``tests/crashes/``;
* :mod:`repro.testing.faults` — named, deliberately injected bugs used
  to mutation-test the harness itself.

Entry points: ``repro fuzz --ops N --seed S`` on the command line, or
:func:`repro.testing.fuzzer.fuzz` from Python.
"""

from repro.testing.crash import (
    load_crash,
    replay_crash,
    save_crash,
)
from repro.testing.faults import FAULTS, injected_fault
from repro.testing.fuzzer import (
    DEFAULT_ENGINES,
    FuzzReport,
    FuzzRunner,
    Trace,
    TraceFailure,
    fuzz,
)
from repro.testing.invariants import InvariantViolation, audit_index
from repro.testing.oracle import (
    DifferentialMismatch,
    ENGINE_FACTORIES,
    SetClosureOracle,
    build_engines,
    compare_engine,
)
from repro.testing.shrink import shrink_trace

__all__ = [
    "DEFAULT_ENGINES",
    "DifferentialMismatch",
    "ENGINE_FACTORIES",
    "FAULTS",
    "FuzzReport",
    "FuzzRunner",
    "InvariantViolation",
    "SetClosureOracle",
    "Trace",
    "TraceFailure",
    "audit_index",
    "build_engines",
    "compare_engine",
    "fuzz",
    "injected_fault",
    "load_crash",
    "replay_crash",
    "save_crash",
    "shrink_trace",
]
