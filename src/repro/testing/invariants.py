"""Structural invariant audits for a live :class:`IntervalTCIndex`.

The paper's correctness argument rests on a handful of structural
properties that every update must preserve.  :func:`audit_index` checks
them all and raises :class:`InvariantViolation` naming the first one
broken:

* **bookkeeping** — ``postorder`` / ``node_of_number`` / ``used_numbers``
  are mutually consistent bijections over the graph's nodes, and the
  tree cover spans the graph (``IntervalTCIndex.check_invariants``);
* **postorder monotonicity** — every node's number is strictly below its
  tree parent's, and siblings in tree preorder (ascending interval
  ``lo``) carry strictly increasing numbers;
* **Lemma 1** — each node's tree interval covers *exactly* the live
  postorder numbers of its tree subtree, with its own number as the
  upper end-point;
* **laminarity** — tree intervals form a laminar family (children nest
  strictly inside parents, siblings are disjoint), which the gap-claiming
  insertion of Section 4.1 relies on;
* **subsumption-freeness** — no node retains an interval subsumed by
  another (Section 3.2's elimination rule; ``IntervalSet``'s strictly
  ascending end-point invariant);
* **self-coverage** — every node's interval set covers its own number
  and its whole tree interval (reflexivity plus tree reachability);
* **gap accounting** — the free ranges reported by
  :func:`repro.core.updates.free_ranges_under` lie inside the parent's
  tree interval, contain no live number, and are disjoint from every
  child's tree interval (integer numbering only; the fractional scheme
  has no integer gap ledger).

The audit is O(n log n + total intervals + total subtree sizes) — meant
to run after *every* fuzz step on the small graphs the fuzzer drives,
not on production indexes.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import TYPE_CHECKING, Dict, List, Set

from repro.core import updates as _updates
from repro.core.labeling import check_laminar
from repro.core.tree_cover import VIRTUAL_ROOT
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.index import IntervalTCIndex


class InvariantViolation(ReproError):
    """A paper-level structural invariant does not hold."""

    def __init__(self, invariant: str, message: str) -> None:
        super().__init__(f"[{invariant}] {message}")
        self.invariant = invariant


def audit_index(index: "IntervalTCIndex") -> int:
    """Run every structural audit; return the number of checks performed.

    Raises :class:`InvariantViolation` on the first broken property; the
    index's own bookkeeping failures surface under the ``bookkeeping``
    invariant name.
    """
    checks = 0
    try:
        index.check_invariants()
    except ReproError as error:
        raise InvariantViolation("bookkeeping", str(error)) from None
    checks += 1
    checks += check_postorder_monotone(index)
    checks += check_tree_intervals(index)
    checks += check_laminar_family(index)
    checks += check_subsumption_free(index)
    checks += check_self_coverage(index)
    if index.numbering == "integer":
        checks += check_gap_accounting(index)
    return checks


# ----------------------------------------------------------------------
# individual audits (exported for targeted tests)
# ----------------------------------------------------------------------
def check_postorder_monotone(index: "IntervalTCIndex") -> int:
    """Numbers rise strictly along sibling preorder and fall below parents."""
    checks = 0
    for node, number in index.postorder.items():
        parent = index.cover.parent.get(node)
        if parent is None:
            raise InvariantViolation(
                "postorder", f"node {node!r} is missing from the tree cover")
        if parent is not VIRTUAL_ROOT and number >= index.postorder[parent]:
            raise InvariantViolation(
                "postorder",
                f"node {node!r} (number {number}) is not below its tree "
                f"parent {parent!r} (number {index.postorder[parent]})")
        checks += 1
    for parent in list(index.cover.children):
        siblings = sorted(index.cover.tree_children(parent),
                          key=lambda child: index.tree_interval[child].lo)
        for left, right in zip(siblings, siblings[1:]):
            checks += 1
            if index.postorder[left] >= index.postorder[right]:
                raise InvariantViolation(
                    "postorder",
                    f"siblings {left!r}, {right!r} under {parent!r} are not "
                    f"strictly increasing in preorder: "
                    f"{index.postorder[left]} >= {index.postorder[right]}")
    return checks


def _subtree_numbers(index: "IntervalTCIndex") -> Dict:
    """``node -> set of live postorder numbers in its tree subtree``."""
    result: Dict = {}
    # Iterative post-order over the spanning forest, accumulating child sets.
    stack: List[tuple] = [(root, False)
                          for root in index.cover.tree_children(VIRTUAL_ROOT)]
    while stack:
        node, expanded = stack.pop()
        if not expanded:
            stack.append((node, True))
            stack.extend((child, False)
                         for child in index.cover.tree_children(node))
            continue
        numbers: Set = {index.postorder[node]}
        for child in index.cover.tree_children(node):
            numbers |= result[child]
        result[node] = numbers
    return result


def check_tree_intervals(index: "IntervalTCIndex") -> int:
    """Lemma 1: the tree interval covers exactly the subtree's live numbers."""
    checks = 0
    used = index.used_numbers
    subtree = _subtree_numbers(index)
    for node, interval in index.tree_interval.items():
        checks += 1
        number = index.postorder[node]
        if interval.hi != number:
            raise InvariantViolation(
                "lemma1",
                f"tree interval {interval} of {node!r} does not end at the "
                f"node's own number {number}")
        if interval.lo > interval.hi:
            raise InvariantViolation(
                "lemma1", f"tree interval {interval} of {node!r} is empty")
        start = bisect_left(used, interval.lo)
        stop = bisect_right(used, interval.hi)
        live_inside = set(used[start:stop])
        if live_inside != subtree[node]:
            raise InvariantViolation(
                "lemma1",
                f"tree interval {interval} of {node!r} covers live numbers "
                f"{sorted(live_inside)} but the subtree holds "
                f"{sorted(subtree[node])}")
    return checks


def check_laminar_family(index: "IntervalTCIndex") -> int:
    """Tree intervals nest or are disjoint — never partially overlap."""
    try:
        check_laminar(index)  # duck-typed: only reads .tree_interval
    except ReproError as error:
        raise InvariantViolation("laminar", str(error)) from None
    return 1


def check_subsumption_free(index: "IntervalTCIndex") -> int:
    """No node's interval set retains a subsumed interval (Section 3.2)."""
    checks = 0
    for node, interval_set in index.intervals.items():
        checks += 1
        try:
            interval_set.check_invariants()
        except ReproError as error:
            raise InvariantViolation(
                "subsumption", f"interval set of {node!r}: {error}") from None
    return checks


def check_self_coverage(index: "IntervalTCIndex") -> int:
    """Every interval set covers its owner's number and whole tree interval."""
    checks = 0
    used = index.used_numbers
    for node, interval_set in index.intervals.items():
        checks += 1
        number = index.postorder[node]
        if not interval_set.covers(number):
            raise InvariantViolation(
                "self-coverage",
                f"node {node!r} does not cover its own number {number}")
        tree = index.tree_interval[node]
        start = bisect_left(used, tree.lo)
        stop = bisect_right(used, tree.hi)
        for live in used[start:stop]:
            if not interval_set.covers(live):
                raise InvariantViolation(
                    "self-coverage",
                    f"node {node!r} does not cover live number {live} inside "
                    f"its own tree interval {tree}")
    return checks


def check_gap_accounting(index: "IntervalTCIndex") -> int:
    """Free ranges are truly free: in-bounds, unused, outside child intervals."""
    checks = 0
    used = index.used_numbers
    # Looked up through the module so injected faults (and future
    # monkeypatches) on the ledger are audited, not bypassed.
    for parent in index.postorder:
        ranges = _updates.free_ranges_under(index, parent)
        tree = index.tree_interval[parent]
        number = index.postorder[parent]
        child_intervals = [index.tree_interval[child]
                           for child in index.cover.tree_children(parent)]
        for lo, hi in ranges:
            checks += 1
            if lo > hi:
                raise InvariantViolation(
                    "gap", f"empty free range ({lo},{hi}) under {parent!r}")
            if lo < tree.lo or hi >= number:
                raise InvariantViolation(
                    "gap",
                    f"free range ({lo},{hi}) under {parent!r} leaves its tree "
                    f"interval {tree} (own number {number})")
            if bisect_right(used, hi) - bisect_left(used, lo) != 0:
                raise InvariantViolation(
                    "gap",
                    f"free range ({lo},{hi}) under {parent!r} contains live "
                    f"postorder numbers")
            for child_interval in child_intervals:
                if lo <= child_interval.hi and child_interval.lo <= hi:
                    raise InvariantViolation(
                        "gap",
                        f"free range ({lo},{hi}) under {parent!r} intersects "
                        f"child tree interval {child_interval}")
    return checks
