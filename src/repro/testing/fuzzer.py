"""Seeded, replayable operation fuzzing over the interval-index lifecycle.

A fuzz run is a **trace**: a seed DAG (drawn from a registered workload
family) plus a list of concrete operations — node/arc insertions and
deletions, interval merging, renumbering, freeze/query interleavings.
Traces are plain data (:class:`Trace`), serialise to JSON, and replay
deterministically, which is what makes shrinking and crash files work.

:class:`FuzzRunner` executes a trace step by step against the live
:class:`~repro.core.index.IntervalTCIndex` while mirroring every
mutation into an independent :class:`~repro.testing.oracle.SetClosureOracle`.
After each step it:

* audits the paper-level structural invariants
  (:func:`repro.testing.invariants.audit_index`) every ``audit_every``
  applied operations;
* asserts that any live frozen view was staled by the mutation and
  refuses to answer (the freeze-contract check);
* on ``query`` ops, compares the index (and any fresh frozen view, and
  the live hybrid mirror) against the oracle;
* on ``freeze`` ops, compiles a frozen view and compares its full
  successor/predecessor answers against the oracle;
* mirrors every node/arc mutation into a live
  :class:`~repro.core.hybrid.HybridTCIndex` with a deliberately tiny
  compaction threshold, so freeze→mutate→query→compact interleavings
  are exercised organically; ``compact`` ops fold its delta on demand;
* every ``check_every`` applied operations (and once at the end), runs
  the full differential matrix: the live index, a fresh frozen
  compilation, the hybrid mirror, a from-scratch rebuild, and every
  requested baseline engine, all rebuilt from the oracle's private arc
  set.

Any discrepancy raises :class:`TraceFailure` carrying the exact trace
prefix that reproduces it — feed that to
:func:`repro.testing.shrink.shrink_trace` and
:func:`repro.testing.crash.save_crash`.

:func:`fuzz` generates and executes a trace in one pass from a single
``random.Random`` seed; operations are recorded *concretely* (actual
node labels), so replay needs no randomness at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.index import IntervalTCIndex
from repro.errors import IndexStateError, ReproError
from repro.graph.digraph import DiGraph
from repro.testing.invariants import InvariantViolation, audit_index
from repro.testing.oracle import (
    BASELINE_GROUP,
    ENGINE_FACTORIES,
    DifferentialMismatch,
    SetClosureOracle,
    build_engines,
    compare_engine,
)

#: Operation kinds that mutate the index (and must stale frozen views).
MUTATING_KINDS = frozenset(
    {"add_node", "add_arc", "remove_arc", "remove_node", "merge", "renumber"})

#: Every op kind a trace may contain.  ``compact`` folds the live hybrid
#: mirror's delta overlay — a no-op at the query level, so not mutating.
OP_KINDS = MUTATING_KINDS | {"freeze", "query", "compact"}

#: Default differential matrix: frozen + live hybrid mirror + rebuilds +
#: every baseline (``hybrid-delta`` rebuilds with a live overlay) + the
#: label engines (``hoplabel``; ``chain`` rides in via ``baselines``).
DEFAULT_ENGINES: Tuple[str, ...] = ("frozen", "hybrid", "rebuild",
                                    "rebuild-merged", "rebuild-vectorized",
                                    "rtcf", "baselines", "hybrid-delta",
                                    "hoplabel")

#: Compaction threshold of the live hybrid mirror: small enough that a
#: fuzz run crosses it many times, so freeze→mutate→query→compact
#: interleavings happen organically.
HYBRID_MIRROR_MAX_DELTA = 12


def expand_engines(
        names: Sequence[str]) -> Tuple[Tuple[str, ...], bool, bool]:
    """Resolve engine names to (rebuild names, check_frozen, check_hybrid).

    ``"baselines"`` expands to every baseline engine, ``"all"`` to the
    whole registry; ``"interval"`` (the live index) is always implied and
    accepted for symmetry; ``"frozen"`` turns on the frozen-view checks
    and ``"hybrid"`` the live delta-overlay mirror.
    """
    rebuilds: List[str] = []
    check_frozen = False
    check_hybrid = False
    for name in names:
        if name == "interval":
            continue
        if name == "frozen":
            check_frozen = True
        elif name == "hybrid":
            check_hybrid = True
        elif name == "baselines":
            rebuilds.extend(group for group in BASELINE_GROUP
                            if group not in rebuilds)
        elif name == "all":
            check_frozen = True
            check_hybrid = True
            rebuilds.extend(group for group in ENGINE_FACTORIES
                            if group not in rebuilds)
        elif name in ENGINE_FACTORIES:
            if name not in rebuilds:
                rebuilds.append(name)
        else:
            raise ReproError(
                f"unknown engine {name!r}; known: interval, frozen, hybrid, "
                f"baselines, all, {sorted(ENGINE_FACTORIES)}")
    return tuple(rebuilds), check_frozen, check_hybrid


@dataclass
class Trace:
    """A replayable fuzz input: seed graph, settings, concrete operations."""

    seed: Optional[int]
    gap: int
    numbering: str
    seed_nodes: List[int]
    seed_arcs: List[Tuple[int, int]]
    ops: List[list] = field(default_factory=list)
    fault: Optional[str] = None
    note: str = ""

    FORMAT = 1

    def to_dict(self) -> dict:
        return {
            "format": self.FORMAT,
            "seed": self.seed,
            "gap": self.gap,
            "numbering": self.numbering,
            "fault": self.fault,
            "note": self.note,
            "seed_nodes": list(self.seed_nodes),
            "seed_arcs": [list(arc) for arc in self.seed_arcs],
            "ops": [list(op) for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        if data.get("format") != cls.FORMAT:
            raise ReproError(
                f"unsupported trace format {data.get('format')!r}")
        return cls(
            seed=data.get("seed"),
            gap=int(data["gap"]),
            numbering=data.get("numbering", "integer"),
            seed_nodes=list(data["seed_nodes"]),
            seed_arcs=[(arc[0], arc[1]) for arc in data["seed_arcs"]],
            ops=[list(op) for op in data["ops"]],
            fault=data.get("fault"),
            note=data.get("note", ""),
        )

    def prefix(self, length: int) -> "Trace":
        """A copy keeping only the first ``length`` operations."""
        return Trace(seed=self.seed, gap=self.gap, numbering=self.numbering,
                     seed_nodes=list(self.seed_nodes),
                     seed_arcs=list(self.seed_arcs),
                     ops=[list(op) for op in self.ops[:length]],
                     fault=self.fault, note=self.note)

    def referenced_nodes(self) -> set:
        """Every node label mentioned by an arc or an operation."""
        mentioned = set()
        for source, destination in self.seed_arcs:
            mentioned.add(source)
            mentioned.add(destination)
        for op in self.ops:
            kind = op[0]
            if kind == "add_node":
                mentioned.add(op[1])
                mentioned.update(op[2])
            elif kind in ("add_arc", "remove_arc", "query"):
                mentioned.add(op[1])
                mentioned.add(op[2])
            elif kind == "remove_node":
                mentioned.add(op[1])
        return mentioned


class TraceFailure(ReproError):
    """A trace step violated an invariant or a differential check.

    Carries the reproducing :attr:`trace` prefix (everything up to and
    including the failing op), the failing :attr:`step` index and
    :attr:`op`, and the underlying :attr:`cause`.
    """

    def __init__(self, trace: Trace, step: int, op: Optional[list],
                 cause: BaseException) -> None:
        self.trace = trace
        self.step = step
        self.op = op
        self.cause = cause
        if op is not None:
            where = f"op {step} {op!r}"
        elif step < 0:
            where = "seed build"
        else:
            where = "final check"
        super().__init__(f"{where}: [{type(cause).__name__}] {cause}")


class StalenessViolation(ReproError):
    """A mutation failed to stale (or a stale view failed to refuse)."""


@dataclass
class FuzzReport:
    """Counters summarising one completed (violation-free) run."""

    ops: int = 0
    applied: int = 0
    skipped: int = 0
    audits: int = 0
    audit_checks: int = 0
    differential_checks: int = 0
    freezes: int = 0
    compactions: int = 0
    queries: int = 0
    final_nodes: int = 0
    final_arcs: int = 0
    engines: str = ""
    violations: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class FuzzRunner:
    """Execute one :class:`Trace` under audits and differential checks."""

    def __init__(self, trace: Trace, *,
                 engines: Sequence[str] = DEFAULT_ENGINES,
                 audit_every: int = 1, check_every: int = 50) -> None:
        self.trace = trace
        self.rebuild_names, self.check_frozen, self.check_hybrid = \
            expand_engines(engines)
        self.audit_every = audit_every
        self.check_every = check_every
        live = ["interval"]
        if self.check_frozen:
            live.append("frozen")
        if self.check_hybrid:
            live.append("hybrid")
        self.report = FuzzReport(engines=",".join(
            live + list(self.rebuild_names)))
        self.index: Optional[IntervalTCIndex] = None
        self.oracle: Optional[SetClosureOracle] = None
        self.frozen = None
        self.hybrid = None
        self._step = -1

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Build the index and oracle from the trace's seed graph."""
        trace = self.trace
        graph = DiGraph(arcs=trace.seed_arcs, nodes=trace.seed_nodes)
        try:
            self.index = IntervalTCIndex.build(
                graph, gap=trace.gap, numbering=trace.numbering)
            self.oracle = SetClosureOracle(arcs=trace.seed_arcs,
                                           nodes=trace.seed_nodes)
            if self.check_hybrid:
                from repro.core.hybrid import HybridTCIndex
                self.hybrid = HybridTCIndex.build(
                    DiGraph(arcs=trace.seed_arcs, nodes=trace.seed_nodes),
                    gap=trace.gap, numbering=trace.numbering,
                    max_delta=HYBRID_MIRROR_MAX_DELTA)
            self._audit()
        except TraceFailure:
            raise
        except Exception as error:
            raise TraceFailure(trace.prefix(0), -1, None, error) from error

    def run(self) -> FuzzReport:
        """Replay the whole trace; return the report or raise TraceFailure."""
        if self.index is None:
            self.start()
        for position, op in enumerate(self.trace.ops):
            self.step(position, op)
        self.final_check()
        return self.report

    def step(self, position: int, op: list) -> bool:
        """Apply one op with all per-step checks; True when it applied."""
        self._step = position
        self.report.ops += 1
        try:
            applied = self._apply_checked(op)
        except TraceFailure:
            raise
        except Exception as error:
            raise TraceFailure(self.trace.prefix(position + 1), position, op,
                               error) from error
        if applied:
            self.report.applied += 1
        else:
            self.report.skipped += 1
        return applied

    def final_check(self) -> None:
        """Run the audit plus the full differential matrix once at the end."""
        try:
            self._audit()
            self._differential()
        except TraceFailure:
            raise
        except Exception as error:
            raise TraceFailure(self.trace.prefix(len(self.trace.ops)),
                               len(self.trace.ops), None, error) from error

    # ------------------------------------------------------------------
    # op application
    # ------------------------------------------------------------------
    def _apply_checked(self, op: list) -> bool:
        kind = op[0]
        if kind not in OP_KINDS:
            raise ReproError(f"unknown fuzz op kind {kind!r}")
        frozen_was_fresh = (self.frozen is not None
                            and not self.frozen.is_stale())
        applied = self._apply(op)
        if not applied:
            return False
        if kind in MUTATING_KINDS:
            if frozen_was_fresh:
                self._check_staled()
            if self.audit_every and \
                    self.report.applied % max(1, self.audit_every) == 0:
                self._audit()
            if self.check_every and \
                    self.report.applied % max(1, self.check_every) == 0:
                self._differential()
        return True

    def _apply(self, op: list) -> bool:
        kind = op[0]
        index, oracle = self.index, self.oracle
        if kind == "add_node":
            node, parents = op[1], list(op[2])
            if node in oracle or len(set(parents)) != len(parents) \
                    or any(parent not in oracle for parent in parents):
                return False
            index.add_node(node, parents=parents)
            oracle.add_node(node)
            for parent in parents:
                oracle.add_arc(parent, node)
            if self.hybrid is not None:
                self.hybrid.add_node(node, parents=parents)
            return True
        if kind == "add_arc":
            source, destination = op[1], op[2]
            if source not in oracle or destination not in oracle \
                    or source == destination \
                    or oracle.has_arc(source, destination) \
                    or oracle.reachable(destination, source):
                return False
            index.add_arc(source, destination)
            oracle.add_arc(source, destination)
            if self.hybrid is not None:
                self.hybrid.add_arc(source, destination)
            return True
        if kind == "remove_arc":
            source, destination = op[1], op[2]
            if not oracle.has_arc(source, destination):
                return False
            index.remove_arc(source, destination)
            oracle.remove_arc(source, destination)
            if self.hybrid is not None:
                self.hybrid.remove_arc(source, destination)
            return True
        if kind == "remove_node":
            node = op[1]
            if node not in oracle:
                return False
            index.remove_node(node)
            oracle.remove_node(node)
            if self.hybrid is not None:
                self.hybrid.remove_node(node)
            return True
        if kind == "merge":
            apply_merge(index)
            return True
        if kind == "renumber":
            index.renumber(int(op[1]))
            return True
        if kind == "freeze":
            self.frozen = index.freeze()
            self.report.freezes += 1
            if self.check_frozen:
                self.report.differential_checks += compare_engine(
                    "frozen", self.frozen, oracle, predecessors=True)
            return True
        if kind == "compact":
            if self.hybrid is None:
                return False
            self.hybrid.compact()
            self.report.compactions += 1
            return True
        if kind == "query":
            source, destination = op[1], op[2]
            if source not in oracle or destination not in oracle:
                return False
            self.report.queries += 1
            expected = oracle.reachable(source, destination)
            answer = index.reachable(source, destination)
            if answer != expected:
                raise DifferentialMismatch(
                    "interval",
                    f"reachable({source!r}, {destination!r}) = {answer}, "
                    f"oracle says {expected}")
            if self.check_frozen and self.frozen is not None \
                    and not self.frozen.is_stale():
                frozen_answer = self.frozen.reachable(source, destination)
                if frozen_answer != expected:
                    raise DifferentialMismatch(
                        "frozen",
                        f"reachable({source!r}, {destination!r}) = "
                        f"{frozen_answer}, oracle says {expected}")
            if self.hybrid is not None:
                hybrid_answer = self.hybrid.reachable(source, destination)
                if hybrid_answer != expected:
                    raise DifferentialMismatch(
                        "hybrid",
                        f"reachable({source!r}, {destination!r}) = "
                        f"{hybrid_answer}, oracle says {expected}")
            return True
        raise ReproError(f"unknown fuzz op kind {kind!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # checks
    # ------------------------------------------------------------------
    def _check_staled(self) -> None:
        """The freeze contract: every mutation stales every frozen view."""
        if not self.frozen.is_stale():
            raise StalenessViolation(
                "a mutation left a previously taken frozen view fresh: "
                "IntervalTCIndex._invalidate was not called")
        probe = next(iter(self.frozen.nodes()), None)
        if probe is None:  # pragma: no cover - empty frozen view
            return
        try:
            self.frozen.reachable(probe, probe)
        except IndexStateError:
            pass
        else:
            raise StalenessViolation(
                "a stale frozen view answered a query instead of raising "
                "IndexStateError")

    def _audit(self) -> None:
        self.report.audits += 1
        self.report.audit_checks += audit_index(self.index)

    def _differential(self) -> None:
        oracle = self.oracle
        self.report.differential_checks += compare_engine(
            "interval", self.index, oracle, predecessors=True)
        if self.check_frozen:
            fresh = self.index.freeze()
            self.report.differential_checks += compare_engine(
                "frozen", fresh, oracle, predecessors=True)
        if self.hybrid is not None:
            self.report.differential_checks += compare_engine(
                "hybrid", self.hybrid, oracle, predecessors=True)
        for name, engine in build_engines(oracle, self.rebuild_names).items():
            self.report.differential_checks += compare_engine(
                name, engine, oracle)
        self.report.final_nodes = len(oracle)
        self.report.final_arcs = len(oracle.arcs())


def apply_merge(index: IntervalTCIndex) -> None:
    """The 'interval merging' fuzz op: Section 3.2's optional coalescing.

    Applies :meth:`IntervalSet.merged` to every node's set and marks the
    index merged so later recomputations keep merging.  A mutation for
    staleness purposes: merged labels are a different representation, so
    frozen views must not survive it.
    """
    index.merge_intervals()


# ----------------------------------------------------------------------
# trace generation
# ----------------------------------------------------------------------
def _propose(rng: random.Random, runner: FuzzRunner, next_label: List[int],
             size_band: Tuple[int, int]) -> list:
    """Draw one concrete, currently-applicable operation."""
    oracle = runner.oracle
    nodes = sorted(oracle.nodes())
    if not nodes:
        label = next_label[0]
        next_label[0] += 1
        return ["add_node", label, []]
    low, high = size_band
    population = len(nodes)
    weights = {
        "add_node": 4 if population > high else 18,
        "add_arc": 16,
        "remove_tree_arc": 5,
        "remove_non_tree_arc": 6,
        "remove_node": 16 if population > high else (2 if population <= low
                                                     else 6),
        "merge": 3,
        "renumber": 2,
        "freeze": 7,
        "compact": 3,
        "query": 24,
    }
    kinds = list(weights)
    kind = rng.choices(kinds, weights=[weights[k] for k in kinds], k=1)[0]

    if kind == "add_node":
        budget = min(len(nodes), rng.choice((0, 1, 1, 1, 2, 2, 3)))
        parents = rng.sample(nodes, budget) if budget else []
        label = next_label[0]
        next_label[0] += 1
        return ["add_node", label, parents]
    if kind == "add_arc":
        for _ in range(10):
            source, destination = rng.sample(nodes, 2) if len(nodes) > 1 \
                else (nodes[0], nodes[0])
            if source == destination or oracle.has_arc(source, destination) \
                    or oracle.reachable(destination, source):
                continue
            return ["add_arc", source, destination]
        kind = "query"  # saturated graph: fall through to a query
    if kind in ("remove_tree_arc", "remove_non_tree_arc"):
        arcs = sorted(oracle.arcs())
        wanted_tree = kind == "remove_tree_arc"
        candidates = [arc for arc in arcs
                      if runner.index.cover.is_tree_arc(*arc) == wanted_tree]
        pool = candidates or arcs
        if pool:
            source, destination = rng.choice(pool)
            return ["remove_arc", source, destination]
        kind = "query"  # no arcs left to delete
    if kind == "remove_node":
        return ["remove_node", rng.choice(nodes)]
    if kind == "merge":
        return ["merge"]
    if kind == "renumber":
        return ["renumber", rng.randint(1, 12)]
    if kind == "freeze":
        return ["freeze"]
    if kind == "compact":
        return ["compact"]
    source = rng.choice(nodes)
    destination = rng.choice(nodes)
    return ["query", source, destination]


def _seed_graph(workload: str, num_nodes: int, degree: float,
                rng: random.Random) -> Tuple[List[int], List[Tuple[int, int]]]:
    """Draw a seed DAG and relabel its nodes to dense JSON-safe integers."""
    from repro.bench.workloads import make_workload
    graph = make_workload(workload, num_nodes, degree, seed=rng)
    relabel = {node: position for position, node in enumerate(graph.nodes())}
    nodes = sorted(relabel.values())
    arcs = [(relabel[source], relabel[destination])
            for source, destination in graph.arcs()]
    return nodes, arcs


def fuzz(*, num_ops: int, seed: Optional[int] = None, num_nodes: int = 24,
         degree: float = 1.8, gap: int = 8, numbering: str = "integer",
         workload: str = "uniform", engines: Sequence[str] = DEFAULT_ENGINES,
         audit_every: int = 1, check_every: int = 50,
         fault: Optional[str] = None) -> Tuple[Trace, FuzzReport]:
    """Generate and execute ``num_ops`` operations from one seed.

    Returns the (fully recorded) trace and the report.  On a violation,
    raises :class:`TraceFailure` whose ``trace`` attribute replays the
    failure — hand it to :func:`repro.testing.shrink.shrink_trace`.

    ``fault`` installs a named bug from :mod:`repro.testing.faults` for
    the duration of the run (mutation-testing the harness itself).
    """
    from repro.testing.faults import injected_fault
    rng = random.Random(seed)
    seed_nodes, seed_arcs = _seed_graph(workload, num_nodes, degree, rng)
    trace = Trace(seed=seed, gap=gap, numbering=numbering,
                  seed_nodes=seed_nodes, seed_arcs=seed_arcs, fault=fault,
                  note=f"fuzz(workload={workload!r}, nodes={num_nodes}, "
                       f"degree={degree})")
    runner = FuzzRunner(trace, engines=engines, audit_every=audit_every,
                        check_every=check_every)
    next_label = [max(seed_nodes, default=-1) + 1]
    size_band = (max(2, num_nodes // 3), max(8, 2 * num_nodes))
    with injected_fault(fault):
        runner.start()
        for position in range(num_ops):
            op = _propose(rng, runner, next_label, size_band)
            trace.ops.append(op)
            runner.step(position, op)
        runner.final_check()
    return trace, runner.report


def replay(trace: Trace, *, engines: Sequence[str] = DEFAULT_ENGINES,
           audit_every: int = 1, check_every: int = 50) -> FuzzReport:
    """Re-execute a recorded trace (with its fault, if any) from scratch."""
    from repro.testing.faults import injected_fault
    runner = FuzzRunner(trace, engines=engines, audit_every=audit_every,
                        check_every=check_every)
    with injected_fault(trace.fault):
        return runner.run()
