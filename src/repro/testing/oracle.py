"""Ground-truth closure and the cross-engine differential layer.

Every exact engine in the repository must answer reachability questions
identically.  The oracle layer provides the two halves of that check:

* :class:`SetClosureOracle` — an *independent* mirror of the graph under
  test.  It keeps its own adjacency sets (it never reads the index's
  ``DiGraph``, so a bug in the index's graph bookkeeping is caught too)
  and computes reachability by plain BFS with set closures, the style
  Jin & Wang use to validate reachability oracles.
* :data:`ENGINE_FACTORIES` — every from-scratch engine keyed by name, so
  a checkpoint can rebuild all of them from the oracle's arcs and compare
  them node by node via :func:`compare_engine`.

The oracle is deliberately slow and obvious: no intervals, no numbering,
no sharing with the code under test.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.graph.digraph import DiGraph, Node


class DifferentialMismatch(ReproError):
    """Two engines (or an engine and the oracle) disagreed on an answer."""

    def __init__(self, engine: str, message: str) -> None:
        super().__init__(f"[{engine}] {message}")
        self.engine = engine


class SetClosureOracle:
    """Set-based transitive closure over a private adjacency copy.

    Mutations mirror the index API (:meth:`add_node`, :meth:`add_arc`,
    :meth:`remove_arc`, :meth:`remove_node`); queries are reflexive like
    the paper's (:meth:`reachable`, :meth:`successors`,
    :meth:`predecessors`).  The full closure is cached and recomputed
    lazily after each mutation.
    """

    def __init__(self, arcs: Iterable[Tuple[Node, Node]] = (),
                 nodes: Iterable[Node] = ()) -> None:
        self._succ: Dict[Node, Set[Node]] = {}
        for node in nodes:
            self.add_node(node)
        for source, destination in arcs:
            self.add_arc(source, destination)
        self._closure: Optional[Dict[Node, FrozenSet[Node]]] = None

    # ------------------------------------------------------------------
    # mutations (mirror of the index API)
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, set())
        self._closure = None

    def add_arc(self, source: Node, destination: Node) -> None:
        if source == destination:
            raise ReproError("oracle rejects self-loops, like the paper")
        self.add_node(source)
        self.add_node(destination)
        self._succ[source].add(destination)
        self._closure = None

    def remove_arc(self, source: Node, destination: Node) -> None:
        self._succ[source].discard(destination)
        self._closure = None

    def remove_node(self, node: Node) -> None:
        self._succ.pop(node, None)
        for successors in self._succ.values():
            successors.discard(node)
        self._closure = None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def nodes(self) -> List[Node]:
        return list(self._succ)

    def arcs(self) -> List[Tuple[Node, Node]]:
        return [(source, destination) for source, targets in self._succ.items()
                for destination in targets]

    def has_arc(self, source: Node, destination: Node) -> bool:
        return source in self._succ and destination in self._succ[source]

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def as_digraph(self) -> DiGraph:
        """A fresh :class:`DiGraph` copy for rebuilding engines."""
        return DiGraph(arcs=self.arcs(), nodes=self.nodes())

    # ------------------------------------------------------------------
    # queries (reflexive, like the paper's convention)
    # ------------------------------------------------------------------
    def closure(self) -> Dict[Node, FrozenSet[Node]]:
        """``node -> frozenset(reachable nodes)``, including the node itself."""
        if self._closure is None:
            self._closure = {node: frozenset(self._bfs(node))
                             for node in self._succ}
        return self._closure

    def _bfs(self, start: Node) -> Set[Node]:
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for successor in self._succ[node]:
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)
        return seen

    def reachable(self, source: Node, destination: Node) -> bool:
        return destination in self.closure()[source]

    def successors(self, source: Node) -> FrozenSet[Node]:
        return self.closure()[source]

    def predecessors(self, destination: Node) -> Set[Node]:
        return {node for node, reach in self.closure().items()
                if destination in reach}


# ----------------------------------------------------------------------
# engine registry
# ----------------------------------------------------------------------
def _build_interval(graph: DiGraph):
    from repro.core.index import IntervalTCIndex
    return IntervalTCIndex.build(graph, gap=1)


def _build_interval_merged(graph: DiGraph):
    from repro.core.index import IntervalTCIndex
    return IntervalTCIndex.build(graph, gap=4, merge=True)


def _build_frozen(graph: DiGraph):
    from repro.core.index import IntervalTCIndex
    return IntervalTCIndex.build(graph).freeze()


def _build_full(graph: DiGraph):
    from repro.baselines import FullTCIndex
    return FullTCIndex.build(graph)


def _build_bitmatrix(graph: DiGraph):
    from repro.baselines import BitMatrixTCIndex
    return BitMatrixTCIndex.build(graph)


def _build_pointer(graph: DiGraph):
    from repro.baselines import PointerChasingIndex
    return PointerChasingIndex.build(graph)


def _build_inverse(graph: DiGraph):
    from repro.baselines import InverseTCIndex
    return InverseTCIndex.build(graph)


def _build_chain(graph: DiGraph):
    from repro.baselines import ChainTCIndex
    return ChainTCIndex.build(graph, "greedy")


def _build_hoplabel(graph: DiGraph):
    from repro.core.hoplabel import HopLabelIndex
    return HopLabelIndex.build(graph)


def _build_condensed(graph: DiGraph):
    from repro.core.condensation import CondensedIndex
    return CondensedIndex.build(graph)


def _build_durable(graph: DiGraph):
    """A durable store compared *after a real close/reopen cycle*.

    Feeds the graph through journalled mutations (nodes in topological
    order, each with its full predecessor set as parents), closes the
    store, and reopens it — so the comparison exercises WAL replay and
    recovery, not just the in-memory engine.  The store keeps its
    backing temp directory alive for as long as it is referenced.
    """
    import tempfile
    from repro.durability import DurableTCIndex
    from repro.graph.traversal import topological_order
    guard = tempfile.TemporaryDirectory(prefix="durable-engine-")
    with DurableTCIndex.open(guard.name) as store:
        for node in topological_order(graph):
            store.add_node(node, sorted(graph.predecessors(node), key=repr))
    reopened = DurableTCIndex.open(guard.name)
    reopened._tempdir_guard = guard
    return reopened


def _build_hybrid_delta(graph: DiGraph):
    """A hybrid engine compared *while its delta overlay is live*.

    Builds the frozen base from the graph minus a deterministic slice of
    withheld arcs, then adds those arcs back through the hybrid — so the
    comparison exercises the overlay correction path, not just a freshly
    compacted snapshot.  Thresholds are pushed out of reach to keep the
    delta from folding before the check.
    """
    from repro.core.hybrid import HybridTCIndex
    arcs = sorted(graph.arcs(), key=repr)
    withheld_count = min(8, len(arcs) // 4)
    kept = arcs[:len(arcs) - withheld_count] if withheld_count else arcs
    withheld = arcs[len(arcs) - withheld_count:] if withheld_count else []
    base_graph = DiGraph(arcs=kept, nodes=list(graph.nodes()))
    hybrid = HybridTCIndex.build(base_graph, max_delta=1_000_000,
                                 max_ratio=1_000_000.0)
    for source, destination in withheld:
        hybrid.add_arc(source, destination)
    return hybrid


def _build_interval_vectorized(graph: DiGraph):
    """An index built through the vectorized propagation kernel.

    Same gap as the plain rebuild, so any divergence between the numpy
    level sweep and the sequential reference pass shows up as a
    differential mismatch rather than a silent mislabeling.
    """
    from repro.core.index import IntervalTCIndex
    return IntervalTCIndex.build(graph, gap=1, propagation="vectorized")


def _build_rtcf(graph: DiGraph):
    """A frozen engine compared after a real save/mmap-load cycle.

    Freezes a fresh build, writes the RTCF container to a temp file, and
    reopens it through ``mmap`` with full checksum verification — so the
    comparison exercises the binary writer, the structural validator,
    and the zero-copy mapped view, not just the in-memory freeze.  The
    backing temp directory stays alive as long as the view is
    referenced.
    """
    import os
    import tempfile
    from repro.core.index import IntervalTCIndex
    from repro.core.rtcf import load_rtcf, save_rtcf
    guard = tempfile.TemporaryDirectory(prefix="rtcf-engine-")
    path = os.path.join(guard.name, "engine.rtcf")
    save_rtcf(IntervalTCIndex.build(graph).freeze(), path)
    mapped = load_rtcf(path, verify=True)
    mapped._tempdir_guard = guard
    return mapped


def _build_server(graph: DiGraph):
    """A hybrid engine compared *through a live in-process server*.

    Spins up a background-thread :class:`ReachabilityServer` over a
    fresh hybrid build and answers every oracle comparison with real
    protocol round trips — framing, dispatch, the batch coalescer, and
    JSON encode/decode are all inside the differential loop.  The
    server thread is torn down when the engine is garbage collected
    (checkpoint engines are short-lived), and is a daemon either way.
    """
    import weakref
    from repro.core.hybrid import HybridTCIndex
    from repro.server.inprocess import ServerBackedEngine, ServerThread
    thread = ServerThread(lambda: HybridTCIndex.build(graph))
    engine = ServerBackedEngine(thread)
    weakref.finalize(engine, thread.close)
    return engine


def _build_server_chaos(graph: DiGraph):
    """The ``server`` engine with a seeded chaos proxy on the wire.

    Every comparison round trip crosses a :class:`ChaosProxy` injecting
    latency, split frames, stalls, mid-frame resets, and dropped
    connections; the client rides per-call timeouts plus seeded
    retry-with-reconnect.  The comparison only ever issues *reads*
    (successors/predecessors/reachable), so chaos retries can never
    double-apply anything — and every answer that survives the wire
    must still match the oracle exactly, which is the point: faults may
    cost time, never correctness.
    """
    import weakref
    from repro.core.hybrid import HybridTCIndex
    from repro.server.client import RetryPolicy
    from repro.server.inprocess import ServerBackedEngine, ServerThread
    from repro.testing.netchaos import ChaosConfig, ChaosProxy
    config = ChaosConfig(seed=1729, latency_ms=(0.0, 1.5),
                         partial_write_prob=0.25, partial_write_max=48,
                         stall_prob=0.02, stall_ms=(5.0, 20.0),
                         reset_prob=0.02, drop_prob=0.05)

    def proxy_factory(host, port):
        return ChaosProxy.create(host, port, config)

    import random as _random
    thread = ServerThread(
        lambda: HybridTCIndex.build(graph),
        proxy_factory=proxy_factory,
        client_kwargs={
            "call_timeout": 5.0,
            "retry": RetryPolicy(attempts=12, base_delay=0.01,
                                 max_delay=0.2,
                                 rng=_random.Random(1729)),
        })
    engine = ServerBackedEngine(thread)
    weakref.finalize(engine, thread.close)
    return engine


def _build_cluster(graph: DiGraph):
    """A hybrid engine compared *through a preforked worker cluster*.

    The heavyweight sibling of ``server``: every answer round-trips a
    real socket into one of two forked worker processes serving an
    mmap'd RTCF generation, with writes forwarded to the writer process
    and acked only once the covering generation is visible.  Forks per
    checkpoint, so keep it out of the default matrix; opt in with
    ``--engines cluster``.
    """
    import weakref
    from repro.core.hybrid import HybridTCIndex
    from repro.server.inprocess import ClusterThread, ServerBackedEngine
    thread = ClusterThread(lambda: HybridTCIndex.build(graph), workers=2,
                           poll_interval=0.01)
    engine = ServerBackedEngine(thread)
    weakref.finalize(engine, thread.close)
    return engine


#: From-scratch engine builders, keyed by the names the CLI accepts.
ENGINE_FACTORIES: Dict[str, Callable[[DiGraph], object]] = {
    "rebuild": _build_interval,
    "rebuild-merged": _build_interval_merged,
    "rebuild-vectorized": _build_interval_vectorized,
    "rebuild-frozen": _build_frozen,
    "rtcf": _build_rtcf,
    "full": _build_full,
    "bitmatrix": _build_bitmatrix,
    "pointer": _build_pointer,
    "inverse": _build_inverse,
    "chain": _build_chain,
    "hoplabel": _build_hoplabel,
    "condensed": _build_condensed,
    "hybrid-delta": _build_hybrid_delta,
    "durable": _build_durable,
    "server": _build_server,
    "server-chaos": _build_server_chaos,
    "cluster": _build_cluster,
}

#: Shorthand accepted by ``--engines``: expands to every baseline engine.
BASELINE_GROUP = ("full", "bitmatrix", "pointer", "inverse", "chain",
                  "condensed")


def build_engines(oracle: SetClosureOracle,
                  names: Iterable[str]) -> Dict[str, object]:
    """Rebuild the named engines from the oracle's current arc set."""
    engines: Dict[str, object] = {}
    for name in names:
        try:
            factory = ENGINE_FACTORIES[name]
        except KeyError:
            raise ReproError(
                f"unknown engine {name!r}; known: {sorted(ENGINE_FACTORIES)}"
            ) from None
        engines[name] = factory(oracle.as_digraph())
    return engines


def compare_engine(name: str, engine, oracle: SetClosureOracle, *,
                   predecessors: bool = False) -> int:
    """Check one engine against the oracle on every node; return checks run.

    Compares the full successor set of every node (which subsumes every
    pairwise ``reachable`` answer) and, when ``predecessors`` is set, the
    full predecessor set too.  Engines that only answer ``reachable``
    (the inverse-closure baseline) are checked pairwise instead.  Raises
    :class:`DifferentialMismatch` on the first disagreement.
    """
    checks = 0
    if not hasattr(engine, "successors"):
        return _compare_pairwise(name, engine, oracle)
    for node in oracle.nodes():
        expected = set(oracle.successors(node))
        answer = set(engine.successors(node))
        checks += 1
        if answer != expected:
            raise DifferentialMismatch(
                name,
                f"successors({node!r}) wrong: "
                f"missing={sorted(map(repr, expected - answer))} "
                f"extra={sorted(map(repr, answer - expected))}")
        if predecessors:
            expected_pred = oracle.predecessors(node)
            answer_pred = set(engine.predecessors(node))
            checks += 1
            if answer_pred != expected_pred:
                raise DifferentialMismatch(
                    name,
                    f"predecessors({node!r}) wrong: "
                    f"missing={sorted(map(repr, expected_pred - answer_pred))} "
                    f"extra={sorted(map(repr, answer_pred - expected_pred))}")
    return checks


def _compare_pairwise(name: str, engine, oracle: SetClosureOracle) -> int:
    checks = 0
    nodes = oracle.nodes()
    for source in nodes:
        reach = oracle.successors(source)
        for destination in nodes:
            checks += 1
            answer = engine.reachable(source, destination)
            if answer != (destination in reach):
                raise DifferentialMismatch(
                    name,
                    f"reachable({source!r}, {destination!r}) = {answer}, "
                    f"oracle says {destination in reach}")
    return checks
