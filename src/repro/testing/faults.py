"""Named, deliberately injected bugs for mutation-testing the harness.

A fuzzing harness that never fires is worse than none.  Each fault here
monkeypatches one update-path behaviour into a realistic bug — the kind
a wrong refactor of :mod:`repro.core.updates` would introduce — so tests
can assert the fuzzer *catches* it, the shrinker minimises it, and the
crash file replays it.  Faults are context managers and always restore
the patched attribute:

* ``keep-subsumed`` — interval insertion stops discarding subsumed
  intervals, breaking the Section 3.2 elimination rule (caught by the
  subsumption audit);
* ``cutoff-propagation`` — non-tree arc insertion updates the arc's
  source but never walks the predecessor lists, losing reachability
  upstream (caught by the differential check);
* ``stale-freeze`` — mutations stop bumping the version counter, so
  frozen views silently serve stale answers (caught by the staleness
  audit);
* ``leak-used-numbers`` — the free-range ledger hands out the parent's
  first *used* slot as well, corrupting gap accounting (caught by the
  gap audit).

Crash files record the fault name that produced them, so replay can
re-install the same bug and prove the trace still (or no longer) fails.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


@contextmanager
def _patched(owner, attribute: str, replacement) -> Iterator[None]:
    original = getattr(owner, attribute)
    setattr(owner, attribute, replacement)
    try:
        yield
    finally:
        setattr(owner, attribute, original)


@contextmanager
def _keep_subsumed() -> Iterator[None]:
    from repro.core.intervals import IntervalSet

    original_add = IntervalSet.add

    def buggy_add(self, interval):
        lo, hi = interval
        if lo > hi:
            raise ReproError(f"invalid interval [{lo},{hi}]: lo > hi")
        # Bug: append without subsumption elimination (then keep sorted by
        # lo so membership queries still mostly work).
        from bisect import bisect_left
        position = bisect_left(self._los, lo)
        if position < len(self._los) and self._los[position] == lo \
                and self._his[position] == hi:
            return False
        self._los.insert(position, lo)
        self._his.insert(position, hi)
        return True

    with _patched(IntervalSet, "add", buggy_add):
        yield
    del original_add


@contextmanager
def _cutoff_propagation() -> Iterator[None]:
    from repro.core import updates

    original = updates.add_non_tree_arc

    def buggy_add_non_tree_arc(index, source, destination):
        from repro.errors import CycleError, GraphError, NodeNotFoundError
        if source not in index.postorder:
            raise NodeNotFoundError(source)
        if destination not in index.postorder:
            raise NodeNotFoundError(destination)
        if source == destination:
            raise GraphError(f"self-loop ({source!r}, {source!r}) is not allowed")
        if index.graph.has_arc(source, destination):
            return
        if index.reachable(destination, source):
            raise CycleError(
                f"arc ({source!r}, {destination!r}) would create a cycle")
        index._invalidate()
        index.graph.add_arc(source, destination)
        # Bug: the source absorbs the destination's intervals, but the
        # upward walk over predecessor lists never happens.
        index.intervals[source].add_all(list(index.intervals[destination]))

    with _patched(updates, "add_non_tree_arc", buggy_add_non_tree_arc):
        yield
    del original


@contextmanager
def _stale_freeze() -> Iterator[None]:
    from repro.core.index import IntervalTCIndex

    def buggy_invalidate(self) -> None:
        pass  # Bug: mutations no longer stale frozen views.

    with _patched(IntervalTCIndex, "_invalidate", buggy_invalidate):
        yield


@contextmanager
def _leak_used_numbers() -> Iterator[None]:
    from repro.core import updates

    original = updates.free_ranges_under

    def buggy_free_ranges_under(index, parent) -> List[Tuple[int, int]]:
        ranges = list(original(index, parent))
        from repro.core.tree_cover import VIRTUAL_ROOT
        if parent is not VIRTUAL_ROOT:
            # Bug: also offer the parent's own (used!) number as free space.
            ranges.append((index.postorder[parent], index.postorder[parent]))
        return ranges

    with _patched(updates, "free_ranges_under", buggy_free_ranges_under):
        yield


#: Registry of injectable faults, keyed by CLI / crash-file name.
FAULTS: Dict[str, Callable[[], "contextmanager"]] = {
    "keep-subsumed": _keep_subsumed,
    "cutoff-propagation": _cutoff_propagation,
    "stale-freeze": _stale_freeze,
    "leak-used-numbers": _leak_used_numbers,
}


@contextmanager
def injected_fault(name: Optional[str]) -> Iterator[None]:
    """Install the named fault for the duration of the block.

    ``None`` (or ``"none"``) is a no-op, so callers can wrap
    unconditionally.
    """
    if name is None or name == "none":
        yield
        return
    try:
        fault = FAULTS[name]
    except KeyError:
        raise ReproError(
            f"unknown fault {name!r}; known: {sorted(FAULTS)}") from None
    with fault():
        yield
