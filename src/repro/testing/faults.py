"""Named, deliberately injected bugs for mutation-testing the harness.

A fuzzing harness that never fires is worse than none.  Each fault here
monkeypatches one update-path behaviour into a realistic bug — the kind
a wrong refactor of :mod:`repro.core.updates` would introduce — so tests
can assert the fuzzer *catches* it, the shrinker minimises it, and the
crash file replays it.  Faults are context managers and always restore
the patched attribute:

* ``keep-subsumed`` — interval insertion stops discarding subsumed
  intervals, breaking the Section 3.2 elimination rule (caught by the
  subsumption audit);
* ``cutoff-propagation`` — non-tree arc insertion updates the arc's
  source but never walks the predecessor lists, losing reachability
  upstream (caught by the differential check);
* ``stale-freeze`` — mutations stop bumping the version counter, so
  frozen views silently serve stale answers (caught by the staleness
  audit);
* ``leak-used-numbers`` — the free-range ledger hands out the parent's
  first *used* slot as well, corrupting gap accounting (caught by the
  gap audit).

Crash files record the fault name that produced them, so replay can
re-install the same bug and prove the trace still (or no longer) fails.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ReproError


@contextmanager
def _patched(owner, attribute: str, replacement) -> Iterator[None]:
    original = getattr(owner, attribute)
    setattr(owner, attribute, replacement)
    try:
        yield
    finally:
        setattr(owner, attribute, original)


@contextmanager
def _keep_subsumed() -> Iterator[None]:
    from repro.core.intervals import IntervalSet

    original_add = IntervalSet.add

    def buggy_add(self, interval):
        lo, hi = interval
        if lo > hi:
            raise ReproError(f"invalid interval [{lo},{hi}]: lo > hi")
        # Bug: append without subsumption elimination (then keep sorted by
        # lo so membership queries still mostly work).
        from bisect import bisect_left
        position = bisect_left(self._los, lo)
        if position < len(self._los) and self._los[position] == lo \
                and self._his[position] == hi:
            return False
        self._los.insert(position, lo)
        self._his.insert(position, hi)
        return True

    with _patched(IntervalSet, "add", buggy_add):
        yield
    del original_add


@contextmanager
def _cutoff_propagation() -> Iterator[None]:
    from repro.core import updates

    original = updates.add_non_tree_arc

    def buggy_add_non_tree_arc(index, source, destination):
        from repro.errors import CycleError, GraphError, NodeNotFoundError
        if source not in index.postorder:
            raise NodeNotFoundError(source)
        if destination not in index.postorder:
            raise NodeNotFoundError(destination)
        if source == destination:
            raise GraphError(f"self-loop ({source!r}, {source!r}) is not allowed")
        if index.graph.has_arc(source, destination):
            return
        if index.reachable(destination, source):
            raise CycleError(
                f"arc ({source!r}, {destination!r}) would create a cycle")
        index._invalidate()
        index.graph.add_arc(source, destination)
        # Bug: the source absorbs the destination's intervals, but the
        # upward walk over predecessor lists never happens.
        index.intervals[source].add_all(list(index.intervals[destination]))

    with _patched(updates, "add_non_tree_arc", buggy_add_non_tree_arc):
        yield
    del original


@contextmanager
def _stale_freeze() -> Iterator[None]:
    from repro.core.index import IntervalTCIndex

    def buggy_invalidate(self) -> None:
        pass  # Bug: mutations no longer stale frozen views.

    with _patched(IntervalTCIndex, "_invalidate", buggy_invalidate):
        yield


@contextmanager
def _leak_used_numbers() -> Iterator[None]:
    from repro.core import updates

    original = updates.free_ranges_under

    def buggy_free_ranges_under(index, parent) -> List[Tuple[int, int]]:
        ranges = list(original(index, parent))
        from repro.core.tree_cover import VIRTUAL_ROOT
        if parent is not VIRTUAL_ROOT:
            # Bug: also offer the parent's own (used!) number as free space.
            ranges.append((index.postorder[parent], index.postorder[parent]))
        return ranges

    with _patched(updates, "free_ranges_under", buggy_free_ranges_under):
        yield


#: Registry of injectable faults, keyed by CLI / crash-file name.
FAULTS: Dict[str, Callable[[], "contextmanager"]] = {
    "keep-subsumed": _keep_subsumed,
    "cutoff-propagation": _cutoff_propagation,
    "stale-freeze": _stale_freeze,
    "leak-used-numbers": _leak_used_numbers,
}


@contextmanager
def injected_fault(name: Optional[str]) -> Iterator[None]:
    """Install the named fault for the duration of the block.

    ``None`` (or ``"none"``) is a no-op, so callers can wrap
    unconditionally.
    """
    if name is None or name == "none":
        yield
        return
    try:
        fault = FAULTS[name]
    except KeyError:
        raise ReproError(
            f"unknown fault {name!r}; known: {sorted(FAULTS)}") from None
    with fault():
        yield


# ----------------------------------------------------------------------
# crash-point fault injection (the durability subsystem's shim)
# ----------------------------------------------------------------------
#: Every crash site the durability layer registers, in rough execution
#: order.  ``wal.append.mid-write`` is synthesised inside the shim's
#: ``write`` (a torn write: only a prefix of the record reaches the
#: file); ``checkpoint.drop-rename`` kills *during* ``os.replace`` with
#: the rename dropped — the classic lost-publish crash.  The crash-fuzz
#: sweep (:mod:`repro.testing.crashfuzz`) asserts recovery after a kill
#: at every one of these.
CRASH_POINTS: Tuple[str, ...] = (
    "wal.append.pre-write",
    "wal.append.mid-write",
    "wal.append.pre-sync",
    "wal.append.post-sync",
    "checkpoint.pre-temp",
    "checkpoint.temp.mid-write",
    "checkpoint.pre-rename",
    "checkpoint.drop-rename",
    "checkpoint.post-rename",
    "checkpoint.post-rotate",
)


def flip_byte(path, offset: int, mask: int = 0xFF) -> None:
    """XOR one byte of ``path`` in place (bit-rot simulation for tests)."""
    import os
    size = os.path.getsize(path)
    if not 0 <= offset < size:
        raise ReproError(
            f"flip offset {offset} outside file of {size} bytes")
    if not 1 <= mask <= 0xFF:
        raise ReproError(f"mask must flip at least one bit, got {mask:#x}")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        original = handle.read(1)[0]
        handle.seek(offset)
        handle.write(bytes([original ^ mask]))


class FaultyFS:
    """Crash-injection filesystem shim for the durability layer.

    Substitutes for :class:`repro.durability.atomic.RealFS`.  Configure
    with a crash point name (and which occurrence of it); when execution
    reaches it, the shim simulates power loss — every file it touched is
    truncated back to its last-fsynced length *plus a random prefix of
    the un-fsynced bytes* (real disks persist partial un-synced writes,
    which is exactly how torn WAL tails arise) — and raises
    :class:`~repro.errors.SimulatedCrash`.  The harness treats that as
    process death and re-opens the store to exercise recovery.

    Two points need special staging: ``<label>.mid-write`` crashes with
    only a prefix of one logical ``write`` issued, and
    ``checkpoint.drop-rename`` crashes with the rename itself discarded
    (the temp file stays, the target is never replaced).
    """

    def __init__(self, *, crash_at: Optional[str] = None,
                 occurrence: int = 1, rng=None) -> None:
        import random
        from repro.durability.atomic import RealFS
        self._real = RealFS()
        self.crash_at = crash_at
        self.occurrence = occurrence
        self.rng = rng if rng is not None else random.Random(0)
        #: point name -> times reached (including the crashing visit).
        self.hits: Dict[str, int] = {}
        self.crashed = False
        #: path -> bytes known durable (fsynced or pre-existing).
        self._synced_len: Dict[str, int] = {}
        self._handles: Dict[int, str] = {}

    # -- crash machinery ------------------------------------------------
    def _note(self, point: str) -> bool:
        """Count a visit; True when this visit must crash."""
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        return (not self.crashed and point == self.crash_at
                and count >= self.occurrence)

    def crash_point(self, name: str) -> None:
        if self._note(name):
            self._crash(name)

    def _crash(self, point: str) -> None:
        """Simulate power loss: roll every touched file back to a state
        a real disk could be in, then die."""
        import os
        from repro.errors import SimulatedCrash
        self.crashed = True
        # Handles die with the process.  Every shim write is flushed
        # eagerly, so closing here adds no bytes — it just stops the
        # harness leaking file descriptors across hundreds of crashes.
        for handle_id in list(self._handles):
            self._handles.pop(handle_id, None)
        for path, synced in self._synced_len.items():
            try:
                size = os.path.getsize(path)
            except OSError:
                continue
            if size > synced:
                # Un-fsynced bytes: the crash persists an arbitrary
                # prefix of them (0 = clean loss, partial = torn tail).
                keep = self.rng.randint(0, size - synced)
                with open(path, "r+b") as handle:
                    handle.truncate(synced + keep)
        raise SimulatedCrash(point, self.hits.get(point, 1))

    def _track(self, path: str) -> None:
        import os
        if path not in self._synced_len:
            try:
                self._synced_len[path] = os.path.getsize(path)
            except OSError:
                self._synced_len[path] = 0

    # -- the RealFS surface ---------------------------------------------
    def open_append(self, path: str):
        handle = self._real.open_append(path)
        self._track(str(path))
        self._handles[id(handle)] = str(path)
        return handle

    def open_write(self, path: str):
        handle = self._real.open_write(path)
        self._synced_len.setdefault(str(path), 0)
        self._handles[id(handle)] = str(path)
        return handle

    def write(self, handle, data: bytes, *, label: str = "") -> None:
        mid = label + ".mid-write"
        if self._note(mid):
            # Torn write: a strict prefix of this record reaches the
            # file, then the process dies.
            cut = self.rng.randint(0, max(len(data) - 1, 0))
            self._real.write(handle, data[:cut])
            handle.flush()  # OS-buffered, NOT fsynced: may still be lost
            self._crash(mid)
        self._real.write(handle, data, label=label)
        # Flush to the OS so the file size reflects the write; durability
        # is still governed by _synced_len until fsync.
        handle.flush()

    def fsync(self, handle) -> None:
        self._real.fsync(handle)
        path = self._handles.get(id(handle))
        if path is not None:
            import os
            self._synced_len[path] = os.path.getsize(path)

    def close(self, handle) -> None:
        self._real.close(handle)
        self._handles.pop(id(handle), None)

    def replace(self, source: str, destination: str, *,
                label: str = "") -> None:
        drop = label + ".drop-rename"
        if self._note(drop):
            self._crash(drop)  # crash with the rename never issued
        self._real.replace(source, destination)
        # The rename is durable once the directory is fsynced; model the
        # destination as fully synced (checkpoint temp files are fsynced
        # before the rename).
        import os
        try:
            self._synced_len[str(destination)] = os.path.getsize(destination)
        except OSError:  # pragma: no cover - destination just written
            pass
        self._synced_len.pop(str(source), None)

    def remove(self, path: str) -> None:
        self._real.remove(path)
        self._synced_len.pop(str(path), None)

    def fsync_dir(self, path: str) -> None:
        self._real.fsync_dir(path)
