"""Delta-debugging minimisation of failing fuzz traces.

A raw failing trace from :func:`repro.testing.fuzzer.fuzz` can hold
thousands of operations; almost all of them are irrelevant.  The
shrinker reduces it to a minimal repro in three phases:

1. **op ddmin** — classic delta debugging over the operation list:
   remove chunks at coarse granularity, halving the chunk size until
   single operations, keeping any candidate that still fails;
2. **seed-arc ddmin** — the same over the seed graph's arcs;
3. **node pruning** — drop seed nodes no longer referenced by any arc
   or operation.

Operations whose preconditions no longer hold after earlier deletions
are *skipped* by the runner rather than erroring, which is what makes
chunk removal sound.  A candidate counts as failing when replay raises
:class:`~repro.testing.fuzzer.TraceFailure` of any kind — minimising to
"a different bug" is acceptable for a crash artefact and standard ddmin
practice.

Every replay re-installs the trace's recorded fault (if any), so
harness self-tests shrink exactly like real bugs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.testing.fuzzer import (
    DEFAULT_ENGINES,
    FuzzRunner,
    Trace,
    TraceFailure,
)


@dataclass
class ShrinkResult:
    """Outcome of one minimisation: the small trace and some accounting."""

    trace: Trace
    failure: TraceFailure
    replays: int
    ops_before: int
    ops_after: int
    arcs_before: int
    arcs_after: int


class _Replayer:
    """Bounded replay harness shared by the shrink phases."""

    def __init__(self, engines: Sequence[str], audit_every: int,
                 check_every: int, max_replays: int) -> None:
        self.engines = engines
        self.audit_every = audit_every
        self.check_every = check_every
        self.max_replays = max_replays
        self.replays = 0

    def exhausted(self) -> bool:
        return self.replays >= self.max_replays

    def failure_of(self, candidate: Trace) -> Optional[TraceFailure]:
        from repro.testing.faults import injected_fault
        self.replays += 1
        runner = FuzzRunner(candidate, engines=self.engines,
                            audit_every=self.audit_every,
                            check_every=self.check_every)
        with injected_fault(candidate.fault):
            try:
                runner.run()
            except TraceFailure as failure:
                return failure
        return None


def _with_ops(trace: Trace, ops: List[list]) -> Trace:
    clone = trace.prefix(0)
    clone.ops = [list(op) for op in ops]
    return clone


def _with_seed(trace: Trace, nodes: List, arcs: List[Tuple]) -> Trace:
    clone = trace.prefix(len(trace.ops))
    clone.seed_nodes = list(nodes)
    clone.seed_arcs = [tuple(arc) for arc in arcs]
    return clone


def _ddmin(items: List, rebuild, replayer: _Replayer,
           baseline: TraceFailure) -> Tuple[List, TraceFailure]:
    """Generic ddmin over ``items``; ``rebuild(items)`` makes a candidate."""
    failure = baseline
    chunk = max(1, len(items) // 2)
    while chunk >= 1:
        position = 0
        progressed = False
        while position < len(items):
            if replayer.exhausted():
                return items, failure
            candidate_items = items[:position] + items[position + chunk:]
            candidate_failure = replayer.failure_of(rebuild(candidate_items))
            if candidate_failure is not None:
                items = candidate_items
                failure = candidate_failure
                progressed = True
            else:
                position += chunk
        if chunk == 1 and not progressed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if progressed else 0)
    return items, failure


def shrink_trace(failure: TraceFailure, *,
                 engines: Sequence[str] = DEFAULT_ENGINES,
                 audit_every: int = 1, check_every: int = 50,
                 max_replays: int = 400) -> ShrinkResult:
    """Minimise the trace carried by ``failure``; replay budget bounded."""
    trace = failure.trace
    replayer = _Replayer(engines, audit_every, check_every, max_replays)
    ops_before = len(trace.ops)
    arcs_before = len(trace.seed_arcs)

    # The recorded failure came from the original (possibly generating)
    # run; confirm it replays cold before spending the budget.
    confirmed = replayer.failure_of(trace)
    if confirmed is None:
        raise TraceFailure(trace, failure.step, failure.op, RuntimeError(
            "failure did not reproduce on cold replay; refusing to shrink "
            "a flaky trace"))
    best_failure = confirmed

    ops, best_failure = _ddmin(
        [list(op) for op in trace.ops],
        lambda candidate: _with_ops(trace, candidate),
        replayer, best_failure)
    trace = _with_ops(trace, ops)

    arcs, best_failure = _ddmin(
        list(trace.seed_arcs),
        lambda candidate: _with_seed(trace, trace.seed_nodes, candidate),
        replayer, best_failure)
    trace = _with_seed(trace, trace.seed_nodes, arcs)

    referenced = trace.referenced_nodes()
    kept_nodes = [node for node in trace.seed_nodes if node in referenced]
    if len(kept_nodes) < len(trace.seed_nodes) and not replayer.exhausted():
        candidate = _with_seed(trace, kept_nodes, trace.seed_arcs)
        candidate_failure = replayer.failure_of(candidate)
        if candidate_failure is not None:
            trace = candidate
            best_failure = candidate_failure

    return ShrinkResult(trace=trace, failure=best_failure,
                        replays=replayer.replays, ops_before=ops_before,
                        ops_after=len(trace.ops), arcs_before=arcs_before,
                        arcs_after=len(trace.seed_arcs))
