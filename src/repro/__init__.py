"""repro — interval-labeled transitive closure compression.

A full reproduction of *Efficient Management of Transitive Relationships
in Large Data and Knowledge Bases* (Agrawal, Borgida & Jagadish, SIGMOD
1989): the optimal tree-cover interval index, the Section 4 incremental
update algorithms, every baseline the paper compares against, a simulated
secondary-storage layer, a knowledge-base taxonomy built on the index, and
benchmark harnesses regenerating each figure of the evaluation.

Quick start::

    from repro import DiGraph, IntervalTCIndex

    graph = DiGraph([("animal", "mammal"), ("mammal", "dog"), ("animal", "fish")])
    index = IntervalTCIndex.build(graph)
    assert index.reachable("animal", "dog")
    assert not index.reachable("fish", "dog")

Or through the front door, which dispatches on what it is given (graph,
saved index, durable store directory) and can wire observability::

    from repro import open_index
    engine = open_index("closure.json")        # any TCEngine
"""

from repro.core import (
    ChainCoverIndex,
    CondensedIndex,
    FrozenTCIndex,
    GraphStats,
    HopLabelIndex,
    HybridTCIndex,
    Interval,
    IntervalSet,
    IntervalTCIndex,
    TreeCover,
    VIRTUAL_ROOT,
    build_tree_cover,
    graph_stats,
    recommend_engine,
)
from repro.core.engine import EngineCapabilities, TCEngine
from repro.errors import (
    ArcNotFoundError,
    CycleError,
    GraphError,
    IndexStateError,
    NodeNotFoundError,
    NumberingExhaustedError,
    ReproError,
    StorageError,
    TaxonomyError,
)
from repro.factory import open_index
from repro.graph import DiGraph

__version__ = "1.0.0"

__all__ = [
    "ArcNotFoundError",
    "ChainCoverIndex",
    "CondensedIndex",
    "CycleError",
    "DiGraph",
    "EngineCapabilities",
    "FrozenTCIndex",
    "GraphError",
    "GraphStats",
    "HopLabelIndex",
    "HybridTCIndex",
    "IndexStateError",
    "Interval",
    "IntervalSet",
    "IntervalTCIndex",
    "NodeNotFoundError",
    "NumberingExhaustedError",
    "ReproError",
    "StorageError",
    "TCEngine",
    "TaxonomyError",
    "TreeCover",
    "VIRTUAL_ROOT",
    "build_tree_cover",
    "graph_stats",
    "open_index",
    "recommend_engine",
    "__version__",
]
