"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while still
being able to discriminate the common failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class GraphError(ReproError):
    """A structural problem with a graph (unknown node, duplicate arc...)."""


class NodeNotFoundError(GraphError, KeyError):
    """An operation referenced a node that is not in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class ArcNotFoundError(GraphError, KeyError):
    """An operation referenced an arc that is not in the graph."""

    def __init__(self, source: object, destination: object) -> None:
        super().__init__(f"arc ({source!r}, {destination!r}) is not in the graph")
        self.source = source
        self.destination = destination


class CycleError(GraphError):
    """A DAG-only operation was attempted on a cyclic graph."""

    def __init__(self, message: str = "graph contains a cycle", *, cycle: list | None = None) -> None:
        if cycle:
            message = f"{message}: {' -> '.join(repr(n) for n in cycle)}"
        super().__init__(message)
        self.cycle = cycle or []


class IndexStateError(ReproError):
    """The compressed-closure index is in a state that forbids the operation.

    Raised, for example, when an incremental update targets a node the index
    does not know about, or when a tree arc insertion runs out of spare
    postorder numbers and the caller disabled automatic renumbering.
    """


class NumberingExhaustedError(IndexStateError):
    """No free postorder number is available for an insertion.

    Callers may react by renumbering (see
    :meth:`repro.core.index.IntervalTCIndex.renumber`) and retrying.
    """


class StorageError(ReproError):
    """A problem in the simulated secondary-storage layer."""


class PersistenceError(ReproError):
    """A problem reading or writing a persisted artifact.

    Covers index documents, RTCX binary files, write-ahead logs and
    checkpoints.  Loaders never leak raw ``json.JSONDecodeError`` /
    ``KeyError`` / ``struct.error`` — they wrap them in this family so
    callers (and the CLI) can diagnose a bad file without a traceback.
    """


class CorruptFileError(PersistenceError, StorageError):
    """A persisted file failed validation.

    Bad magic, a checksum mismatch, truncation mid-record, or a document
    whose structure does not decode.  Carries the offending ``path`` and
    a one-line ``detail``.  Also a :class:`StorageError` so existing
    handlers around the RTCX reader keep working.
    """

    def __init__(self, path: object, detail: str) -> None:
        super().__init__(f"{path}: {detail}")
        self.path = str(path)
        self.detail = detail


class RecoveryError(PersistenceError):
    """Crash recovery could not reconstruct a consistent index.

    Raised when every checkpoint generation is unusable and the
    write-ahead log does not reach back to the store's creation, or when
    the surviving log is missing records in the middle.
    """


class SimulatedCrash(ReproError):
    """The crash-injection filesystem shim killed the 'process' here.

    Raised by :class:`repro.testing.faults.FaultyFS` at a registered
    crash point after applying the configured data loss (un-fsynced
    bytes truncated or torn).  Real code never raises or catches this;
    the crash-fuzz harness treats it as process death and re-opens the
    store to exercise recovery.
    """

    def __init__(self, point: str, occurrence: int) -> None:
        super().__init__(
            f"simulated crash at {point!r} (occurrence {occurrence})")
        self.point = point
        self.occurrence = occurrence


class TaxonomyError(ReproError):
    """A problem in the knowledge-base taxonomy layer."""
