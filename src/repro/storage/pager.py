"""A simulated secondary-storage layer: pages, a buffer pool, I/O counters.

Section 2.2's desiderata include "in the case of large relations, the
information will reside on secondary storage, and hence we need to
minimise I/O traffic".  1989 disks are simulated rather than timed: data
structures are laid out on fixed-size pages, reads go through an LRU
buffer pool, and experiments report page-fault counts.

Two paged layouts are provided:

* :class:`PagedSuccessorStore` — the full closure as variable-length
  successor lists packed into pages (one unit per entry);
* :class:`PagedIntervalStore` — the compressed closure as interval lists
  packed into pages (two units per interval).

Both serve ``reachable`` queries by fetching exactly the pages holding the
source node's record, so the I/O benchmark (``benchmarks/bench_io.py``)
directly exposes the paper's core claim: fewer units => fewer pages =>
fewer faults for the same query load.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, Sequence, Tuple

from repro.core.index import IntervalTCIndex
from repro.baselines.full_closure import FullTCIndex
from repro.errors import NodeNotFoundError, StorageError
from repro.graph.digraph import Node

#: Units (words) per page.  1989-flavoured default: 1 KiB pages of 32-bit
#: words.
DEFAULT_PAGE_CAPACITY = 256


@dataclass
class IOCounters:
    """Cumulative buffer-pool statistics."""

    logical_reads: int = 0
    page_faults: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the pool."""
        if self.logical_reads == 0:
            return 1.0
        return 1.0 - self.page_faults / self.logical_reads

    def reset(self) -> None:
        """Zero all counters."""
        self.logical_reads = 0
        self.page_faults = 0
        self.evictions = 0


class BufferPool:
    """A fixed-capacity LRU page cache with fault accounting."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise StorageError("buffer pool needs capacity for at least one page")
        self.capacity_pages = capacity_pages
        self.counters = IOCounters()
        self._resident: "OrderedDict[int, None]" = OrderedDict()

    def access(self, page_id: int) -> bool:
        """Touch ``page_id``; returns ``True`` on a pool hit."""
        self.counters.logical_reads += 1
        if page_id in self._resident:
            self._resident.move_to_end(page_id)
            return True
        self.counters.page_faults += 1
        if len(self._resident) >= self.capacity_pages:
            self._resident.popitem(last=False)
            self.counters.evictions += 1
        self._resident[page_id] = None
        return False

    def flush(self) -> None:
        """Empty the pool (cold restart)."""
        self._resident.clear()

    @property
    def resident_pages(self) -> int:
        """Pages currently cached."""
        return len(self._resident)


@dataclass
class _Record:
    """Placement of one node's record: page span plus payload."""

    first_page: int
    last_page: int
    payload: tuple


class _PagedStore:
    """Common machinery: pack per-node records into fixed-size pages.

    Records are laid out contiguously in node-iteration order; a record
    larger than a page spans several.  Subclasses define the payload and
    the query semantics over it.
    """

    def __init__(self, page_capacity: int, pool: BufferPool) -> None:
        if page_capacity < 2:
            raise StorageError("page capacity must hold at least one interval")
        self.page_capacity = page_capacity
        self.pool = pool
        self._records: Dict[Node, _Record] = {}
        self.num_pages = 0
        self.total_units = 0

    def _pack(self, sized_payloads: Iterable[Tuple[Node, int, tuple]]) -> None:
        cursor = 0  # unit offset within the linear file
        for node, units, payload in sized_payloads:
            units = max(units, 1)
            first_page = cursor // self.page_capacity
            last_page = (cursor + units - 1) // self.page_capacity
            self._records[node] = _Record(first_page, last_page, payload)
            cursor += units
        self.total_units = cursor
        self.num_pages = (cursor + self.page_capacity - 1) // self.page_capacity

    def _fetch(self, node: Node) -> tuple:
        try:
            record = self._records[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        for page_id in range(record.first_page, record.last_page + 1):
            self.pool.access(page_id)
        return record.payload

    def pages_of(self, node: Node) -> int:
        """How many pages the node's record spans."""
        record = self._records[node]
        return record.last_page - record.first_page + 1


class PagedSuccessorStore(_PagedStore):
    """The full materialised closure laid out on pages."""

    def __init__(self, closure: FullTCIndex, nodes: Sequence[Node], *,
                 page_capacity: int = DEFAULT_PAGE_CAPACITY,
                 pool: BufferPool = None) -> None:
        super().__init__(page_capacity, pool or BufferPool(capacity_pages=64))
        self._pack(
            (node, len(closure.successors(node, reflexive=False)),
             (frozenset(closure.successors(node, reflexive=False)),))
            for node in nodes
        )

    def reachable(self, source: Node, destination: Node) -> bool:
        """Fetch the source's pages, then probe the successor set."""
        (successors,) = self._fetch(source)
        return source == destination or destination in successors


class PagedIntervalStore(_PagedStore):
    """The compressed closure laid out on pages (two units per interval)."""

    def __init__(self, index: IntervalTCIndex, *,
                 page_capacity: int = DEFAULT_PAGE_CAPACITY,
                 pool: BufferPool = None) -> None:
        super().__init__(page_capacity, pool or BufferPool(capacity_pages=64))
        self._postorder = dict(index.postorder)
        self._pack(
            (node, 2 * len(index.intervals[node]), (index.intervals[node].copy(),))
            for node in index.nodes()
        )

    def reachable(self, source: Node, destination: Node) -> bool:
        """Fetch the source's pages, then run the range comparison."""
        (intervals,) = self._fetch(source)
        try:
            number = self._postorder[destination]
        except KeyError:
            raise NodeNotFoundError(destination) from None
        return intervals.covers(number)
