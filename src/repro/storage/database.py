"""A tiny persistent database of binary relations with closure views.

Ties the storage layer together the way the paper's Section 2 imagines a
deployment: several named base relations, each optionally carrying a
*materialised transitive-closure view* kept in sync through the Section 4
incremental algorithms, an algebra engine for queries across relations,
and durable persistence (edge lists for relations, the binary RTCX format
for closures) in a directory.

>>> db = ClosureDatabase()
>>> db.create_relation("part_of", materialize=True)
>>> db.insert("part_of", "wheel", "car")
>>> db.closure("part_of").query("wheel", "car")
True
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Union

from repro.errors import StorageError
from repro.storage.algebra import AlgebraEngine, Expression
from repro.storage.relation import BinaryRelation, MaterializedClosureView

PathLike = Union[str, Path]

_CATALOG_FILE = "catalog.json"


class ClosureDatabase:
    """Named relations + materialised closure views + algebra queries."""

    def __init__(self) -> None:
        self._relations: Dict[str, BinaryRelation] = {}
        self._views: Dict[str, MaterializedClosureView] = {}

    # ------------------------------------------------------------------
    # schema
    # ------------------------------------------------------------------
    def create_relation(self, name: str, *, materialize: bool = False,
                        tuples: Iterable[tuple] = ()) -> None:
        """Create a base relation, optionally with a closure view."""
        if name in self._relations:
            raise StorageError(f"relation {name!r} already exists")
        if name == _CATALOG_FILE:
            raise StorageError(f"{name!r} is a reserved name")
        relation = BinaryRelation(tuples)
        self._relations[name] = relation
        if materialize:
            self._views[name] = MaterializedClosureView.over(relation)

    def drop_relation(self, name: str) -> None:
        """Drop a relation and its view."""
        self._require(name)
        del self._relations[name]
        self._views.pop(name, None)

    def materialize(self, name: str) -> None:
        """Add a closure view to an existing relation (idempotent)."""
        self._require(name)
        if name not in self._views:
            self._views[name] = MaterializedClosureView.over(self._relations[name])

    def relation_names(self) -> List[str]:
        """All relation names, sorted."""
        return sorted(self._relations)

    def has_view(self, name: str) -> bool:
        """Whether ``name`` carries a materialised closure view."""
        return name in self._views

    def _require(self, name: str) -> None:
        if name not in self._relations:
            raise StorageError(
                f"unknown relation {name!r}; known: {self.relation_names()}")

    # ------------------------------------------------------------------
    # data manipulation
    # ------------------------------------------------------------------
    def insert(self, name: str, source, destination) -> None:
        """Insert a tuple; the closure view (if any) updates incrementally."""
        self._require(name)
        view = self._views.get(name)
        if view is not None:
            view.insert(source, destination)
        else:
            self._relations[name].insert(source, destination)

    def delete(self, name: str, source, destination) -> None:
        """Delete a tuple; the closure view (if any) updates incrementally."""
        self._require(name)
        view = self._views.get(name)
        if view is not None:
            view.delete(source, destination)
        else:
            self._relations[name].delete(source, destination)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def relation(self, name: str) -> BinaryRelation:
        """The base relation (mutate through :meth:`insert`/:meth:`delete`)."""
        self._require(name)
        return self._relations[name]

    def closure(self, name: str) -> MaterializedClosureView:
        """The materialised closure view of ``name``."""
        self._require(name)
        try:
            return self._views[name]
        except KeyError:
            raise StorageError(
                f"relation {name!r} has no materialised view; "
                f"call materialize({name!r}) first") from None

    def evaluate(self, expression: Expression):
        """Run an alpha-algebra expression over the current relations."""
        return AlgebraEngine(self._relations).evaluate(expression)

    @property
    def storage_units(self) -> int:
        """Total paper units across all materialised views."""
        return sum(view.storage_units for view in self._views.values())

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: PathLike) -> None:
        """Persist the database into ``directory``.

        Layout: ``catalog.json`` (names + view flags), one ``<name>.edges``
        edge list per relation.  Closure views are *not* serialised — they
        are recomputed on load, which keeps them optimal (the paper's
        "rebuild after sufficient update activity" advice applied at
        restart time).  Labels must be strings for edge-list fidelity.
        """
        base = Path(directory)
        base.mkdir(parents=True, exist_ok=True)
        catalog = {
            "relations": {name: {"materialized": name in self._views}
                          for name in self._relations},
        }
        (base / _CATALOG_FILE).write_text(json.dumps(catalog, indent=2))
        from repro.graph.io import dumps_edge_list
        for name, relation in self._relations.items():
            (base / f"{name}.edges").write_text(
                dumps_edge_list(relation.to_graph()))

    @classmethod
    def load(cls, directory: PathLike) -> "ClosureDatabase":
        """Load a database previously written by :meth:`save`."""
        base = Path(directory)
        catalog_path = base / _CATALOG_FILE
        if not catalog_path.exists():
            raise StorageError(f"{directory}: no {_CATALOG_FILE} found")
        catalog = json.loads(catalog_path.read_text())
        database = cls()
        from repro.graph.io import load_edge_list
        for name, meta in catalog.get("relations", {}).items():
            graph = load_edge_list(base / f"{name}.edges")
            database.create_relation(
                name, materialize=meta.get("materialized", False),
                tuples=graph.arcs())
        return database

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ClosureDatabase(relations={self.relation_names()}, "
                f"views={sorted(self._views)})")
