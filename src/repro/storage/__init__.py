"""Database-flavoured substrate: storage accounting, paging, materialised views,
and the alpha-extended relational algebra of Section 6."""

from repro.storage.algebra import (
    AlgebraEngine,
    Alpha,
    AlphaPlus,
    Compose,
    Difference,
    Expression,
    Intersect,
    Inverse,
    Rel,
    Select,
    Steps,
    Union,
)
from repro.storage.database import ClosureDatabase
from repro.storage.diskindex import DiskIntervalIndex, write_index
from repro.storage.model import (
    StorageComparison,
    compare_storage,
    compressed_closure_units,
    full_closure_units,
    inverse_closure_units,
    relation_units,
)
from repro.storage.pager import (
    DEFAULT_PAGE_CAPACITY,
    BufferPool,
    IOCounters,
    PagedIntervalStore,
    PagedSuccessorStore,
)
from repro.storage.relation import BinaryRelation, MaterializedClosureView

__all__ = [
    "AlgebraEngine",
    "Alpha",
    "AlphaPlus",
    "BinaryRelation",
    "ClosureDatabase",
    "Compose",
    "DiskIntervalIndex",
    "Difference",
    "Expression",
    "Intersect",
    "Inverse",
    "Rel",
    "Select",
    "Steps",
    "Union",
    "BufferPool",
    "DEFAULT_PAGE_CAPACITY",
    "IOCounters",
    "MaterializedClosureView",
    "PagedIntervalStore",
    "PagedSuccessorStore",
    "StorageComparison",
    "compare_storage",
    "compressed_closure_units",
    "full_closure_units",
    "inverse_closure_units",
    "relation_units",
    "write_index",
]
