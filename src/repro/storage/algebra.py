"""An alpha-extended relational algebra over binary relations.

Section 6 of the paper: "we are planning to incorporate these techniques
in prototype systems based on [an] alpha-extended relational algebra" —
Agrawal's *Alpha* (ICDE 1987), relational algebra plus a transitive-
closure operator.  This module implements that small query language over
:class:`repro.storage.relation.BinaryRelation` operands:

* ``Rel(name)`` — a named base relation;
* ``Union``, ``Difference``, ``Intersect`` — set operators;
* ``Compose(a, b)`` — relational composition (join on ``a.destination =
  b.source``, projecting the outer columns), the algebra's step operator;
* ``Inverse(e)`` — swap columns;
* ``Select(e, predicate)`` — tuple filter;
* ``Alpha(e)`` — the transitive closure of the operand, evaluated through
  an interval index, with SCC condensation so cyclic intermediate results
  are legal;
* ``AlphaPlus(e)`` — like ``Alpha`` but irreflexive on endpoints that have
  no path to themselves (the usual "proper ancestor" flavour).

Closure sub-results are cached per evaluation by operand identity, so a
query that mentions ``Alpha(Rel("parent"))`` twice builds one index.

Example::

    engine = AlgebraEngine({"parent": BinaryRelation([...])})
    grandparents = engine.evaluate(Compose(Rel("parent"), Rel("parent")))
    ancestors = engine.evaluate(Alpha(Rel("parent")))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Mapping, Tuple

from repro.core.condensation import CondensedIndex
from repro.errors import ReproError
from repro.graph.digraph import DiGraph
from repro.storage.relation import BinaryRelation

Pair = Tuple[object, object]
PairSet = FrozenSet[Pair]


class Expression:
    """Base class for algebra expressions (a small immutable AST)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(repr(value) for value in self.__dict__.values())
        return f"{type(self).__name__}({fields})"


@dataclass(frozen=True, repr=False)
class Rel(Expression):
    """A named base relation."""

    name: str


@dataclass(frozen=True, repr=False)
class Union(Expression):
    """Set union of two expressions."""

    left: Expression
    right: Expression


@dataclass(frozen=True, repr=False)
class Difference(Expression):
    """Tuples of ``left`` not in ``right``."""

    left: Expression
    right: Expression


@dataclass(frozen=True, repr=False)
class Intersect(Expression):
    """Tuples in both operands."""

    left: Expression
    right: Expression


@dataclass(frozen=True, repr=False)
class Compose(Expression):
    """Relational composition: ``{(a, c) | (a, b) in left, (b, c) in right}``."""

    left: Expression
    right: Expression


@dataclass(frozen=True, repr=False)
class Inverse(Expression):
    """Column swap: ``{(b, a) | (a, b) in operand}``."""

    operand: Expression


@dataclass(frozen=True, repr=False)
class Select(Expression):
    """Filter by a tuple predicate.

    ``predicate`` receives ``(source, destination)`` and returns a bool.
    Predicates make expressions unhashable for caching purposes, which is
    fine — only ``Alpha`` nodes are cached.
    """

    operand: Expression
    predicate: Callable[[object, object], bool]

    def __hash__(self) -> int:  # predicates are compared by identity
        return hash((id(self.predicate), self.operand))


@dataclass(frozen=True, repr=False)
class Steps(Expression):
    """Bounded closure: pairs connected by a path of 1..k operand steps.

    ``Steps(R, 1)`` is ``R`` itself; ``Steps(R, 2)`` adds two-hop paths;
    as ``k`` grows the result converges to ``AlphaPlus(R)``.  The
    "within N hops" query shape of routing and BOM depth limits.
    """

    operand: Expression
    k: int


@dataclass(frozen=True, repr=False)
class Alpha(Expression):
    """Reflexive-on-domain transitive closure of the operand.

    Follows the paper's convention: every value appearing in the operand
    reaches itself, so ``(v, v)`` is included for every domain value.
    """

    operand: Expression


@dataclass(frozen=True, repr=False)
class AlphaPlus(Expression):
    """Strict (irreflexive) transitive closure: ``(v, v)`` only via a cycle."""

    operand: Expression


class AlgebraEngine:
    """Evaluate algebra expressions against a catalogue of base relations."""

    def __init__(self, relations: Mapping[str, BinaryRelation]) -> None:
        self.relations: Dict[str, BinaryRelation] = dict(relations)

    def register(self, name: str, relation: BinaryRelation) -> None:
        """Add or replace a base relation."""
        self.relations[name] = relation

    def evaluate(self, expression: Expression) -> PairSet:
        """Evaluate ``expression`` to a frozen set of (source, destination)."""
        cache: Dict[Expression, PairSet] = {}
        return self._evaluate(expression, cache)

    def _evaluate(self, expression: Expression,
                  cache: Dict[Expression, PairSet]) -> PairSet:
        if isinstance(expression, Rel):
            try:
                relation = self.relations[expression.name]
            except KeyError:
                raise ReproError(
                    f"unknown relation {expression.name!r}; "
                    f"known: {sorted(self.relations)}") from None
            return frozenset(relation)
        if isinstance(expression, Union):
            return self._evaluate(expression.left, cache) | \
                self._evaluate(expression.right, cache)
        if isinstance(expression, Difference):
            return self._evaluate(expression.left, cache) - \
                self._evaluate(expression.right, cache)
        if isinstance(expression, Intersect):
            return self._evaluate(expression.left, cache) & \
                self._evaluate(expression.right, cache)
        if isinstance(expression, Inverse):
            return frozenset((b, a) for a, b
                             in self._evaluate(expression.operand, cache))
        if isinstance(expression, Select):
            return frozenset(pair for pair
                             in self._evaluate(expression.operand, cache)
                             if expression.predicate(*pair))
        if isinstance(expression, Compose):
            left = self._evaluate(expression.left, cache)
            right = self._evaluate(expression.right, cache)
            by_source: Dict[object, list] = {}
            for source, destination in right:
                by_source.setdefault(source, []).append(destination)
            return frozenset((a, c) for a, b in left
                             for c in by_source.get(b, ()))
        if isinstance(expression, Steps):
            if expression.k < 1:
                raise ReproError(f"Steps needs k >= 1, got {expression.k}")
            base = self._evaluate(expression.operand, cache)
            by_source: Dict[object, list] = {}
            for source, destination in base:
                by_source.setdefault(source, []).append(destination)
            result = set(base)
            frontier = set(base)
            for _ in range(expression.k - 1):
                frontier = {(a, c) for a, b in frontier
                            for c in by_source.get(b, ())} - result
                if not frontier:
                    break
                result |= frontier
            return frozenset(result)
        if isinstance(expression, (Alpha, AlphaPlus)):
            if expression in cache:
                return cache[expression]
            result = self._closure(
                self._evaluate(expression.operand, cache),
                strict=isinstance(expression, AlphaPlus))
            cache[expression] = result
            return result
        raise ReproError(f"unknown expression type {type(expression).__name__}")

    @staticmethod
    def _closure(pairs: PairSet, *, strict: bool) -> PairSet:
        """Transitive closure of an arbitrary (possibly cyclic) pair set.

        The compressed-closure machinery does the work: the pair set
        becomes a graph, SCCs collapse, the interval index answers the
        pair enumeration.
        """
        graph = DiGraph()
        for source, destination in pairs:
            if source == destination:
                continue  # reflexivity handled by the semantics below
            graph.add_arc(source, destination)
        for source, destination in pairs:
            graph.add_node(source)
            graph.add_node(destination)
        index = CondensedIndex.build(graph)
        closure = set()
        self_loops = {source for source, destination in pairs
                      if source == destination}
        for node in graph:
            for reached in index.successors(node):
                if node != reached:
                    closure.add((node, reached))
                elif not strict:
                    closure.add((node, node))
                elif len(index.component_of(node)) > 1 or node in self_loops:
                    # Strict closure keeps (v, v) only for real cycles.
                    closure.add((node, node))
        return frozenset(closure)


# ----------------------------------------------------------------------
# convenience formulations of the classic recursive queries
# ----------------------------------------------------------------------
def ancestors_query(relation_name: str) -> Expression:
    """``Alpha(R)`` read as "all (descendant, ancestor)" after inversion."""
    return Inverse(Alpha(Rel(relation_name)))


def reachable_within(relation_name: str,
                     predicate: Callable[[object, object], bool]) -> Expression:
    """Closure restricted by a tuple predicate applied *after* closure."""
    return Select(Alpha(Rel(relation_name)), predicate)


def same_generation_seed(relation_name: str) -> Expression:
    """``Compose(Inverse(R), R)`` — siblings sharing an immediate source."""
    return Compose(Inverse(Rel(relation_name)), Rel(relation_name))
