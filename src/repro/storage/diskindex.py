"""A binary on-disk format for the compressed closure, with real file I/O.

Where :mod:`repro.storage.pager` *simulates* secondary storage, this
module actually writes the index to disk and serves queries by reading
pages from the file through an LRU buffer pool — the deployment shape
Section 2.2 has in mind for large relations ("the information will reside
on secondary storage").

File layout (little-endian)::

    header     magic 'RTCX', format version, page size, node count,
               heap interval count, section offsets
    labels     JSON array mapping node id -> label (loaded at open)
    numbers    node-id-ordered u64 postorder numbers (loaded at open)
    directory  per node: u64 heap offset + u32 interval count (loaded)
    heap       the interval pairs (u64 lo, u64 hi), page-aligned,
               *read on demand* through the buffer pool

The in-memory footprint at query time is the node directory (O(n)); the
interval heap — the part that is O(closure) — stays on disk, and
``pool.counters`` reports exactly how many pages each query load touched.
"""

from __future__ import annotations

import io
import json
import struct
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.core.index import IntervalTCIndex
from repro.durability.atomic import atomic_write_bytes
from repro.errors import CorruptFileError, NodeNotFoundError, StorageError
from repro.graph.digraph import Node
from repro.storage.pager import BufferPool

MAGIC = b"RTCX"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sIIQQQQQ")   # magic, version, page, nodes,
                                        # intervals, labels_off, numbers_off,
                                        # directory_off (heap starts page-aligned
                                        # right after the directory)
_DIRECTORY_ENTRY = struct.Struct("<QI")
_INTERVAL = struct.Struct("<QQ")
_NUMBER = struct.Struct("<Q")

PathLike = Union[str, Path]


def write_index(index: IntervalTCIndex, path: PathLike, *,
                page_size: int = 4096) -> int:
    """Serialise ``index`` into the binary format; returns bytes written.

    Node labels must be JSON-representable.  Interval end-points must be
    non-negative (postorder numbers always are).
    """
    if page_size < _INTERVAL.size:
        raise StorageError(f"page_size {page_size} cannot hold one interval")
    if getattr(index, "numbering", "integer") != "integer":
        raise StorageError(
            "the RTCX binary format stores u64 labels; serialise "
            "fractional-numbered indexes with repro.core.serialize instead")
    nodes = list(index.nodes())
    labels_blob = json.dumps(nodes).encode("utf-8")

    numbers_blob = b"".join(_NUMBER.pack(index.postorder[node]) for node in nodes)

    directory = io.BytesIO()
    heap = io.BytesIO()
    heap_count = 0
    for node in nodes:
        intervals = index.intervals[node]
        directory.write(_DIRECTORY_ENTRY.pack(heap_count, len(intervals)))
        for lo, hi in intervals:
            if lo < 0:
                raise StorageError(f"negative interval bound {lo} at {node!r}")
            heap.write(_INTERVAL.pack(lo, hi))
            heap_count += 1

    labels_offset = _HEADER.size
    numbers_offset = labels_offset + len(labels_blob)
    directory_offset = numbers_offset + len(numbers_blob)
    heap_offset = directory_offset + directory.getbuffer().nbytes
    # Page-align the heap so page ids map directly onto file pages.
    padding = (-heap_offset) % page_size
    heap_offset += padding

    header = _HEADER.pack(MAGIC, FORMAT_VERSION, page_size, len(nodes),
                          heap_count, labels_offset, numbers_offset,
                          directory_offset)
    blob = b"".join([header, labels_blob, numbers_blob,
                     directory.getvalue(), b"\0" * padding, heap.getvalue()])
    atomic_write_bytes(path, blob)
    return len(blob)


class DiskIntervalIndex:
    """Query a compressed closure straight from its binary file.

    >>> written = write_index(index, "closure.rtcx")     # doctest: +SKIP
    >>> disk = DiskIntervalIndex.open("closure.rtcx")    # doctest: +SKIP
    >>> disk.reachable("a", "b")                         # doctest: +SKIP

    Only the node directory lives in memory; interval pages are fetched
    through the :class:`~repro.storage.pager.BufferPool` given at
    :meth:`open`, whose counters expose the I/O cost of a query load.
    """

    def __init__(self, file: io.BufferedIOBase, *, page_size: int,
                 labels: List[Node], numbers: List[int],
                 directory: List[Tuple[int, int]], heap_offset: int,
                 heap_count: int, pool: BufferPool) -> None:
        self._file = file
        self.page_size = page_size
        self._id_of: Dict[Node, int] = {label: i for i, label in enumerate(labels)}
        self._labels = labels
        self._numbers = numbers
        self._node_of_number = {number: labels[i]
                                for i, number in enumerate(numbers)}
        self._sorted_numbers = sorted(self._node_of_number)
        self._directory = directory
        self._heap_offset = heap_offset
        self._heap_count = heap_count
        self.pool = pool
        self._page_cache: Dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: PathLike, *, pool: Optional[BufferPool] = None) -> "DiskIntervalIndex":
        """Open a file written by :func:`write_index`."""
        file = open(path, "rb")
        raw = file.read(_HEADER.size)
        if len(raw) < _HEADER.size:
            file.close()
            raise CorruptFileError(path, "truncated header")
        (magic, version, page_size, num_nodes, heap_count,
         labels_offset, numbers_offset, directory_offset) = _HEADER.unpack(raw)
        if magic != MAGIC:
            file.close()
            raise CorruptFileError(path, "not an RTCX index file")
        if version != FORMAT_VERSION:
            file.close()
            raise CorruptFileError(
                path, f"unsupported format version {version}")

        # A file that passes header validation can still be truncated or
        # damaged in its body: short section reads surface as
        # ``struct.error``, a garbled label section as a JSON error.
        try:
            file.seek(labels_offset)
            labels = json.loads(file.read(numbers_offset - labels_offset))
            labels = [tuple(label) if isinstance(label, list) else label
                      for label in labels]
            numbers = [
                _NUMBER.unpack(file.read(_NUMBER.size))[0]
                for _ in range(num_nodes)
            ]
            directory = [
                _DIRECTORY_ENTRY.unpack(file.read(_DIRECTORY_ENTRY.size))
                for _ in range(num_nodes)
            ]
        except (struct.error, ValueError, UnicodeDecodeError,
                TypeError) as error:
            file.close()
            raise CorruptFileError(
                path,
                f"damaged body ({type(error).__name__}: {error})"
            ) from error
        heap_offset = directory_offset + num_nodes * _DIRECTORY_ENTRY.size
        heap_offset += (-heap_offset) % page_size
        return cls(file, page_size=page_size, labels=labels, numbers=numbers,
                   directory=directory, heap_offset=heap_offset,
                   heap_count=heap_count,
                   pool=pool or BufferPool(capacity_pages=64))

    def close(self) -> None:
        """Close the underlying file."""
        self._file.close()

    def __enter__(self) -> "DiskIntervalIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # paged heap access
    # ------------------------------------------------------------------
    def _read_page(self, page_id: int) -> bytes:
        hit = self.pool.access(page_id)
        if hit and page_id in self._page_cache:
            return self._page_cache[page_id]
        self._file.seek(self._heap_offset + page_id * self.page_size)
        data = self._file.read(self.page_size)
        # Mirror the pool's residency so evicted pages really re-read.
        self._page_cache[page_id] = data
        if len(self._page_cache) > self.pool.capacity_pages:
            for cached in list(self._page_cache):
                if cached != page_id and len(self._page_cache) > self.pool.capacity_pages:
                    del self._page_cache[cached]
        return data

    def _intervals_of(self, node: Node) -> List[Tuple[int, int]]:
        try:
            node_id = self._id_of[node]
        except KeyError:
            raise NodeNotFoundError(node) from None
        offset, count = self._directory[node_id]
        intervals: List[Tuple[int, int]] = []
        per_page = self.page_size // _INTERVAL.size
        for position in range(offset, offset + count):
            page_id, slot = divmod(position, per_page)
            page = self._read_page(page_id)
            start = slot * _INTERVAL.size
            intervals.append(_INTERVAL.unpack_from(page, start))
        return intervals

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._id_of

    def __len__(self) -> int:
        return len(self._labels)

    def postorder_of(self, node: Node) -> int:
        """The stored postorder number of ``node``."""
        try:
            return self._numbers[self._id_of[node]]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def reachable(self, source: Node, destination: Node) -> bool:
        """Reflexive reachability straight off the file pages."""
        number = self.postorder_of(destination)
        for lo, hi in self._intervals_of(source):
            if lo <= number <= hi:
                return True
            if lo > number:
                break  # intervals are sorted by lo
        return False

    def successors(self, source: Node, *, reflexive: bool = True) -> Set[Node]:
        """Decode the successor set of ``source`` from its disk intervals."""
        from bisect import bisect_left, bisect_right
        result: Set[Node] = set()
        for lo, hi in self._intervals_of(source):
            start = bisect_left(self._sorted_numbers, lo)
            stop = bisect_right(self._sorted_numbers, hi)
            for position in range(start, stop):
                result.add(self._node_of_number[self._sorted_numbers[position]])
        if not reflexive:
            result.discard(source)
        return result

    @property
    def heap_pages(self) -> int:
        """Number of heap pages in the file."""
        per_page = self.page_size // _INTERVAL.size
        return (self._heap_count + per_page - 1) // per_page

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DiskIntervalIndex(nodes={len(self._labels)}, "
                f"intervals={self._heap_count}, pages={self.heap_pages})")
