"""The paper's storage-accounting model (Section 3.3).

All of Figures 3.9-3.12 measure *storage units*:

* the **original relation** and the **full transitive closure** cost one
  unit per stored successor (i.e. per tuple);
* the **compressed closure** costs two units per interval ("we have
  computed the storage required for the compressed closure as twice the
  number of intervals required at each node to obtain baseline
  performance");
* the **inverse closure** costs one unit per stored non-reachable pair.

This module turns any of the library's structures into those unit counts
and produces the relative ("multiple of the original relation") series the
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.baselines.full_closure import FullTCIndex
from repro.baselines.inverse_closure import InverseTCIndex
from repro.core.index import IntervalTCIndex
from repro.graph.digraph import DiGraph


def relation_units(graph: DiGraph) -> int:
    """Storage of the base relation: one unit per arc."""
    return graph.num_arcs


def full_closure_units(closure: FullTCIndex) -> int:
    """Storage of the materialised closure: one unit per pair."""
    return closure.storage_units


def compressed_closure_units(index: IntervalTCIndex) -> int:
    """Storage of the compressed closure: two units per interval."""
    return index.storage_units


def inverse_closure_units(inverse: InverseTCIndex) -> int:
    """Storage of the inverse closure: one unit per non-reachable pair."""
    return inverse.storage_units


@dataclass(frozen=True)
class StorageComparison:
    """One figure data point: absolute units and multiples of the relation."""

    num_nodes: int
    num_arcs: int
    relation: int
    full_closure: int
    compressed: int
    inverse: Optional[int] = None

    @property
    def full_multiple(self) -> float:
        """Full closure size as a multiple of the original relation."""
        return self.full_closure / self.relation if self.relation else float("nan")

    @property
    def compressed_multiple(self) -> float:
        """Compressed closure size as a multiple of the original relation."""
        return self.compressed / self.relation if self.relation else float("nan")

    @property
    def inverse_multiple(self) -> Optional[float]:
        """Inverse closure size as a multiple of the original relation."""
        if self.inverse is None:
            return None
        return self.inverse / self.relation if self.relation else float("nan")

    @property
    def compression_ratio(self) -> float:
        """Full closure units per compressed unit (bigger = better)."""
        return self.full_closure / self.compressed if self.compressed else float("inf")

    def as_dict(self) -> Dict[str, object]:
        """Flat dict for report tables."""
        row: Dict[str, object] = {
            "nodes": self.num_nodes,
            "arcs": self.num_arcs,
            "relation": self.relation,
            "full_closure": self.full_closure,
            "compressed": self.compressed,
            "full_multiple": round(self.full_multiple, 3),
            "compressed_multiple": round(self.compressed_multiple, 3),
        }
        if self.inverse is not None:
            row["inverse"] = self.inverse
            row["inverse_multiple"] = round(self.inverse_multiple, 3)
        return row


def compare_storage(graph: DiGraph, *, policy: str = "alg1", gap: int = 1,
                    merge: bool = False,
                    include_inverse: bool = False) -> StorageComparison:
    """Measure one graph under the paper's three (or four) structures.

    ``gap=1`` matches the figures (contiguous postorder numbers); larger
    gaps change nothing in unit counts but are not what the paper plots.
    """
    closure = FullTCIndex.build(graph)
    index = IntervalTCIndex.build(graph, policy=policy, gap=gap, merge=merge)
    inverse_units: Optional[int] = None
    if include_inverse:
        inverse_units = InverseTCIndex.build(graph).storage_units
    return StorageComparison(
        num_nodes=graph.num_nodes,
        num_arcs=graph.num_arcs,
        relation=relation_units(graph),
        full_closure=full_closure_units(closure),
        compressed=compressed_closure_units(index),
        inverse=inverse_units,
    )
