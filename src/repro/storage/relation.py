"""Binary relations and the closure as a materialised view.

Section 2 motivates the whole paper with *view materialisation*: "the
problem of managing views which are the transitive closure of some
relationship is of considerable interest".  This module provides that
database framing:

* :class:`BinaryRelation` — a two-column table of ``(source,
  destination)`` tuples with the usual relational operations;
* :class:`MaterializedClosureView` — the transitive closure of a relation
  kept permanently in sync through the paper's Section 4 incremental
  algorithms, so that closure queries are index lookups instead of
  recursive query evaluation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Set, Tuple

from repro.core.index import DEFAULT_GAP, IntervalTCIndex
from repro.errors import GraphError
from repro.graph.digraph import DiGraph, Node

Tuple2 = Tuple[Node, Node]


class BinaryRelation:
    """A set-semantics table with ``source`` and ``destination`` columns."""

    def __init__(self, tuples: Iterable[Tuple2] = ()) -> None:
        self._tuples: Set[Tuple2] = set()
        for source, destination in tuples:
            self.insert(source, destination)

    def insert(self, source: Node, destination: Node) -> bool:
        """Add a tuple; returns ``False`` when it was already present."""
        if source == destination:
            raise GraphError("relation tuples must relate distinct values")
        before = len(self._tuples)
        self._tuples.add((source, destination))
        return len(self._tuples) != before

    def delete(self, source: Node, destination: Node) -> bool:
        """Remove a tuple; returns ``False`` when it was absent."""
        try:
            self._tuples.remove((source, destination))
        except KeyError:
            return False
        return True

    def __contains__(self, pair: Tuple2) -> bool:
        return pair in self._tuples

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple2]:
        return iter(self._tuples)

    def sources(self) -> Set[Node]:
        """Distinct values of the source column."""
        return {source for source, _ in self._tuples}

    def destinations(self) -> Set[Node]:
        """Distinct values of the destination column."""
        return {destination for _, destination in self._tuples}

    def domain(self) -> Set[Node]:
        """All values appearing in either column."""
        return self.sources() | self.destinations()

    def select_by_source(self, source: Node) -> List[Tuple2]:
        """All tuples with the given source (a relational selection)."""
        return [pair for pair in self._tuples if pair[0] == source]

    def select_by_destination(self, destination: Node) -> List[Tuple2]:
        """All tuples with the given destination."""
        return [pair for pair in self._tuples if pair[1] == destination]

    def to_graph(self) -> DiGraph:
        """The directed graph induced by the relation (paper, Section 3)."""
        return DiGraph(self._tuples)


class MaterializedClosureView:
    """The transitive closure of a relation, maintained incrementally.

    Every ``insert``/``delete`` on the base relation is pushed through the
    Section 4 update algorithms, so the view is always consistent and
    closure queries never recompute anything.

    >>> view = MaterializedClosureView.over(BinaryRelation([("a", "b")]))
    >>> view.insert("b", "c")
    >>> view.query("a", "c")
    True
    """

    def __init__(self, relation: BinaryRelation, index: IntervalTCIndex) -> None:
        self.relation = relation
        self._index = index

    @classmethod
    def over(cls, relation: BinaryRelation, *, gap: int = DEFAULT_GAP,
             merge: bool = False) -> "MaterializedClosureView":
        """Materialise the closure view of an existing relation."""
        index = IntervalTCIndex.build(relation.to_graph(), gap=gap, merge=merge)
        return cls(relation, index)

    # ------------------------------------------------------------------
    # base-relation updates, propagated incrementally
    # ------------------------------------------------------------------
    def insert(self, source: Node, destination: Node) -> None:
        """Insert a base tuple and propagate it into the view."""
        if not self.relation.insert(source, destination):
            return
        known_source = source in self._index
        known_destination = destination in self._index
        if known_source and known_destination:
            self._index.add_arc(source, destination)
        elif known_source:
            self._index.add_node(destination, parents=[source])
        elif known_destination:
            # New source value: hang it off the virtual root, then run the
            # ordinary non-tree arc propagation for its one outgoing arc.
            self._index.add_node(source)
            self._index.add_arc(source, destination)
        else:
            self._index.add_node(source)
            self._index.add_node(destination, parents=[source])

    def delete(self, source: Node, destination: Node) -> None:
        """Delete a base tuple and retract it from the view.

        Values that no longer appear in any tuple are dropped from the
        index as well, keeping the view's domain equal to the relation's.
        """
        if not self.relation.delete(source, destination):
            return
        self._index.remove_arc(source, destination)
        for value in (source, destination):
            if not self.relation.select_by_source(value) and \
                    not self.relation.select_by_destination(value):
                self._index.remove_node(value)

    # ------------------------------------------------------------------
    # view queries
    # ------------------------------------------------------------------
    def query(self, source: Node, destination: Node) -> bool:
        """Is ``(source, destination)`` in the closure view?  (Reflexive.)"""
        if source not in self._index or destination not in self._index:
            return source == destination and (
                source in self._index or source in self.relation.domain()
            )
        return self._index.reachable(source, destination)

    def successors(self, source: Node) -> Set[Node]:
        """All destinations transitively related to ``source``."""
        return self._index.successors(source)

    @property
    def storage_units(self) -> int:
        """Paper units of the materialised view."""
        return self._index.storage_units

    @property
    def index(self) -> IntervalTCIndex:
        """The underlying interval index (read-mostly; prefer view methods)."""
        return self._index
