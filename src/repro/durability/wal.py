"""Write-ahead log of the Section 4 update operations.

The paper's update algorithms are already an operation language —
``add_node``, ``add_arc``, ``remove_arc``, ``remove_node``,
``renumber``, ``merge`` — and replaying that stream through the real
algorithms reproduces the index state exactly.  So the durable unit is
the op stream itself: every acknowledged mutation is appended here
*after* it succeeds in memory, and recovery replays the tail that the
newest checkpoint does not cover.

Record layout (little-endian)::

    u32  payload length
    u32  CRC-32 of the payload
    payload: UTF-8 JSON array  [seq, kind, ...args]

Sequence numbers are global to the store, start at 1, and must be
contiguous within and across segments.  The framing gives the two
properties recovery relies on:

* a **torn tail** (the file ends inside a record, or a length prefix
  claims more bytes than remain) is recognised by construction and
  truncated — only the final un-fsynced batch can be lost;
* **corruption** (a complete record whose checksum does not match, an
  undecodable payload, a sequence jump) is distinguishable from a torn
  tail and raises :class:`~repro.errors.CorruptFileError` — a damaged
  log never silently drops interior operations.

Appends are fsync-batched: :class:`WalWriter` calls ``fsync`` every
``fsync_every`` records (1 = every record is durable before the call
returns).  The store forces a sync before each checkpoint and on close.
"""

from __future__ import annotations

import json
import struct
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple

from repro.durability.atomic import REAL_FS, RealFS
from repro.errors import CorruptFileError, PersistenceError

#: Per-record framing: payload byte length, CRC-32 of the payload.
RECORD_HEADER = struct.Struct("<II")

#: Op kinds a WAL may contain (the Section 4 update language).
WAL_OP_KINDS = frozenset(
    {"add_node", "add_arc", "remove_arc", "remove_node", "renumber",
     "merge"})


def encode_record(seq: int, op: List) -> bytes:
    """Frame one operation: length + CRC + JSON payload ``[seq, *op]``."""
    payload = json.dumps([seq] + list(op),
                         separators=(",", ":")).encode("utf-8")
    return RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload


@dataclass
class WalScan:
    """The readable prefix of one WAL segment.

    ``records`` holds ``(seq, op)`` pairs; ``valid_bytes`` is the offset
    where clean framing ends, and ``torn_bytes`` how many trailing bytes
    belong to an incomplete final record (0 for a clean file).
    """

    path: str
    records: List[Tuple[int, list]] = field(default_factory=list)
    valid_bytes: int = 0
    torn_bytes: int = 0

    @property
    def last_seq(self) -> Optional[int]:
        return self.records[-1][0] if self.records else None


def scan_wal(path) -> WalScan:
    """Parse a segment, stopping cleanly at a torn tail.

    Raises :class:`CorruptFileError` on interior damage: a checksum
    mismatch on a complete record, an undecodable payload, or a
    non-contiguous sequence number.
    """
    data = Path(path).read_bytes()
    scan = WalScan(path=str(path))
    size = len(data)
    offset = 0
    while offset < size:
        if size - offset < RECORD_HEADER.size:
            scan.torn_bytes = size - offset
            return scan
        length, crc = RECORD_HEADER.unpack_from(data, offset)
        start = offset + RECORD_HEADER.size
        if length > size - start:
            # The write stopped partway through this record (or its
            # length prefix was damaged past the point of framing):
            # everything from here on is an unreadable tail.
            scan.torn_bytes = size - offset
            return scan
        payload = data[start:start + length]
        if zlib.crc32(payload) != crc:
            raise CorruptFileError(
                path, f"checksum mismatch in record at byte {offset}")
        try:
            decoded = json.loads(payload.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise CorruptFileError(
                path,
                f"undecodable record at byte {offset}: {error}") from error
        if (not isinstance(decoded, list) or len(decoded) < 2
                or not isinstance(decoded[0], int)):
            raise CorruptFileError(
                path, f"malformed record structure at byte {offset}")
        seq, op = decoded[0], decoded[1:]
        previous = scan.last_seq
        if previous is not None and seq != previous + 1:
            raise CorruptFileError(
                path, f"sequence jump {previous} -> {seq} at byte {offset}")
        scan.records.append((seq, op))
        offset = start + length
        scan.valid_bytes = offset
    return scan


def truncate_torn_tail(path, valid_bytes: int) -> int:
    """Drop a torn final record before re-opening a segment for append.

    Returns the number of bytes removed.  Called by recovery with the
    ``valid_bytes`` of a :func:`scan_wal` result.
    """
    size = Path(path).stat().st_size
    if size <= valid_bytes:
        return 0
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
    return size - valid_bytes


class WalWriter:
    """Append operations to one segment with batched fsync.

    Doubles as the journal sink the index mutators call: its
    :meth:`append` signature is the ``journal.append(op)`` protocol of
    :class:`~repro.core.index.IntervalTCIndex`.
    """

    def __init__(self, path, *, next_seq: int, fsync_every: int = 1,
                 fs: Optional[RealFS] = None) -> None:
        if next_seq < 1:
            raise PersistenceError(f"next_seq must be >= 1, got {next_seq}")
        if fsync_every < 1:
            raise PersistenceError(
                f"fsync_every must be >= 1, got {fsync_every}")
        self.path = str(path)
        self.fsync_every = fsync_every
        self._fs = fs or REAL_FS
        self._handle = self._fs.open_append(self.path)
        self._next_seq = next_seq
        self._pending = 0
        #: Records appended through this writer (monitoring only).
        self.appended = 0
        #: Optional :class:`repro.obs.instrument.WalInstruments`; ``None``
        #: keeps the hot path free of metric calls.
        self.metrics = None

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._next_seq - 1

    @property
    def pending(self) -> int:
        """Appended records not yet covered by an fsync."""
        return self._pending

    def append(self, op: List) -> int:
        """Frame, write and (per policy) sync one op; returns its seq."""
        if self._handle is None:
            raise PersistenceError(f"{self.path}: WAL writer is closed")
        seq = self._next_seq
        record = encode_record(seq, op)
        fs = self._fs
        metrics = self.metrics
        started = time.perf_counter_ns() if metrics is not None else 0
        fs.crash_point("wal.append.pre-write")
        fs.write(self._handle, record, label="wal.append")
        self._next_seq += 1
        self._pending += 1
        self.appended += 1
        if metrics is not None:
            metrics.append_total.inc()
            metrics.append_seconds.observe_ns(
                time.perf_counter_ns() - started)
            metrics.pending.set(self._pending)
        fs.crash_point("wal.append.pre-sync")
        if self._pending >= self.fsync_every:
            self.sync()
            fs.crash_point("wal.append.post-sync")
        return seq

    def sync(self) -> None:
        """Force the pending batch to stable storage."""
        if self._handle is not None and self._pending:
            metrics = self.metrics
            started = time.perf_counter_ns() if metrics is not None else 0
            self._fs.fsync(self._handle)
            self._pending = 0
            if metrics is not None:
                metrics.fsync_total.inc()
                metrics.fsync_seconds.observe_ns(
                    time.perf_counter_ns() - started)
                metrics.pending.set(0)

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._fs.close(self._handle)
            self._handle = None

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
