"""Atomic, fsync-disciplined file primitives shared by every writer.

Two things live here, deliberately free of any other ``repro`` imports:

* :class:`RealFS` — a thin indirection over the ``os`` file API.  All
  durability-sensitive writes (WAL appends, checkpoint publication, the
  plain JSON/RTCX savers) go through one of these objects, so the
  crash-injection shim (:class:`repro.testing.faults.FaultyFS`) can tear
  writes, drop renames, and kill the "process" at registered crash
  points by substituting itself.  On the real implementation every
  ``crash_point`` call is a no-op.
* :func:`atomic_write_bytes` — the one way any module in this repository
  replaces a file: write to a temporary sibling, fsync it, ``rename``
  over the target, fsync the directory.  A crash at any instant leaves
  either the complete old file or the complete new file, never a torn
  mixture — which is exactly the property the previous bare
  ``open().write()`` savers lacked.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional

from repro.errors import SimulatedCrash


class RealFS:
    """The production filesystem: direct calls, no faults.

    ``label`` arguments name the logical write site (``"wal.append"``,
    ``"checkpoint.temp"``, ...); the fault shim uses them to aim torn
    writes.  They are ignored here.
    """

    def crash_point(self, name: str) -> None:
        """A registered crash site; the fault shim may kill here."""

    def open_append(self, path: str):
        return open(path, "ab")

    def open_write(self, path: str):
        return open(path, "wb")

    def write(self, handle, data: bytes, *, label: str = "") -> None:
        handle.write(data)

    def fsync(self, handle) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def close(self, handle) -> None:
        handle.close()

    def replace(self, source: str, destination: str, *,
                label: str = "") -> None:
        os.replace(source, destination)

    def remove(self, path: str) -> None:
        os.remove(path)

    def fsync_dir(self, path: str) -> None:
        """Best-effort directory fsync (not supported everywhere)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-specific
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-specific
            pass
        finally:
            os.close(fd)


#: Shared default instance; durability code does ``fs = fs or REAL_FS``.
REAL_FS = RealFS()


def atomic_write_bytes(path, data: bytes, *, fs: Optional[RealFS] = None,
                       label: str = "save", durable: bool = True) -> None:
    """Replace ``path`` with ``data`` atomically (temp + fsync + rename).

    ``label`` names the crash points (``<label>.pre-temp``,
    ``<label>.temp`` writes, ``<label>.pre-rename``,
    ``<label>.post-rename``) for the fault shim.  ``durable=False`` skips
    the fsyncs (still atomic against concurrent readers, but not against
    power loss) — used by tests that only need the rename semantics.
    """
    fs = fs or REAL_FS
    target = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(target)) or "."
    fd, temp = tempfile.mkstemp(
        prefix=os.path.basename(target) + ".", suffix=".tmp", dir=directory)
    os.close(fd)
    try:
        fs.crash_point(label + ".pre-temp")
        handle = fs.open_write(temp)
        try:
            fs.write(handle, data, label=label + ".temp")
            if durable:
                fs.fsync(handle)
        finally:
            fs.close(handle)
        fs.crash_point(label + ".pre-rename")
        fs.replace(temp, target, label=label)
        fs.crash_point(label + ".post-rename")
        if durable:
            fs.fsync_dir(directory)
    except SimulatedCrash:
        # The simulated process is dead: leave the temp file exactly as
        # the crash left it so recovery sees a realistic directory.
        raise
    except BaseException:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def atomic_write_text(path, text: str, *, fs: Optional[RealFS] = None,
                      label: str = "save", durable: bool = True) -> None:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fs=fs, label=label,
                       durable=durable)
