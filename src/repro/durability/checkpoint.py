"""Atomic checkpoints of the index state, versioned and checksummed.

A checkpoint is the JSON snapshot the plain savers already produce
(:func:`~repro.core.serialize.index_to_dict` /
:func:`~repro.core.serialize.hybrid_to_dict`) wrapped in a small header
and published atomically (temp + fsync + rename via
:func:`~repro.durability.atomic.atomic_write_bytes`).  The header
carries:

* ``format_version`` — readers reject unknown versions;
* ``engine`` — ``"interval"`` or ``"hybrid"``, so recovery rebuilds the
  right class;
* ``wal_seq`` — the last WAL sequence number folded into the payload;
  recovery replays strictly newer records on top;
* ``payload_crc`` — CRC-32 of the canonical payload encoding, so a
  bit-flipped generation is detected and skipped rather than loaded.

File names encode the covered sequence number
(``checkpoint-<seq:016d>.json``), which both orders generations and
lets rotation decide, without opening anything, which WAL segments are
still needed: a segment may be deleted only when every record in it is
``<=`` the *oldest retained* checkpoint's ``wal_seq`` — keeping enough
log to fall back a full generation when the newest checkpoint fails its
checksum.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.durability.atomic import RealFS, atomic_write_bytes
from repro.errors import CorruptFileError, ReproError

CHECKPOINT_KIND = "durable-checkpoint"
CHECKPOINT_FORMAT_VERSION = 1
CHECKPOINT_PREFIX = "checkpoint-"
CHECKPOINT_SUFFIX = ".json"
#: Optional zero-copy sidecar next to a generation: the engine's frozen
#: snapshot in RTCF form (see :mod:`repro.core.rtcf`), so readers can
#: ``mmap`` the checkpointed closure without replaying or rebuilding.
SIDECAR_SUFFIX = ".rtcf"
WAL_PREFIX = "wal-"
WAL_SUFFIX = ".log"


def checkpoint_name(wal_seq: int) -> str:
    return f"{CHECKPOINT_PREFIX}{wal_seq:016d}{CHECKPOINT_SUFFIX}"


def sidecar_path_for(checkpoint_path) -> str:
    """The RTCF sidecar path belonging to a checkpoint path."""
    root = os.fspath(checkpoint_path)
    if root.endswith(CHECKPOINT_SUFFIX):
        root = root[:-len(CHECKPOINT_SUFFIX)]
    return root + SIDECAR_SUFFIX


def wal_name(first_seq: int) -> str:
    return f"{WAL_PREFIX}{first_seq:016d}{WAL_SUFFIX}"


def _parse_generation(name: str, prefix: str, suffix: str) -> Optional[int]:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    stem = name[len(prefix):-len(suffix)]
    if not stem.isdigit():
        return None
    return int(stem)


def list_checkpoints(directory) -> List[Tuple[int, str]]:
    """``(wal_seq, path)`` pairs, ascending by covered sequence."""
    return _list_generations(directory, CHECKPOINT_PREFIX, CHECKPOINT_SUFFIX)


def list_segments(directory) -> List[Tuple[int, str]]:
    """``(first_seq, path)`` pairs for every WAL segment, ascending."""
    return _list_generations(directory, WAL_PREFIX, WAL_SUFFIX)


def _list_generations(directory, prefix: str,
                      suffix: str) -> List[Tuple[int, str]]:
    root = Path(directory)
    found: List[Tuple[int, str]] = []
    if not root.is_dir():
        return found
    for entry in root.iterdir():
        seq = _parse_generation(entry.name, prefix, suffix)
        if seq is not None:
            found.append((seq, str(entry)))
    found.sort()
    return found


def payload_checksum(payload: dict) -> int:
    """CRC-32 over the canonical (sorted, compact) payload encoding."""
    canonical = json.dumps(payload, sort_keys=True,
                           separators=(",", ":")).encode("utf-8")
    return zlib.crc32(canonical)


def engine_document(engine) -> Tuple[str, dict]:
    """``(engine kind, payload)`` for either supported engine class."""
    from repro.core.hybrid import HybridTCIndex
    from repro.core.index import IntervalTCIndex
    from repro.core.serialize import hybrid_to_dict, index_to_dict
    if isinstance(engine, HybridTCIndex):
        return "hybrid", hybrid_to_dict(engine)
    if isinstance(engine, IntervalTCIndex):
        return "interval", index_to_dict(engine)
    raise ReproError(
        f"cannot checkpoint engine of type {type(engine).__name__}")


def write_checkpoint(directory, engine, wal_seq: int, *,
                     fs: Optional[RealFS] = None,
                     frozen_sidecar: bool = False) -> str:
    """Publish one generation atomically; returns its path.

    ``frozen_sidecar=True`` additionally publishes the engine's frozen
    snapshot as ``checkpoint-<seq>.rtcf`` next to the JSON generation,
    with the same atomic-rename discipline and its own per-section
    CRCs.  The sidecar is a read-side convenience — recovery always
    replays from the JSON + WAL, because only those carry the mutable
    state — but a query fleet can ``open_index`` the sidecar and serve
    the checkpointed closure straight off shared mapped pages.
    Fractional-numbered engines skip the sidecar (RTCF is
    integer-only).
    """
    kind, payload = engine_document(engine)
    document = {
        "kind": CHECKPOINT_KIND,
        "format_version": CHECKPOINT_FORMAT_VERSION,
        "engine": kind,
        "wal_seq": wal_seq,
        "payload_crc": payload_checksum(payload),
        "payload": payload,
    }
    path = os.path.join(os.fspath(directory), checkpoint_name(wal_seq))
    atomic_write_bytes(path, json.dumps(document).encode("utf-8"), fs=fs,
                       label="checkpoint")
    if frozen_sidecar:
        from repro.core.rtcf import rtcf_bytes
        index = engine.index if kind == "hybrid" else engine
        if index.numbering != "fractional":
            atomic_write_bytes(sidecar_path_for(path),
                               rtcf_bytes(index.freeze()), fs=fs,
                               label="checkpoint-sidecar")
    return path


def load_checkpoint(path, *, backend: Optional[str] = None):
    """Validate and rebuild one generation.

    Returns ``(engine, wal_seq, engine_kind)``.  Every failure mode —
    unreadable JSON, wrong kind or version, checksum mismatch, a payload
    the deserialisers cannot rebuild — raises
    :class:`~repro.errors.CorruptFileError`; recovery treats that as
    "skip this generation, fall back to an older one".
    """
    from repro.core.serialize import hybrid_from_dict, index_from_dict
    try:
        raw = Path(path).read_bytes()
    except OSError as error:
        raise CorruptFileError(path, f"unreadable: {error}") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise CorruptFileError(path, f"not valid JSON: {error}") from error
    if not isinstance(document, dict) \
            or document.get("kind") != CHECKPOINT_KIND:
        raise CorruptFileError(path, "not a durable-checkpoint document")
    version = document.get("format_version")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CorruptFileError(
            path, f"unsupported checkpoint version {version!r}")
    payload = document.get("payload")
    wal_seq = document.get("wal_seq")
    if not isinstance(payload, dict) or not isinstance(wal_seq, int):
        raise CorruptFileError(path, "missing payload or wal_seq")
    if payload_checksum(payload) != document.get("payload_crc"):
        raise CorruptFileError(path, "payload checksum mismatch")
    kind = document.get("engine")
    try:
        if kind == "hybrid":
            engine = hybrid_from_dict(payload, backend=backend)
        elif kind == "interval":
            engine = index_from_dict(payload)
        else:
            raise CorruptFileError(path, f"unknown engine kind {kind!r}")
    except CorruptFileError:
        raise
    except (ReproError, KeyError, TypeError, ValueError,
            AttributeError) as error:
        raise CorruptFileError(
            path,
            f"payload does not rebuild ({type(error).__name__}: {error})"
        ) from error
    return engine, wal_seq, kind


def rotate(directory, *, keep: int, fs: RealFS) -> Tuple[List[str], List[str]]:
    """Delete stale generations; returns (checkpoints, segments) removed.

    Keeps the newest ``keep`` checkpoints.  A WAL segment is removed
    only when a later segment exists *and* every record it can contain
    is already covered by the oldest retained checkpoint — so even after
    losing the newest generation to corruption, the older one still has
    its full replay tail on disk.
    """
    removed_checkpoints: List[str] = []
    removed_segments: List[str] = []
    checkpoints = list_checkpoints(directory)
    retained = checkpoints[-keep:] if keep > 0 else checkpoints
    for seq, path in checkpoints[:-keep] if keep > 0 else []:
        fs.remove(path)
        removed_checkpoints.append(path)
        sidecar = sidecar_path_for(path)
        if os.path.exists(sidecar):
            fs.remove(sidecar)
    if not retained:
        return removed_checkpoints, removed_segments
    oldest_retained_seq = retained[0][0]
    segments = list_segments(directory)
    for position, (first_seq, path) in enumerate(segments):
        is_last = position == len(segments) - 1
        if is_last:
            break  # the live tail is never deleted
        next_first = segments[position + 1][0]
        if next_first <= oldest_retained_seq + 1:
            fs.remove(path)
            removed_segments.append(path)
    return removed_checkpoints, removed_segments
