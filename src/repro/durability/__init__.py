"""Crash-safe durability: write-ahead log, checkpoints, recovery.

Public surface:

* :class:`~repro.durability.store.DurableTCIndex` — the facade most
  callers want: ``DurableTCIndex.open(path)`` creates or recovers a
  store; mutations are journalled; :meth:`checkpoint` snapshots.
* :func:`~repro.durability.store.log_stats` — read-only durability
  accounting for a store directory.
* :mod:`~repro.durability.wal`, :mod:`~repro.durability.checkpoint`,
  :mod:`~repro.durability.recovery` — the layers underneath.
* :func:`~repro.durability.atomic.atomic_write_bytes` /
  :func:`~repro.durability.atomic.atomic_write_text` — the shared
  temp + fsync + rename helper every saver in the repository uses.

Exports resolve lazily (PEP 562): :mod:`repro.core.serialize` imports
:mod:`repro.durability.atomic` for its savers, while the checkpoint
layer imports serialize's encoders — eager re-exports here would close
that cycle.
"""

from __future__ import annotations

_EXPORTS = {
    "RealFS": "repro.durability.atomic",
    "REAL_FS": "repro.durability.atomic",
    "atomic_write_bytes": "repro.durability.atomic",
    "atomic_write_text": "repro.durability.atomic",
    "WalScan": "repro.durability.wal",
    "WalWriter": "repro.durability.wal",
    "encode_record": "repro.durability.wal",
    "scan_wal": "repro.durability.wal",
    "truncate_torn_tail": "repro.durability.wal",
    "list_checkpoints": "repro.durability.checkpoint",
    "list_segments": "repro.durability.checkpoint",
    "load_checkpoint": "repro.durability.checkpoint",
    "write_checkpoint": "repro.durability.checkpoint",
    "RecoveryReport": "repro.durability.recovery",
    "recover": "repro.durability.recovery",
    "apply_op": "repro.durability.recovery",
    "DurableTCIndex": "repro.durability.store",
    "log_stats": "repro.durability.store",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    import importlib
    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
