"""Crash recovery: newest usable checkpoint + WAL-tail replay.

The recovery contract, in degradation order:

1. Load the newest checkpoint whose header validates and whose payload
   matches its CRC.  Generations that fail validation are *skipped* (and
   counted in the report), falling back to the next-older one — rotation
   keeps the WAL reaching back far enough for that replay.
2. Replay every WAL record with ``seq > checkpoint.wal_seq`` through the
   real Section 4 update algorithms, in order.  Segments entirely covered
   by the checkpoint are skipped without scanning.
3. A **torn final record** — the file ends mid-record — is legal in the
   *last* segment only: it is the signature of a crash between ``write``
   and ``fsync``, and recovery truncates it (reporting the byte count).
   Anywhere else it means interior loss and recovery refuses.
4. Interior damage (checksum mismatch, sequence gap, an op the engine
   rejects) raises a typed error — :class:`~repro.errors.CorruptFileError`
   or :class:`~repro.errors.RecoveryError` — **never** a silently wrong
   index.
5. No usable checkpoint at all is still recoverable when the log reaches
   back to sequence 1: the store replays its entire history from an
   empty engine (``started_empty`` in the report).

Everything recovery learns lands in a :class:`RecoveryReport`, which the
CLI ``recover`` subcommand prints as JSON.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.durability import checkpoint as _checkpoint
from repro.durability import wal as _wal
from repro.errors import (CorruptFileError, RecoveryError, ReproError,
                          SimulatedCrash)


@dataclass
class RecoveryReport:
    """What one recovery pass found and did."""

    directory: str
    engine: str = "interval"
    checkpoint_seq: int = 0
    checkpoint_path: Optional[str] = None
    #: Checkpoint generations skipped as unusable, newest first:
    #: ``(path, reason)`` pairs.
    checkpoints_skipped: List[Tuple[str, str]] = field(default_factory=list)
    ops_replayed: int = 0
    segments_scanned: int = 0
    truncated_bytes: int = 0
    tail_path: Optional[str] = None
    tail_valid_bytes: int = 0
    last_seq: int = 0
    started_empty: bool = False

    @property
    def corruption_detected(self) -> bool:
        """Whether any generation or tail had to be discarded."""
        return bool(self.checkpoints_skipped) or self.truncated_bytes > 0

    def as_dict(self) -> dict:
        """JSON-ready view (the CLI ``recover`` output)."""
        return {
            "directory": self.directory,
            "engine": self.engine,
            "checkpoint_seq": self.checkpoint_seq,
            "checkpoint_path": self.checkpoint_path,
            "checkpoints_skipped": [list(pair)
                                    for pair in self.checkpoints_skipped],
            "ops_replayed": self.ops_replayed,
            "segments_scanned": self.segments_scanned,
            "truncated_bytes": self.truncated_bytes,
            "tail_path": self.tail_path,
            "tail_valid_bytes": self.tail_valid_bytes,
            "last_seq": self.last_seq,
            "started_empty": self.started_empty,
            "corruption_detected": self.corruption_detected,
        }


def apply_op(engine, op: list) -> None:
    """Replay one journalled operation through the real update methods.

    Works on both engine classes.  ``renumber`` and ``merge`` address the
    interval representation, so on a hybrid they go to the write-through
    index underneath (tainting the snapshot — still exact).
    """
    from repro.core.hybrid import HybridTCIndex
    kind = op[0] if op else None
    if kind == "add_node":
        engine.add_node(op[1], op[2])
    elif kind == "add_arc":
        engine.add_arc(op[1], op[2])
    elif kind == "remove_arc":
        engine.remove_arc(op[1], op[2])
    elif kind == "remove_node":
        engine.remove_node(op[1])
    elif kind == "renumber":
        if isinstance(engine, HybridTCIndex):
            engine.index.renumber(op[1])
        else:
            engine.renumber(op[1])
    elif kind == "merge":
        if isinstance(engine, HybridTCIndex):
            engine.index.merge_intervals()
        else:
            engine.merge_intervals()
    else:
        raise RecoveryError(f"unknown WAL operation kind {kind!r}")


def _empty_engine(kind: str, *, gap: int, numbering: str,
                  backend: Optional[str]):
    from repro.core.hybrid import HybridTCIndex
    from repro.core.index import IntervalTCIndex
    from repro.graph.digraph import DiGraph
    if kind == "hybrid":
        return HybridTCIndex.build(DiGraph(), gap=gap, numbering=numbering,
                                   backend=backend)
    if kind == "interval":
        return IntervalTCIndex.build(DiGraph(), gap=gap, numbering=numbering)
    raise RecoveryError(f"unknown engine kind {kind!r}")


def recover(directory, *, engine_kind: str = "interval", gap: int,
            numbering: str = "integer",
            backend: Optional[str] = None):
    """Reconstruct the newest consistent engine state in ``directory``.

    Returns ``(engine, report)``.  ``engine_kind``/``gap``/``numbering``
    describe the store configuration (from its ``store.json``) and are
    only used when no checkpoint survives and history must replay from
    an empty engine.

    Raises :class:`RecoveryError` when no consistent state is
    reconstructible, :class:`CorruptFileError` on interior log damage.
    """
    directory = str(directory)
    report = RecoveryReport(directory=directory, engine=engine_kind)

    # -- 1. newest usable checkpoint --------------------------------------
    engine = None
    checkpoint_seq = 0
    for seq, path in reversed(_checkpoint.list_checkpoints(directory)):
        try:
            engine, checkpoint_seq, kind = _checkpoint.load_checkpoint(
                path, backend=backend)
        except CorruptFileError as error:
            report.checkpoints_skipped.append((path, error.detail))
            continue
        report.checkpoint_path = path
        report.engine = kind
        break
    report.checkpoint_seq = checkpoint_seq
    report.last_seq = checkpoint_seq

    segments = _checkpoint.list_segments(directory)
    if engine is None:
        # Every generation was unusable (or none was ever written).  The
        # full history can still replay — but only if the log reaches
        # back to the very first operation.
        if segments and segments[0][0] != 1:
            raise RecoveryError(
                f"{directory}: no usable checkpoint and the write-ahead "
                f"log starts at sequence {segments[0][0]}, not 1 — "
                f"{len(report.checkpoints_skipped)} checkpoint(s) were "
                f"skipped as corrupt")
        engine = _empty_engine(engine_kind, gap=gap, numbering=numbering,
                               backend=backend)
        report.engine = engine_kind
        report.started_empty = True

    # -- 2. replay the uncovered tail -------------------------------------
    expected = checkpoint_seq + 1
    for position, (first_seq, path) in enumerate(segments):
        is_last = position == len(segments) - 1
        next_first = segments[position + 1][0] if not is_last else None
        if next_first is not None and next_first <= expected:
            continue  # fully covered by the checkpoint: skip unscanned
        scan = _wal.scan_wal(path)
        report.segments_scanned += 1
        if scan.torn_bytes:
            if not is_last:
                raise CorruptFileError(
                    path,
                    f"torn record mid-log ({scan.torn_bytes} trailing "
                    f"bytes) in a non-final segment")
            # -- 3. the crash signature: truncate the torn tail ----------
            report.truncated_bytes += _wal.truncate_torn_tail(
                path, scan.valid_bytes)
        if is_last:
            report.tail_path = path
            report.tail_valid_bytes = scan.valid_bytes
        if scan.records:
            if first_seq != scan.records[0][0]:
                raise CorruptFileError(
                    path,
                    f"segment name claims first sequence {first_seq} but "
                    f"the log starts at {scan.records[0][0]}")
            if scan.records[0][0] > expected:
                raise RecoveryError(
                    f"{path}: write-ahead log is missing sequences "
                    f"{expected}..{scan.records[0][0] - 1}")
        for seq, op in scan.records:
            if seq < expected:
                continue  # already folded into the checkpoint
            if seq != expected:
                raise RecoveryError(
                    f"{path}: expected sequence {expected}, found {seq}")
            try:
                apply_op(engine, op)
            except SimulatedCrash:
                raise
            except ReproError as error:
                raise RecoveryError(
                    f"{path}: replay of op {seq} ({op[0] if op else '?'}) "
                    f"failed: {error}") from error
            expected = seq + 1
            report.ops_replayed += 1
    report.last_seq = expected - 1
    return engine, report
